//! Analytic performance and power model, calibrated to the paper's Table I.
//!
//! The paper's datasets cover Global Problem Sizes up to `1.1e9` unknowns —
//! far beyond what a test process can execute — so the cluster simulator
//! uses this model as the "physics" behind each simulated job. The model's
//! structure follows the benchmark's actual cost anatomy:
//!
//! * **Compute**: FMG is `O(N)`; work per unknown depends on the operator's
//!   stencil ([`crate::operator::OperatorKind::flops_per_point`]) times the
//!   multigrid sweep count; per-core throughput scales linearly with the
//!   CPU frequency (the benchmark is compute/cache-bound, Table I varies
//!   frequency 1.2–2.4 GHz).
//! * **Communication**: per-sweep halo exchanges move `O((N/np)^{2/3})`
//!   bytes plus a latency term growing with `log2(np)`; crossing nodes
//!   costs more than staying inside one.
//! * **Oversubscription**: the testbed has 4 nodes x 16 cores = 64 hardware
//!   cores, but Table I's `NP` goes to 128 — oversubscribed runs get no
//!   extra parallelism, only scheduling overhead.
//! * **Power**: server-level draw across all *provisioned* nodes (CloudLab
//!   IPMI measures whole servers, idle or not): per-node idle power plus
//!   per-active-core dynamic power `~ f^3`.
//!
//! Calibration anchors (see tests): the serial `poisson1` job at the
//! largest size and lowest frequency lands at Table I's maximum runtime
//! (458 s); the smallest jobs land at the minimum (5 ms); cluster-wide
//! energy spans Table I's `6.4e3 – 1.1e5 J` for the jobs that survive the
//! power-trace filter.

use crate::operator::OperatorKind;
use rand::Rng;

/// Hardware description of the testbed (defaults model the paper's
/// CloudLab Wisconsin machines: 2x 8-core E5-2630v3, 1.2–2.4 GHz).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Number of provisioned nodes.
    pub nodes: usize,
    /// Hardware cores per node.
    pub cores_per_node: usize,
    /// Allowed CPU frequencies in GHz (DVFS levels).
    pub freq_levels: Vec<f64>,
    /// Effective useful flops per core per cycle (memory stalls included).
    pub flops_per_cycle: f64,
    /// Idle power per node, Watts.
    pub idle_power_w: f64,
    /// Static per-active-core power, Watts.
    pub core_power_base_w: f64,
    /// Dynamic per-core power coefficient, Watts per GHz^3.
    pub core_power_cubic_w: f64,
    /// Cross-node message latency, seconds.
    pub network_latency_s: f64,
    /// Network bandwidth, bytes/second (10 GbE).
    pub network_bw: f64,
    /// RAM per node, bytes.
    pub ram_per_node: f64,
}

impl MachineSpec {
    /// The paper's testbed: 4 nodes, 2x8 cores each, 128 GB RAM, 10 GbE.
    pub fn cloudlab_wisconsin() -> Self {
        MachineSpec {
            nodes: 4,
            cores_per_node: 16,
            freq_levels: vec![1.2, 1.5, 1.8, 2.1, 2.4],
            flops_per_cycle: 0.8,
            idle_power_w: 50.0,
            core_power_base_w: 1.2,
            core_power_cubic_w: 0.5,
            network_latency_s: 20e-6,
            network_bw: 1.25e9,
            ram_per_node: 128e9,
        }
    }

    /// Total hardware cores.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Nodes needed to host `np` ranks (16 per node, capped at the cluster).
    pub fn nodes_used(&self, np: usize) -> usize {
        np.div_ceil(self.cores_per_node).min(self.nodes).max(1)
    }
}

impl Default for MachineSpec {
    fn default() -> Self {
        MachineSpec::cloudlab_wisconsin()
    }
}

/// Breakdown of a predicted runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeBreakdown {
    /// Fixed job overhead (launch, setup), seconds.
    pub overhead: f64,
    /// Compute time, seconds.
    pub compute: f64,
    /// Communication time, seconds.
    pub communication: f64,
}

impl RuntimeBreakdown {
    /// Total runtime.
    pub fn total(&self) -> f64 {
        self.overhead + self.compute + self.communication
    }
}

/// The analytic model. All means are deterministic; sampling adds
/// multiplicative lognormal noise (performance measurements are noisy but
/// strictly positive).
#[derive(Debug, Clone, PartialEq)]
pub struct PerfModel {
    /// The machine the model describes.
    pub machine: MachineSpec,
    /// Multigrid sweep factor: effective operator applications per unknown
    /// over a full FMG solve.
    pub mg_sweeps: f64,
    /// Fixed per-job overhead in seconds (scheduler, binary launch, setup).
    pub overhead_s: f64,
    /// Halo traffic per boundary point, bytes.
    pub halo_bytes: f64,
    /// Communication sweeps per solve (smoother + transfer exchanges).
    pub comm_stages: f64,
    /// Lognormal sigma for runtime noise.
    pub runtime_noise_sigma: f64,
}

impl PerfModel {
    /// Model calibrated to Table I on the default testbed.
    pub fn calibrated() -> Self {
        PerfModel {
            machine: MachineSpec::cloudlab_wisconsin(),
            mg_sweeps: 50.0,
            overhead_s: 0.004,
            halo_bytes: 8.0,
            comm_stages: 60.0,
            runtime_noise_sigma: 0.03,
        }
    }

    /// Effective parallel width for `np` ranks: capped at the hardware
    /// core count (oversubscription adds no parallelism).
    fn effective_parallelism(&self, np: usize) -> f64 {
        (np.min(self.machine.total_cores())) as f64
    }

    /// Oversubscription penalty factor (`>= 1`).
    fn oversub_penalty(&self, np: usize) -> f64 {
        let cores = self.machine.total_cores();
        if np > cores {
            1.0 + 0.08 * (np as f64 / cores as f64 - 1.0)
        } else {
            1.0
        }
    }

    /// Deterministic runtime prediction with component breakdown.
    ///
    /// `size` is the Global Problem Size (unknowns), `np` the rank count,
    /// `freq` the CPU frequency in GHz.
    pub fn runtime_breakdown(
        &self,
        op: OperatorKind,
        size: f64,
        np: usize,
        freq: f64,
    ) -> RuntimeBreakdown {
        assert!(size > 0.0 && np > 0 && freq > 0.0, "invalid job parameters");
        let flops_per_unknown = op.flops_per_point() * self.mg_sweeps;
        let rate_per_core = self.machine.flops_per_cycle * freq * 1e9;
        let p = self.effective_parallelism(np);
        let compute = flops_per_unknown * size / (rate_per_core * p) * self.oversub_penalty(np);
        let communication = if np > 1 {
            let local = size / np as f64;
            // Six halo faces of the local subdomain.
            let halo = 6.0 * local.powf(2.0 / 3.0) * self.halo_bytes;
            // Intra-node exchanges are ~40x cheaper than crossing the wire.
            let nodes = self.machine.nodes_used(np);
            let latency = if nodes > 1 {
                self.machine.network_latency_s
            } else {
                self.machine.network_latency_s / 40.0
            };
            let bw = if nodes > 1 {
                self.machine.network_bw
            } else {
                self.machine.network_bw * 40.0
            };
            self.comm_stages * ((np as f64).log2() * latency + halo / bw)
        } else {
            0.0
        };
        RuntimeBreakdown {
            overhead: self.overhead_s,
            compute,
            communication,
        }
    }

    /// Deterministic mean runtime in seconds.
    pub fn runtime_mean(&self, op: OperatorKind, size: f64, np: usize, freq: f64) -> f64 {
        self.runtime_breakdown(op, size, np, freq).total()
    }

    /// Sample a noisy runtime (multiplicative lognormal noise).
    pub fn sample_runtime(
        &self,
        op: OperatorKind,
        size: f64,
        np: usize,
        freq: f64,
        rng: &mut impl Rng,
    ) -> f64 {
        let mean = self.runtime_mean(op, size, np, freq);
        mean * lognormal_factor(self.runtime_noise_sigma, rng)
    }

    /// Instantaneous cluster-wide power draw in Watts while a job with `np`
    /// ranks runs at `freq` GHz. All provisioned nodes contribute idle
    /// power (CloudLab IPMI measures whole servers).
    pub fn power_mean(&self, np: usize, freq: f64) -> f64 {
        let active = (np.min(self.machine.total_cores())) as f64;
        self.machine.nodes as f64 * self.machine.idle_power_w
            + active
                * (self.machine.core_power_base_w + self.machine.core_power_cubic_w * freq.powi(3))
    }

    /// Deterministic mean energy in Joules: cluster power x runtime.
    pub fn energy_mean(&self, op: OperatorKind, size: f64, np: usize, freq: f64) -> f64 {
        self.power_mean(np, freq) * self.runtime_mean(op, size, np, freq)
    }

    /// Peak per-node memory footprint in bytes: ~6 working vectors of
    /// 8 bytes per unknown spread over the nodes used, plus a fixed
    /// per-process base (MPI buffers, binary, PETSc overhead). This is the
    /// "memory usage on every node" attribute SLURM records per job and the
    /// third response the paper's prototype models.
    pub fn memory_per_node(&self, size: f64, np: usize) -> f64 {
        let nodes = self.machine.nodes_used(np).max(1) as f64;
        let ranks_per_node = (np as f64 / nodes).ceil();
        let base_per_rank = 120e6; // ~120 MB per MPI rank
        size * 8.0 * 6.0 / nodes + ranks_per_node * base_per_rank
    }

    /// Sample a noisy per-node memory measurement (allocator slack and
    /// fragmentation vary run to run, ~2%).
    pub fn sample_memory_per_node(&self, size: f64, np: usize, rng: &mut impl Rng) -> f64 {
        self.memory_per_node(size, np) * lognormal_factor(0.02, rng)
    }

    /// Whether a job fits in memory (per-node footprint within RAM).
    pub fn memory_fits(&self, size: f64, np: usize) -> bool {
        self.memory_per_node(size, np) <= self.machine.ram_per_node
    }

    /// Whether the experimenter would schedule this job at all: fits in
    /// memory and predicted to finish within the benchmarking budget cap.
    /// The paper's observed maximum runtime (458 s) is the serial
    /// `poisson1` job at the largest size — jobs predicted beyond 500 s
    /// were evidently not run.
    pub fn would_run(&self, op: OperatorKind, size: f64, np: usize, freq: f64) -> bool {
        self.memory_fits(size, np) && self.runtime_mean(op, size, np, freq) <= 500.0
    }
}

/// Multiplicative lognormal factor `exp(sigma * xi)`, `xi ~ N(0,1)` via
/// Box–Muller (keeps the offline crate list free of `rand_distr`).
pub fn lognormal_factor(sigma: f64, rng: &mut impl Rng) -> f64 {
    (sigma * standard_normal(rng)).exp()
}

/// One standard normal deviate via Box–Muller.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> PerfModel {
        PerfModel::calibrated()
    }

    #[test]
    fn calibration_anchor_max_runtime() {
        // Table I: max Runtime 458.436 s = serial poisson1, largest size,
        // lowest frequency.
        let t = model().runtime_mean(OperatorKind::Poisson1, 1.1e9, 1, 1.2);
        assert!((t - 458.3).abs() < 5.0, "t = {t}");
        // And it is within the scheduling cap.
        assert!(model().would_run(OperatorKind::Poisson1, 1.1e9, 1, 1.2));
    }

    #[test]
    fn calibration_anchor_min_runtime() {
        // Table I: min Runtime 0.005 s = smallest size, fast config.
        let t = model().runtime_mean(OperatorKind::Poisson1, 1.7e3, 1, 2.4);
        assert!(t > 0.004 && t < 0.007, "t = {t}");
    }

    #[test]
    fn expensive_operators_are_slower() {
        let m = model();
        let t1 = m.runtime_mean(OperatorKind::Poisson1, 1e7, 8, 2.1);
        let ta = m.runtime_mean(OperatorKind::Poisson2Affine, 1e7, 8, 2.1);
        let t2 = m.runtime_mean(OperatorKind::Poisson2, 1e7, 8, 2.1);
        assert!(t1 < ta && ta < t2, "{t1} {ta} {t2}");
    }

    #[test]
    fn runtime_monotone_in_size_and_freq() {
        let m = model();
        let op = OperatorKind::Poisson1;
        assert!(m.runtime_mean(op, 1e8, 16, 1.8) > m.runtime_mean(op, 1e7, 16, 1.8));
        assert!(m.runtime_mean(op, 1e8, 16, 1.2) > m.runtime_mean(op, 1e8, 16, 2.4));
    }

    #[test]
    fn parallel_speedup_saturates_at_hardware_cores() {
        let m = model();
        let op = OperatorKind::Poisson1;
        let t1 = m.runtime_mean(op, 1e9, 1, 2.4);
        let t64 = m.runtime_mean(op, 1e9, 64, 2.4);
        let t128 = m.runtime_mean(op, 1e9, 128, 2.4);
        // Large problem: near-linear speedup to 64 cores.
        assert!(t1 / t64 > 30.0, "speedup {}", t1 / t64);
        // Oversubscription is a (mild) slowdown, never a speedup.
        assert!(t128 >= t64, "t128={t128} t64={t64}");
    }

    #[test]
    fn small_problems_do_not_scale() {
        // Strong-scaling a tiny problem is overhead-dominated: NP=64 cannot
        // be much faster than NP=4.
        let m = model();
        let t4 = m.runtime_mean(OperatorKind::Poisson1, 1.7e3, 4, 2.4);
        let t64 = m.runtime_mean(OperatorKind::Poisson1, 1.7e3, 64, 2.4);
        assert!(t64 > 0.5 * t4, "t4={t4} t64={t64}");
    }

    #[test]
    fn power_increases_with_np_and_freq() {
        let m = model();
        assert!(m.power_mean(64, 2.4) > m.power_mean(1, 2.4));
        assert!(m.power_mean(16, 2.4) > m.power_mean(16, 1.2));
        // Oversubscription does not add power beyond the core count.
        assert_eq!(m.power_mean(128, 2.4), m.power_mean(64, 2.4));
    }

    #[test]
    fn energy_in_table1_range_for_long_jobs() {
        // Jobs that survive the power-trace filter (runtime >~ 30 s) must
        // span roughly Table I's 6.4e3 – 1.1e5 J.
        let m = model();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for op in OperatorKind::all() {
            for &size in &[1e7, 1e8, 5e8, 1.1e9] {
                for np in [1usize, 4, 16, 32, 64] {
                    for &f in &[1.2, 1.8, 2.4] {
                        if !m.would_run(op, size, np, f) {
                            continue;
                        }
                        let t = m.runtime_mean(op, size, np, f);
                        if t < 30.0 {
                            continue;
                        }
                        let e = m.energy_mean(op, size, np, f);
                        lo = lo.min(e);
                        hi = hi.max(e);
                    }
                }
            }
        }
        assert!(lo > 2e3 && lo < 2e4, "lo = {lo}");
        assert!(hi > 5e4 && hi < 3e5, "hi = {hi}");
    }

    #[test]
    fn memory_model_is_sane() {
        let m = model();
        // Footprint grows with size, shrinks per node with more nodes.
        assert!(m.memory_per_node(1e8, 1) > m.memory_per_node(1e7, 1));
        assert!(m.memory_per_node(1e9, 64) < m.memory_per_node(1e9, 16));
        // The largest Table I job fits on 4 nodes but a 10x larger one
        // would not fit on one.
        assert!(m.memory_fits(1.1e9, 64));
        assert!(!m.memory_fits(1.1e10, 1));
        // Sampling is positive and near the mean.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let s = m.sample_memory_per_node(1e8, 16, &mut rng);
        let mean = m.memory_per_node(1e8, 16);
        assert!(s > 0.8 * mean && s < 1.2 * mean);
    }

    #[test]
    fn would_run_excludes_oversized_and_overlong() {
        let m = model();
        // poisson2 serial at the largest size takes ~1200 s: not run.
        assert!(!m.would_run(OperatorKind::Poisson2, 1.1e9, 1, 1.2));
        // Absurd memory footprint.
        assert!(!m.memory_fits(1e12, 1));
        assert!(m.memory_fits(1.1e9, 64));
    }

    #[test]
    fn sampling_is_noisy_but_unbiased_ish() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(1);
        let mean = m.runtime_mean(OperatorKind::Poisson1, 1e6, 8, 1.8);
        let samples: Vec<f64> = (0..2000)
            .map(|_| m.sample_runtime(OperatorKind::Poisson1, 1e6, 8, 1.8, &mut rng))
            .collect();
        let avg = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((avg - mean).abs() / mean < 0.01, "avg {avg} vs mean {mean}");
        assert!(samples.iter().all(|&t| t > 0.0));
        // Noise really present.
        assert!(samples.iter().any(|&t| (t - mean).abs() / mean > 0.02));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..20000).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn nodes_used_rounding() {
        let m = MachineSpec::cloudlab_wisconsin();
        assert_eq!(m.nodes_used(1), 1);
        assert_eq!(m.nodes_used(16), 1);
        assert_eq!(m.nodes_used(17), 2);
        assert_eq!(m.nodes_used(64), 4);
        assert_eq!(m.nodes_used(128), 4); // capped at the cluster
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = model();
        let b = m.runtime_breakdown(OperatorKind::Poisson2, 1e8, 32, 1.5);
        assert!((b.total() - (b.overhead + b.compute + b.communication)).abs() < 1e-15);
        assert!(b.communication > 0.0);
        let serial = m.runtime_breakdown(OperatorKind::Poisson2, 1e8, 1, 1.5);
        assert_eq!(serial.communication, 0.0);
    }
}
