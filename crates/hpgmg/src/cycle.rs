//! Multigrid cycles: the level hierarchy, V-cycle, and Full Multigrid.
//!
//! The hierarchy coarsens by factors of two down to `n = 2` (one interior
//! unknown, solved exactly by one Jacobi step with `omega = 1`). The
//! V-cycle uses pre/post damped-Jacobi smoothing; FMG bootstraps each level
//! from the coarser solution via prolongation and finishes with V-cycles —
//! the algorithmic shape of HPGMG.

use crate::grid3::Grid3;
use crate::operator::{self, OperatorKind};
use crate::smoother;
use crate::transfer;

/// Work performed by multigrid cycles, in units of *interior stencil-point
/// updates* — the quantity the analytic performance model scales by
/// [`crate::operator::OperatorKind::flops_per_point`]. Comparing
/// `total() / unknowns` against [`crate::model::PerfModel::mg_sweeps`]
/// grounds the model in the real solver (see the `work_model_grounding`
/// integration test).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Stencil applications from smoother sweeps (both colors).
    pub smoother_points: u64,
    /// Stencil applications from residual evaluations.
    pub residual_points: u64,
    /// Coarse points touched by restriction (27-point gather each).
    pub restrict_points: u64,
    /// Fine points touched by prolongation (8-point gather each).
    pub prolong_points: u64,
}

impl WorkCounters {
    /// Total stencil-equivalent point updates (transfers weighted by their
    /// relative flop cost: restriction ~3x, prolongation ~1x a stencil).
    pub fn total(&self) -> f64 {
        self.smoother_points as f64
            + self.residual_points as f64
            + 3.0 * self.restrict_points as f64
            + self.prolong_points as f64
    }
}

/// Workspace for multigrid on a hierarchy of refinements `n, n/2, ..., 2`.
pub struct Hierarchy {
    kind: OperatorKind,
    /// Per-level solution/correction grids, finest first.
    u: Vec<Grid3>,
    /// Per-level right-hand sides.
    f: Vec<Grid3>,
    /// Per-level scratch grids.
    scratch: Vec<Grid3>,
    /// Smoothing sweeps before and after coarse correction.
    pre_sweeps: usize,
    post_sweeps: usize,
    /// Cumulative work tally.
    work: WorkCounters,
}

impl Hierarchy {
    /// Build a hierarchy for refinement `n` (power of two `>= 2`).
    pub fn new(kind: OperatorKind, n: usize) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "refinement must be a power of two >= 2"
        );
        let mut levels = Vec::new();
        let mut m = n;
        while m >= 2 {
            levels.push(m);
            if m == 2 {
                break;
            }
            m /= 2;
        }
        Hierarchy {
            kind,
            u: levels.iter().map(|&m| Grid3::zeros(m)).collect(),
            f: levels.iter().map(|&m| Grid3::zeros(m)).collect(),
            scratch: levels.iter().map(|&m| Grid3::zeros(m)).collect(),
            pre_sweeps: 2,
            post_sweeps: 2,
            work: WorkCounters::default(),
        }
    }

    /// Number of levels (finest = level 0).
    pub fn n_levels(&self) -> usize {
        self.u.len()
    }

    /// The operator being solved.
    pub fn kind(&self) -> OperatorKind {
        self.kind
    }

    /// Borrow the finest-level solution.
    pub fn solution(&self) -> &Grid3 {
        &self.u[0]
    }

    /// Mutably borrow the finest-level solution (e.g. to set an initial
    /// guess).
    pub fn solution_mut(&mut self) -> &mut Grid3 {
        &mut self.u[0]
    }

    /// Mutably borrow the finest-level right-hand side.
    pub fn rhs_mut(&mut self) -> &mut Grid3 {
        &mut self.f[0]
    }

    /// Cumulative work counters since construction (or the last
    /// [`Hierarchy::reset_work`]).
    pub fn work(&self) -> WorkCounters {
        self.work
    }

    /// Reset the work counters.
    pub fn reset_work(&mut self) {
        self.work = WorkCounters::default();
    }

    fn interior_of(&self, level: usize) -> u64 {
        self.u[level].n_interior() as u64
    }

    /// Residual L2 norm on the finest level.
    pub fn residual_norm(&mut self) -> f64 {
        let (u0, f0, s0) = (&self.u[0], &self.f[0], &mut self.scratch[0]);
        operator::residual(self.kind, u0, f0, s0);
        s0.norm_l2()
    }

    /// Recursive V-cycle starting at `level`.
    fn vcycle_at(&mut self, level: usize) {
        let last = self.n_levels() - 1;
        if level == last {
            // Coarsest grid has one interior unknown: a single undamped
            // Jacobi step is a direct solve.
            let kind = self.kind;
            let pts = self.interior_of(level);
            let (u, f, s) = self.level_mut(level);
            smoother::jacobi_sweep(kind, u, f, s, 1.0);
            self.work.smoother_points += pts;
            return;
        }
        // Pre-smooth with red-black Gauss–Seidel (HPGMG-grade contraction).
        {
            let kind = self.kind;
            let sweeps = self.pre_sweeps;
            let pts = self.interior_of(level);
            let (u, f, s) = self.level_mut(level);
            for _ in 0..sweeps {
                smoother::gauss_seidel_rb(kind, u, f, s);
            }
            self.work.smoother_points += sweeps as u64 * pts;
        }
        // Residual to scratch, restrict into coarse RHS; zero coarse guess.
        {
            let kind = self.kind;
            let pts = self.interior_of(level);
            let (u, f, s) = self.level_mut(level);
            operator::residual(kind, u, f, s);
            self.work.residual_points += pts;
        }
        {
            let coarse_pts = self.interior_of(level + 1);
            let (head, tail) = self.split_at_level(level);
            let fine_scratch = &head.2[level];
            let coarse_f = &mut tail.1[0];
            transfer::restrict(fine_scratch, coarse_f);
            tail.0[0].clear();
            self.work.restrict_points += coarse_pts;
        }
        self.vcycle_at(level + 1);
        // Prolong the coarse correction and post-smooth.
        {
            let fine_pts = self.interior_of(level);
            let (head, tail) = self.split_at_level(level);
            let coarse_u = &tail.0[0];
            let fine_u = &mut head.0[level];
            transfer::prolong_add(coarse_u, fine_u);
            self.work.prolong_points += fine_pts;
        }
        {
            let kind = self.kind;
            let sweeps = self.post_sweeps;
            let pts = self.interior_of(level);
            let (u, f, s) = self.level_mut(level);
            for _ in 0..sweeps {
                smoother::gauss_seidel_rb(kind, u, f, s);
            }
            self.work.smoother_points += sweeps as u64 * pts;
        }
    }

    /// One V-cycle on the finest level.
    pub fn vcycle(&mut self) {
        self.vcycle_at(0);
    }

    /// Full Multigrid: restrict the RHS down the hierarchy, solve coarsest,
    /// then for each finer level interpolate the solution up and run
    /// `vcycles_per_level` V-cycles. Leaves the result in
    /// [`Hierarchy::solution`].
    pub fn fmg(&mut self, vcycles_per_level: usize) {
        let last = self.n_levels() - 1;
        // Cascade the RHS to all levels.
        for l in 0..last {
            let coarse_pts = self.interior_of(l + 1);
            let (head, tail) = self.split_at_level(l);
            transfer::restrict(&head.1[l], &mut tail.1[0]);
            self.work.restrict_points += coarse_pts;
        }
        // Exact solve on the coarsest level.
        {
            let kind = self.kind;
            let pts = self.interior_of(last);
            let (u, f, s) = self.level_mut(last);
            u.clear();
            smoother::jacobi_sweep(kind, u, f, s, 1.0);
            self.work.smoother_points += pts;
        }
        // Walk up: prolong solution as initial guess, then V-cycles.
        for l in (0..last).rev() {
            {
                let fine_pts = self.interior_of(l);
                let (head, tail) = self.split_at_level(l);
                head.0[l].clear();
                transfer::prolong_add(&tail.0[0], &mut head.0[l]);
                self.work.prolong_points += fine_pts;
            }
            for _ in 0..vcycles_per_level.max(1) {
                self.vcycle_at(l);
            }
        }
    }

    /// Split mutable borrows: `(levels[..=level], levels[level+1..])` as
    /// `((u, f, scratch) slices)`.
    #[allow(clippy::type_complexity)]
    fn split_at_level(
        &mut self,
        level: usize,
    ) -> (
        (&mut [Grid3], &mut [Grid3], &mut [Grid3]),
        (&mut [Grid3], &mut [Grid3], &mut [Grid3]),
    ) {
        let (u_head, u_tail) = self.u.split_at_mut(level + 1);
        let (f_head, f_tail) = self.f.split_at_mut(level + 1);
        let (s_head, s_tail) = self.scratch.split_at_mut(level + 1);
        ((u_head, f_head, s_head), (u_tail, f_tail, s_tail))
    }

    fn level_mut(&mut self, level: usize) -> (&mut Grid3, &Grid3, &mut Grid3) {
        let Hierarchy { u, f, scratch, .. } = self;
        (&mut u[level], &f[level], &mut scratch[level])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn setup(kind: OperatorKind, n: usize) -> Hierarchy {
        let mut h = Hierarchy::new(kind, n);
        h.rhs_mut().fill_interior(|x, y, z| {
            let u = (PI * x).sin() * (PI * y).sin() * (PI * z).sin();
            match kind {
                OperatorKind::Poisson1 => 3.0 * PI * PI * u,
                OperatorKind::Poisson2Affine => {
                    let (dx, dy, dz) = kind.axis_coeffs();
                    (dx + dy + dz) * PI * PI * u
                }
                OperatorKind::Poisson2 => {
                    let a = 1.0 + 0.5 * x;
                    let ux = PI * (PI * x).cos() * (PI * y).sin() * (PI * z).sin();
                    a * 3.0 * PI * PI * u - 0.5 * ux
                }
            }
        });
        h
    }

    #[test]
    fn hierarchy_depth() {
        let h = Hierarchy::new(OperatorKind::Poisson1, 32);
        assert_eq!(h.n_levels(), 5); // 32, 16, 8, 4, 2
        let h2 = Hierarchy::new(OperatorKind::Poisson1, 2);
        assert_eq!(h2.n_levels(), 1);
    }

    #[test]
    fn vcycle_contracts_residual_strongly() {
        for kind in OperatorKind::all() {
            let mut h = setup(kind, 32);
            let r0 = h.residual_norm();
            h.vcycle();
            let r1 = h.residual_norm();
            h.vcycle();
            let r2 = h.residual_norm();
            // Textbook multigrid: ~0.1 contraction per V(2,2)-cycle.
            assert!(r1 < 0.2 * r0, "{kind:?}: {r1} !< 0.2*{r0}");
            assert!(r2 < 0.2 * r1, "{kind:?}: {r2} !< 0.2*{r1}");
        }
    }

    #[test]
    fn fmg_reaches_discretization_accuracy_in_one_pass() {
        // FMG(2) should land at the discretization error (O(h^2)) — the
        // defining property of full multigrid: error shrinks ~4x per level.
        let u_exact = |x: f64, y: f64, z: f64| (PI * x).sin() * (PI * y).sin() * (PI * z).sin();
        let mut prev = f64::INFINITY;
        for n in [8usize, 16, 32] {
            let mut h = setup(OperatorKind::Poisson1, n);
            h.fmg(2);
            let mut exact = Grid3::zeros(n);
            exact.fill_interior(u_exact);
            let err = h.solution().max_diff(&exact);
            // Error shrinks ~4x per refinement.
            assert!(err < 0.45 * prev, "n={n}: {err} !< 0.45*{prev}");
            prev = err;
        }
        assert!(prev < 4e-3, "finest error {prev}");
    }

    #[test]
    fn fmg_beats_equivalent_vcycles_from_zero() {
        // FMG's bootstrapped initial guess must beat a cold-started V-cycle.
        let kind = OperatorKind::Poisson2;
        let mut fmg = setup(kind, 16);
        fmg.fmg(1);
        let r_fmg = fmg.residual_norm();
        let mut cold = setup(kind, 16);
        cold.vcycle();
        let r_cold = cold.residual_norm();
        assert!(r_fmg < r_cold, "{r_fmg} !< {r_cold}");
    }

    #[test]
    fn solution_boundary_stays_zero() {
        let mut h = setup(OperatorKind::Poisson2Affine, 16);
        h.fmg(2);
        assert!(h.solution().boundary_is_zero());
    }

    #[test]
    fn vcycle_on_coarsest_grid_is_direct_solve() {
        let mut h = Hierarchy::new(OperatorKind::Poisson1, 2);
        h.rhs_mut().set(1, 1, 1, 24.0);
        h.vcycle();
        // diag = 6/h^2 = 24, so u = 1 exactly.
        assert!((h.solution().get(1, 1, 1) - 1.0).abs() < 1e-12);
        assert!(h.residual_norm() < 1e-12);
    }
}
