//! Inter-grid transfer operators: full-weighting restriction and trilinear
//! prolongation between vertex-centered grids with coarsening factor 2.
//!
//! A coarse vertex `(I, J, K)` coincides with fine vertex `(2I, 2J, 2K)`.
//! Restriction gathers the surrounding 27 fine vertices with weights
//! `(1/2)^{d} / 8` where `d` is the number of odd offsets; prolongation is
//! its (scaled) transpose, i.e. trilinear interpolation.

use crate::grid3::Grid3;

/// Restrict a fine-grid field to the next coarser grid (full weighting).
///
/// # Panics
/// Panics unless `coarse.n() * 2 == fine.n()`.
pub fn restrict(fine: &Grid3, coarse: &mut Grid3) {
    assert_eq!(coarse.n() * 2, fine.n(), "restrict: grids not nested");
    let nc = coarse.n();
    for kk in 1..nc {
        for jj in 1..nc {
            for ii in 1..nc {
                let (fi, fj, fk) = (2 * ii, 2 * jj, 2 * kk);
                let mut acc = 0.0;
                for dk in -1i32..=1 {
                    for dj in -1i32..=1 {
                        for di in -1i32..=1 {
                            let w = 0.5f64.powi(di.abs() + dj.abs() + dk.abs()) / 8.0;
                            acc += w * fine.get(
                                (fi as i32 + di) as usize,
                                (fj as i32 + dj) as usize,
                                (fk as i32 + dk) as usize,
                            );
                        }
                    }
                }
                coarse.set(ii, jj, kk, acc);
            }
        }
    }
}

/// Prolong (trilinearly interpolate) a coarse-grid correction to the fine
/// grid, *adding* into `fine` (`fine += P coarse`), which is how V-cycles
/// consume it. Boundary vertices are untouched (correction is zero there).
pub fn prolong_add(coarse: &Grid3, fine: &mut Grid3) {
    assert_eq!(coarse.n() * 2, fine.n(), "prolong: grids not nested");
    let nf = fine.n();
    for k in 1..nf {
        for j in 1..nf {
            for i in 1..nf {
                // Trilinear interpolation from the enclosing coarse cell.
                let (ci, ri) = (i / 2, i % 2);
                let (cj, rj) = (j / 2, j % 2);
                let (ck, rk) = (k / 2, k % 2);
                let mut acc = 0.0;
                for (dk, wk) in weights(ck, rk) {
                    for (dj, wj) in weights(cj, rj) {
                        for (di, wi) in weights(ci, ri) {
                            let w = wi * wj * wk;
                            if w != 0.0 {
                                acc += w * coarse.get(di, dj, dk);
                            }
                        }
                    }
                }
                let v = fine.get(i, j, k) + acc;
                fine.set(i, j, k, v);
            }
        }
    }
}

/// Interpolation stencil along one axis: a coincident vertex uses weight 1;
/// an in-between vertex averages its two coarse neighbors.
fn weights(c: usize, r: usize) -> [(usize, f64); 2] {
    if r == 0 {
        [(c, 1.0), (c, 0.0)]
    } else {
        [(c, 0.5), (c + 1, 0.5)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restrict_preserves_constants() {
        // A constant interior field restricts to (almost) the same constant
        // away from the boundary (where the zero shell bleeds in).
        let mut fine = Grid3::zeros(16);
        fine.fill_interior(|_, _, _| 3.0);
        let mut coarse = Grid3::zeros(8);
        restrict(&fine, &mut coarse);
        assert!((coarse.get(4, 4, 4) - 3.0).abs() < 1e-12);
        assert!(coarse.boundary_is_zero());
    }

    #[test]
    fn restrict_weights_sum_to_one() {
        // Delta at a coarse-coincident fine vertex: center weight is 1/8.
        let mut fine = Grid3::zeros(8);
        fine.set(4, 4, 4, 1.0);
        let mut coarse = Grid3::zeros(4);
        restrict(&fine, &mut coarse);
        assert!((coarse.get(2, 2, 2) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn prolong_is_exact_on_linear_functions() {
        // Trilinear interpolation reproduces linear fields exactly in the
        // interior away from the boundary shell.
        let mut coarse = Grid3::zeros(8);
        coarse.fill_interior(|x, y, z| 2.0 * x - y + 0.5 * z);
        let mut fine = Grid3::zeros(16);
        prolong_add(&coarse, &mut fine);
        // Check at fine vertices whose full interpolation stencil is interior.
        for (i, j, k) in [(8, 8, 8), (7, 9, 8), (5, 5, 5)] {
            let (x, y, z) = fine.coords(i, j, k);
            let expect = 2.0 * x - y + 0.5 * z;
            assert!(
                (fine.get(i, j, k) - expect).abs() < 1e-12,
                "at ({i},{j},{k}): {} vs {expect}",
                fine.get(i, j, k)
            );
        }
    }

    #[test]
    fn prolong_adds_into_existing_values() {
        let mut coarse = Grid3::zeros(4);
        coarse.set(2, 2, 2, 1.0);
        let mut fine = Grid3::zeros(8);
        fine.set(4, 4, 4, 10.0);
        prolong_add(&coarse, &mut fine);
        assert!((fine.get(4, 4, 4) - 11.0).abs() < 1e-12);
        // Midpoint neighbor gets half.
        assert!((fine.get(5, 4, 4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transfer_operators_are_adjoint_up_to_scaling() {
        // Full weighting R and trilinear P satisfy R = P^T / 8 for interior
        // vertices: check <R u_f, v_c> = <u_f, P v_c> / 8 with supports away
        // from the boundary.
        let mut uf = Grid3::zeros(16);
        uf.fill_interior(|x, y, z| (x * 6.0).sin() * (y * 5.0).cos() + z);
        let mut vc = Grid3::zeros(8);
        // Keep vc supported well inside so the boundary shell plays no role.
        for k in 3..=5 {
            for j in 3..=5 {
                for i in 3..=5 {
                    vc.set(i, j, k, ((i + 2 * j + 3 * k) % 5) as f64 - 2.0);
                }
            }
        }
        let mut ruf = Grid3::zeros(8);
        restrict(&uf, &mut ruf);
        let mut pvc = Grid3::zeros(16);
        prolong_add(&vc, &mut pvc);
        let dot_c = {
            let mut s = 0.0;
            for k in 1..8 {
                for j in 1..8 {
                    for i in 1..8 {
                        s += ruf.get(i, j, k) * vc.get(i, j, k);
                    }
                }
            }
            s
        };
        let dot_f = {
            let mut s = 0.0;
            for k in 1..16 {
                for j in 1..16 {
                    for i in 1..16 {
                        s += uf.get(i, j, k) * pvc.get(i, j, k);
                    }
                }
            }
            s
        };
        assert!(
            (dot_c - dot_f / 8.0).abs() <= 1e-9 * (1.0 + dot_c.abs()),
            "{dot_c} vs {}",
            dot_f / 8.0
        );
    }

    #[test]
    #[should_panic(expected = "not nested")]
    fn mismatched_grids_panic() {
        let fine = Grid3::zeros(8);
        let mut coarse = Grid3::zeros(8);
        restrict(&fine, &mut coarse);
    }
}
