//! Preconditioned Conjugate Gradient — the Krylov baseline multigrid is
//! measured against.
//!
//! HPGMG exists because benchmarks built on dense/Krylov solves (HPL, HPCG)
//! reward different machine balances than real elliptic workloads; the
//! textbook comparison behind that argument is CG-vs-multigrid iteration
//! counts: Jacobi-PCG on the 3-D Poisson problem needs `O(n)` iterations
//! (condition number grows as `h^{-2}`), while FMG solves to discretization
//! accuracy in `O(1)` cycles. This module provides that baseline on the
//! same three operators, with the same grid/operator machinery, so the
//! `fmg_vs_cg` bench can measure the gap directly.

use crate::grid3::Grid3;
use crate::operator::{self, OperatorKind};

/// Result of a CG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual L2 norm.
    pub final_residual: f64,
    /// Initial residual L2 norm.
    pub initial_residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Solve `A u = f` with Jacobi-preconditioned CG, starting from the current
/// contents of `u` (commonly zero). Stops when the residual drops by
/// `rel_tol` or after `max_iters`.
///
/// All grids must share the refinement of `u`.
pub fn pcg(
    kind: OperatorKind,
    u: &mut Grid3,
    f: &Grid3,
    rel_tol: f64,
    max_iters: usize,
) -> CgStats {
    let n = u.n();
    assert_eq!(f.n(), n, "pcg: refinement mismatch");
    let mut r = Grid3::zeros(n);
    operator::residual(kind, u, f, &mut r);
    let initial_residual = r.norm_l2();
    let target = rel_tol * initial_residual.max(f64::MIN_POSITIVE);
    if initial_residual <= f64::MIN_POSITIVE {
        return CgStats {
            iterations: 0,
            final_residual: initial_residual,
            initial_residual,
            converged: true,
        };
    }
    // z = M^{-1} r with M = diag(A).
    let mut z = Grid3::zeros(n);
    jacobi_apply(kind, &r, &mut z);
    let mut p = z.clone();
    let mut rz = dot_interior(&r, &z);
    let mut ap = Grid3::zeros(n);
    let mut iterations = 0;
    let mut final_residual = initial_residual;
    while iterations < max_iters {
        iterations += 1;
        operator::apply(kind, &p, &mut ap);
        let pap = dot_interior(&p, &ap);
        if pap <= 0.0 {
            break; // numerical breakdown (A is SPD, so this is roundoff)
        }
        let alpha = rz / pap;
        u.axpy(alpha, &p);
        r.axpy(-alpha, &ap);
        final_residual = r.norm_l2();
        if final_residual <= target {
            return CgStats {
                iterations,
                final_residual,
                initial_residual,
                converged: true,
            };
        }
        jacobi_apply(kind, &r, &mut z);
        let rz_new = dot_interior(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        // p = z + beta p.
        scale_interior(&mut p, beta);
        p.axpy(1.0, &z);
    }
    CgStats {
        iterations,
        final_residual,
        initial_residual,
        converged: false,
    }
}

/// `out = D^{-1} v` (Jacobi preconditioner).
fn jacobi_apply(kind: OperatorKind, v: &Grid3, out: &mut Grid3) {
    let n = v.n();
    out.clear();
    for k in 1..n {
        for j in 1..n {
            for i in 1..n {
                let d = operator::stencil_at(kind, n, i, j, k).diag;
                out.set(i, j, k, v.get(i, j, k) / d);
            }
        }
    }
}

fn dot_interior(a: &Grid3, b: &Grid3) -> f64 {
    let n = a.n();
    let mut s = 0.0;
    for k in 1..n {
        for j in 1..n {
            for i in 1..n {
                s += a.get(i, j, k) * b.get(i, j, k);
            }
        }
    }
    s
}

fn scale_interior(g: &mut Grid3, a: f64) {
    let n = g.n();
    for k in 1..n {
        for j in 1..n {
            for i in 1..n {
                let v = g.get(i, j, k) * a;
                g.set(i, j, k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::Hierarchy;
    use std::f64::consts::PI;

    fn rhs_for(kind: OperatorKind, n: usize) -> Grid3 {
        let mut f = Grid3::zeros(n);
        f.fill_interior(move |x, y, z| {
            let u = (PI * x).sin() * (PI * y).sin() * (PI * z).sin();
            match kind {
                OperatorKind::Poisson1 => 3.0 * PI * PI * u,
                OperatorKind::Poisson2Affine => {
                    let (dx, dy, dz) = kind.axis_coeffs();
                    (dx + dy + dz) * PI * PI * u
                }
                OperatorKind::Poisson2 => {
                    let a = 1.0 + 0.5 * x;
                    let ux = PI * (PI * x).cos() * (PI * y).sin() * (PI * z).sin();
                    a * 3.0 * PI * PI * u - 0.5 * ux
                }
            }
        });
        f
    }

    /// A multi-eigenmode source: the sin-product RHS of `rhs_for` is an
    /// exact eigenvector of the constant-coefficient stencil (CG would
    /// converge in one step on it), so iteration-count tests need this.
    fn poly_rhs(n: usize) -> Grid3 {
        let mut f = Grid3::zeros(n);
        f.fill_interior(|x, y, z| {
            x * (1.0 - x) * (y + 0.3) * (1.2 - z) + 0.2 * (7.0 * x).sin() * (5.0 * y).cos()
        });
        f
    }

    #[test]
    fn cg_converges_on_all_operators() {
        for kind in OperatorKind::all() {
            let n = 16;
            let f = rhs_for(kind, n);
            let mut u = Grid3::zeros(n);
            let stats = pcg(kind, &mut u, &f, 1e-8, 2000);
            assert!(stats.converged, "{kind:?}: {stats:?}");
            assert!(stats.final_residual <= 1e-8 * stats.initial_residual * 1.01);
            assert!(u.boundary_is_zero());
        }
    }

    #[test]
    fn cg_matches_multigrid_solution() {
        let kind = OperatorKind::Poisson2;
        let n = 16;
        let f = rhs_for(kind, n);
        let mut u_cg = Grid3::zeros(n);
        pcg(kind, &mut u_cg, &f, 1e-10, 5000);
        let mut h = Hierarchy::new(kind, n);
        *h.rhs_mut() = f;
        h.fmg(2);
        for _ in 0..8 {
            h.vcycle();
        }
        assert!(
            u_cg.max_diff(h.solution()) < 1e-7,
            "CG and FMG disagree by {}",
            u_cg.max_diff(h.solution())
        );
    }

    #[test]
    fn cg_iteration_count_grows_with_refinement() {
        // kappa ~ h^{-2} => iterations ~ h^{-1}: roughly 2x per refinement.
        let iters = |n: usize| -> usize {
            let f = poly_rhs(n);
            let mut u = Grid3::zeros(n);
            pcg(OperatorKind::Poisson1, &mut u, &f, 1e-8, 5000).iterations
        };
        let i8 = iters(8);
        let i16 = iters(16);
        let i32 = iters(32);
        assert!(i16 as f64 > 1.4 * i8 as f64, "i8={i8}, i16={i16}");
        assert!(i32 as f64 > 1.4 * i16 as f64, "i16={i16}, i32={i32}");
    }

    #[test]
    fn multigrid_cycle_count_is_refinement_independent() {
        // The contrast that justifies FMG: V-cycles to 1e-8 stay ~constant
        // while CG iterations (test above) double per refinement.
        let cycles = |n: usize| -> usize {
            let mut h = Hierarchy::new(OperatorKind::Poisson1, n);
            *h.rhs_mut() = poly_rhs(n);
            let r0 = h.residual_norm();
            let mut c = 0;
            while h.residual_norm() > 1e-8 * r0 && c < 50 {
                h.vcycle();
                c += 1;
            }
            c
        };
        let c8 = cycles(8);
        let c32 = cycles(32);
        assert!(
            c32 <= c8 + 3,
            "V-cycle count should be ~refinement-independent: {c8} -> {c32}"
        );
    }

    #[test]
    fn zero_rhs_is_immediate() {
        let f = Grid3::zeros(8);
        let mut u = Grid3::zeros(8);
        let stats = pcg(OperatorKind::Poisson1, &mut u, &f, 1e-8, 100);
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn restarting_resumes_from_partial_progress() {
        // Solving to 1e-3 and then continuing to 1e-8 must not cost more
        // than ~the direct 1e-8 solve (CG restart loses conjugacy but keeps
        // the iterate): the warm continuation is where the iterations went.
        let kind = OperatorKind::Poisson1;
        let n = 16;
        let f = poly_rhs(n);
        let mut direct = Grid3::zeros(n);
        let direct_stats = pcg(kind, &mut direct, &f, 1e-8, 5000);
        let mut staged = Grid3::zeros(n);
        let first = pcg(kind, &mut staged, &f, 1e-3, 5000);
        // Continue: the remaining reduction is 1e-8/1e-3 = 1e-5 relative to
        // the *new* starting residual.
        let second = pcg(kind, &mut staged, &f, 1e-5, 5000);
        assert!(first.converged && second.converged && direct_stats.converged);
        let total = first.iterations + second.iterations;
        assert!(
            total <= direct_stats.iterations * 2,
            "staged {total} vs direct {}",
            direct_stats.iterations
        );
        // And the staged result matches the direct one.
        assert!(staged.max_diff(&direct) < 1e-6);
    }
}
