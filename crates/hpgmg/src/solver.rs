//! Top-level FMG solver: the runnable "benchmark binary" of this crate.
//!
//! [`FmgSolver::run`] builds the hierarchy, assembles the manufactured
//! right-hand side, runs FMG followed by V-cycles until the residual drops
//! by `tolerance`, and reports wall-clock time — the measurement the
//! *online* Active Learning mode feeds back into the GPR model (see the
//! `online_al` example).

use crate::cycle::Hierarchy;
use crate::grid3::Grid3;
use crate::operator::OperatorKind;
use std::f64::consts::PI;
use std::time::Instant;

/// Configuration for one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmgSolver {
    /// Which elliptic operator to solve.
    pub kind: OperatorKind,
    /// Grid refinement per axis (power of two, `>= 2`); the number of
    /// unknowns — the paper's "Global Problem Size" — is `(n-1)^3`.
    pub n: usize,
    /// Relative residual reduction target (e.g. `1e-8`).
    pub tolerance: f64,
    /// Maximum extra V-cycles after the FMG pass.
    pub max_vcycles: usize,
    /// Number of rayon threads to use (0 = rayon default). Emulates the
    /// paper's `NP` factor on a single machine.
    pub threads: usize,
}

use crate::cycle::WorkCounters;

/// Results of one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Wall-clock seconds for the solve phase (hierarchy setup excluded,
    /// matching how HPGMG reports solve time).
    pub seconds: f64,
    /// Residual L2 norm before solving.
    pub initial_residual: f64,
    /// Residual L2 norm after solving.
    pub final_residual: f64,
    /// V-cycles executed after the FMG pass.
    pub vcycles: usize,
    /// Max-norm error against the manufactured solution.
    pub error_inf: f64,
    /// Number of unknowns `(n-1)^3`.
    pub unknowns: usize,
    /// Stencil-point work performed by the solve (see [`WorkCounters`]).
    pub work: WorkCounters,
}

impl SolveStats {
    /// Effective stencil applications per unknown — the measured analogue
    /// of the performance model's `mg_sweeps` constant.
    pub fn work_per_unknown(&self) -> f64 {
        self.work.total() / self.unknowns as f64
    }
}

impl FmgSolver {
    /// Default benchmark configuration for an operator and refinement.
    pub fn new(kind: OperatorKind, n: usize) -> Self {
        FmgSolver {
            kind,
            n,
            tolerance: 1e-8,
            max_vcycles: 20,
            threads: 0,
        }
    }

    /// The manufactured solution used for verification.
    pub fn exact_solution(x: f64, y: f64, z: f64) -> f64 {
        (PI * x).sin() * (PI * y).sin() * (PI * z).sin()
    }

    /// The right-hand side consistent with [`FmgSolver::exact_solution`]
    /// for this solver's operator.
    pub fn rhs(&self, x: f64, y: f64, z: f64) -> f64 {
        let u = Self::exact_solution(x, y, z);
        match self.kind {
            OperatorKind::Poisson1 => 3.0 * PI * PI * u,
            OperatorKind::Poisson2Affine => {
                let (dx, dy, dz) = self.kind.axis_coeffs();
                (dx + dy + dz) * PI * PI * u
            }
            OperatorKind::Poisson2 => {
                let a = 1.0 + 0.5 * x;
                let ux = PI * (PI * x).cos() * (PI * y).sin() * (PI * z).sin();
                a * 3.0 * PI * PI * u - 0.5 * ux
            }
        }
    }

    /// Run the benchmark: FMG pass, then V-cycles to `tolerance`.
    ///
    /// ```
    /// use alperf_hpgmg::operator::OperatorKind;
    /// use alperf_hpgmg::solver::FmgSolver;
    ///
    /// let stats = FmgSolver::new(OperatorKind::Poisson1, 8).run();
    /// assert!(stats.final_residual < stats.initial_residual * 1e-7);
    /// assert_eq!(stats.unknowns, 343);
    /// ```
    pub fn run(&self) -> SolveStats {
        if self.threads > 0 {
            // A scoped pool would be cleaner but rayon's global pool can only
            // be sized once; build a local pool and run inside it.
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(self.threads)
                .build()
                .expect("failed to build rayon pool");
            pool.install(|| self.run_inner())
        } else {
            self.run_inner()
        }
    }

    fn run_inner(&self) -> SolveStats {
        let mut h = Hierarchy::new(self.kind, self.n);
        let me = *self;
        h.rhs_mut().fill_interior(move |x, y, z| me.rhs(x, y, z));
        let initial_residual = h.residual_norm();
        let target = self.tolerance * initial_residual.max(f64::MIN_POSITIVE);
        let start = Instant::now();
        h.fmg(1);
        let mut vcycles = 0;
        let mut final_residual = h.residual_norm();
        while final_residual > target && vcycles < self.max_vcycles {
            h.vcycle();
            vcycles += 1;
            final_residual = h.residual_norm();
        }
        let seconds = start.elapsed().as_secs_f64();
        let mut exact = Grid3::zeros(self.n);
        exact.fill_interior(Self::exact_solution);
        let error_inf = h.solution().max_diff(&exact);
        let m = self.n - 1;
        SolveStats {
            seconds,
            initial_residual,
            final_residual,
            vcycles,
            error_inf,
            unknowns: m * m * m,
            work: h.work(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_all_operators_to_tolerance() {
        for kind in OperatorKind::all() {
            let stats = FmgSolver::new(kind, 16).run();
            assert!(
                stats.final_residual <= stats.initial_residual * 1e-8 * 1.01,
                "{kind:?}: {stats:?}"
            );
            assert!(stats.seconds > 0.0);
            assert_eq!(stats.unknowns, 15 * 15 * 15);
        }
    }

    #[test]
    fn error_is_second_order_in_h() {
        let e16 = FmgSolver::new(OperatorKind::Poisson1, 16).run().error_inf;
        let e32 = FmgSolver::new(OperatorKind::Poisson1, 32).run().error_inf;
        assert!(e16 / e32 > 3.0, "e16={e16}, e32={e32}");
    }

    #[test]
    fn explicit_thread_count_gives_same_answer() {
        let a = FmgSolver {
            threads: 1,
            ..FmgSolver::new(OperatorKind::Poisson2, 16)
        }
        .run();
        let b = FmgSolver {
            threads: 2,
            ..FmgSolver::new(OperatorKind::Poisson2, 16)
        }
        .run();
        // Deterministic math: identical residuals and errors regardless of
        // thread count (Jacobi is order-independent).
        assert!((a.final_residual - b.final_residual).abs() < 1e-13);
        assert!((a.error_inf - b.error_inf).abs() < 1e-13);
    }

    #[test]
    fn work_per_unknown_is_near_model_constant() {
        // The analytic performance model assumes ~50 effective stencil
        // applications per unknown per solve (PerfModel::mg_sweeps). The
        // instrumented solver must land in that neighbourhood.
        let stats = FmgSolver::new(OperatorKind::Poisson1, 32).run();
        let w = stats.work_per_unknown();
        assert!((20.0..120.0).contains(&w), "work/unknown = {w}");
    }

    #[test]
    fn vcycle_count_is_modest() {
        // FMG + a few V-cycles should reach 1e-8; more than ~12 means the
        // cycle is broken.
        let stats = FmgSolver::new(OperatorKind::Poisson2Affine, 32).run();
        assert!(stats.vcycles <= 12, "{stats:?}");
    }
}
