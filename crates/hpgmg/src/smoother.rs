//! Smoothers: damped Jacobi and Chebyshev polynomial acceleration.
//!
//! HPGMG itself smooths with Chebyshev polynomials over a Jacobi
//! preconditioner; we implement both. Damped Jacobi (`omega = 2/3`) is the
//! workhorse inside V-cycles; the Chebyshev smoother targets the upper part
//! of the spectrum `[lambda_max / 30, 1.1 lambda_max]` with `lambda_max`
//! from the Gershgorin bound — the same recipe as HPGMG's `CHEBYSHEV_DEGREE`
//! smoother.

use crate::grid3::Grid3;
use crate::operator::{self, OperatorKind};
use rayon::prelude::*;

/// Threshold for parallel sweeps, matching the operator module.
const PAR_MIN_POINTS: usize = 32 * 32 * 32;

/// One damped-Jacobi sweep: `u <- u + omega D^{-1} (f - A u)`.
///
/// Uses `scratch` for the residual; all three grids must share a refinement.
pub fn jacobi_sweep(kind: OperatorKind, u: &mut Grid3, f: &Grid3, scratch: &mut Grid3, omega: f64) {
    operator::residual(kind, u, f, scratch);
    let n = u.n();
    let side = u.side();
    let plane = side * side;
    let rd = scratch.as_slice();
    let interior = u.n_interior();
    let data = u.as_mut_slice();
    let body = |k: usize, slab: &mut [f64]| {
        if k == 0 || k == n {
            return;
        }
        for j in 1..n {
            let row = j * side;
            for i in 1..n {
                let st = operator::stencil_at(kind, n, i, j, k);
                slab[row + i] += omega * rd[i + row + k * plane] / st.diag;
            }
        }
    };
    if interior >= PAR_MIN_POINTS {
        data.par_chunks_mut(plane)
            .enumerate()
            .for_each(|(k, s)| body(k, s));
    } else {
        for (k, s) in data.chunks_mut(plane).enumerate() {
            body(k, s);
        }
    }
}

/// Run `sweeps` damped-Jacobi iterations with the standard damping 2/3.
pub fn jacobi(kind: OperatorKind, u: &mut Grid3, f: &Grid3, scratch: &mut Grid3, sweeps: usize) {
    for _ in 0..sweeps {
        jacobi_sweep(kind, u, f, scratch, 2.0 / 3.0);
    }
}

/// Chebyshev smoother of the given polynomial `degree`, targeting
/// eigenvalues in `[lambda_max / 30, 1.1 lambda_max]` where `lambda_max` is
/// the Gershgorin bound for the operator at this refinement.
///
/// Implemented as the standard three-term recurrence on the D-preconditioned
/// residual; needs two scratch grids.
pub fn chebyshev(
    kind: OperatorKind,
    u: &mut Grid3,
    f: &Grid3,
    scratch: &mut Grid3,
    correction: &mut Grid3,
    degree: usize,
) {
    let n = u.n();
    let lambda_max = 1.1 * operator::eigen_upper_bound(kind, n) / {
        let mid = (n / 2).max(1);
        operator::stencil_at(kind, n, mid, mid, mid).diag
    };
    let lambda_min = lambda_max / 30.0;
    let theta = 0.5 * (lambda_max + lambda_min);
    let delta = 0.5 * (lambda_max - lambda_min);
    let mut alpha;
    let mut beta = 0.0;
    correction.clear();
    for step in 0..degree {
        // Preconditioned residual z = D^{-1} (f - A u).
        operator::residual(kind, u, f, scratch);
        precondition_in_place(kind, scratch);
        if step == 0 {
            alpha = 1.0 / theta;
            // correction = alpha * z
            correction.clear();
            correction.axpy(alpha, scratch);
        } else {
            let old = if step == 1 {
                0.5 * (delta / theta) * (delta / theta)
            } else {
                beta
            };
            beta = old;
            alpha = 1.0 / (theta - beta / (1.0 / theta));
            // The classical recurrence: p_{k} = z + beta p_{k-1}; we fold
            // the scaling into axpy operations.
            scale_in_place(correction, beta);
            correction.axpy(alpha, scratch);
        }
        u.axpy(1.0, correction);
    }
}

/// One red-black Gauss–Seidel sweep (both colors).
///
/// Within one color pass every stencil neighbor has the *other* color, so
/// reading neighbor values from a pre-pass snapshot is mathematically
/// identical to the classical in-place update — and lets each z-slab be
/// updated in parallel without aliasing. `scratch` holds the snapshot.
pub fn gauss_seidel_rb(kind: OperatorKind, u: &mut Grid3, f: &Grid3, scratch: &mut Grid3) {
    for color in 0..2usize {
        scratch.as_mut_slice().copy_from_slice(u.as_slice());
        let n = u.n();
        let side = u.side();
        let plane = side * side;
        let sd = scratch.as_slice();
        let fd = f.as_slice();
        let interior = u.n_interior();
        let data = u.as_mut_slice();
        let body = |k: usize, slab: &mut [f64]| {
            if k == 0 || k == n {
                return;
            }
            for j in 1..n {
                let row = j * side;
                // Points of the requested color in this row.
                let start = 1 + (color + 1 + j + k) % 2;
                let mut i = start;
                while i < n {
                    let st = operator::stencil_at(kind, n, i, j, k);
                    let c = i + row + k * plane;
                    let nbr_sum = st.nbr[0] * sd[c - 1]
                        + st.nbr[1] * sd[c + 1]
                        + st.nbr[2] * sd[c - side]
                        + st.nbr[3] * sd[c + side]
                        + st.nbr[4] * sd[c - plane]
                        + st.nbr[5] * sd[c + plane];
                    slab[row + i] = (fd[c] + nbr_sum) / st.diag;
                    i += 2;
                }
            }
        };
        if interior >= PAR_MIN_POINTS {
            data.par_chunks_mut(plane)
                .enumerate()
                .for_each(|(k, s)| body(k, s));
        } else {
            for (k, s) in data.chunks_mut(plane).enumerate() {
                body(k, s);
            }
        }
    }
}

/// `g <- D^{-1} g` in place.
fn precondition_in_place(kind: OperatorKind, g: &mut Grid3) {
    let n = g.n();
    let side = g.side();
    let plane = side * side;
    let interior = g.n_interior();
    let data = g.as_mut_slice();
    let body = |k: usize, slab: &mut [f64]| {
        if k == 0 || k == n {
            return;
        }
        for j in 1..n {
            let row = j * side;
            for i in 1..n {
                let st = operator::stencil_at(kind, n, i, j, k);
                slab[row + i] /= st.diag;
            }
        }
    };
    if interior >= PAR_MIN_POINTS {
        data.par_chunks_mut(plane)
            .enumerate()
            .for_each(|(k, s)| body(k, s));
    } else {
        for (k, s) in data.chunks_mut(plane).enumerate() {
            body(k, s);
        }
    }
}

/// Scale a grid by a constant (interior and boundary; boundary is zero).
fn scale_in_place(g: &mut Grid3, a: f64) {
    for v in g.as_mut_slice() {
        *v *= a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Residual norm after smoothing a random-ish initial guess against a
    /// zero right-hand side; must decrease.
    fn smoothing_reduces_residual(kind: OperatorKind, use_cheby: bool) {
        let n = 16;
        let mut u = Grid3::zeros(n);
        // High-frequency initial error — what smoothers are good at.
        u.fill_interior(|x, y, z| ((13.0 * x).sin() + (17.0 * y).cos() + (19.0 * z).sin()) * 0.5);
        let f = Grid3::zeros(n);
        let mut scratch = Grid3::zeros(n);
        let mut r0 = Grid3::zeros(n);
        operator::residual(kind, &u, &f, &mut r0);
        let before = r0.norm_l2();
        if use_cheby {
            let mut corr = Grid3::zeros(n);
            chebyshev(kind, &mut u, &f, &mut scratch, &mut corr, 4);
        } else {
            jacobi(kind, &mut u, &f, &mut scratch, 4);
        }
        let mut r1 = Grid3::zeros(n);
        operator::residual(kind, &u, &f, &mut r1);
        let after = r1.norm_l2();
        assert!(
            after < 0.6 * before,
            "{kind:?} cheby={use_cheby}: {after} !< 0.6 * {before}"
        );
    }

    #[test]
    fn jacobi_reduces_residual_all_operators() {
        for kind in OperatorKind::all() {
            smoothing_reduces_residual(kind, false);
        }
    }

    #[test]
    fn chebyshev_reduces_residual_all_operators() {
        for kind in OperatorKind::all() {
            smoothing_reduces_residual(kind, true);
        }
    }

    #[test]
    fn gauss_seidel_reduces_residual_faster_than_jacobi() {
        for kind in OperatorKind::all() {
            let n = 16;
            let init = |g: &mut Grid3| {
                g.fill_interior(|x, y, z| ((11.0 * x).sin() + (9.0 * y).sin()) * (7.0 * z).cos())
            };
            let f = Grid3::zeros(n);
            let mut scratch = Grid3::zeros(n);
            let mut uj = Grid3::zeros(n);
            init(&mut uj);
            jacobi(kind, &mut uj, &f, &mut scratch, 2);
            let mut ug = Grid3::zeros(n);
            init(&mut ug);
            for _ in 0..2 {
                gauss_seidel_rb(kind, &mut ug, &f, &mut scratch);
            }
            let mut rj = Grid3::zeros(n);
            let mut rg = Grid3::zeros(n);
            operator::residual(kind, &uj, &f, &mut rj);
            operator::residual(kind, &ug, &f, &mut rg);
            assert!(
                rg.norm_l2() < rj.norm_l2(),
                "{kind:?}: GS {} !< Jacobi {}",
                rg.norm_l2(),
                rj.norm_l2()
            );
        }
    }

    #[test]
    fn gauss_seidel_parallel_matches_small_grid_semantics() {
        // n = 64 takes the parallel path; n-independence of the color
        // update means a single sweep on a delta RHS must place the
        // same values as the serial formula: first the black pass writes
        // f/diag at the delta, then red neighbors pick it up.
        let n = 64;
        let mut f = Grid3::zeros(n);
        f.set(32, 32, 32, 1.0);
        let mut u = Grid3::zeros(n);
        let mut scratch = Grid3::zeros(n);
        gauss_seidel_rb(OperatorKind::Poisson1, &mut u, &f, &mut scratch);
        let st = operator::stencil_at(OperatorKind::Poisson1, n, 32, 32, 32);
        // (32+32+32) even => updated in the color-0 pass of the sweep.
        let center = u.get(32, 32, 32);
        assert!((center - 1.0 / st.diag).abs() < 1e-15);
        // Odd neighbors see it in the second pass.
        let nb = u.get(33, 32, 32);
        assert!((nb - st.nbr[0] * center / st.diag).abs() < 1e-15);
    }

    #[test]
    fn gauss_seidel_fixed_point_is_solution() {
        let n = 8;
        let mut u = Grid3::zeros(n);
        u.fill_interior(|x, y, z| x * (1.0 - x) * y * z);
        let mut f = Grid3::zeros(n);
        operator::apply(OperatorKind::Poisson2, &u, &mut f);
        let before = u.clone();
        let mut scratch = Grid3::zeros(n);
        gauss_seidel_rb(OperatorKind::Poisson2, &mut u, &f, &mut scratch);
        assert!(u.max_diff(&before) < 1e-10);
        assert!(u.boundary_is_zero());
    }

    #[test]
    fn jacobi_fixed_point_is_solution() {
        // If u already solves A u = f, Jacobi must not move it.
        let n = 8;
        let mut u = Grid3::zeros(n);
        u.fill_interior(|x, y, z| x * (1.0 - x) * y * z);
        let mut f = Grid3::zeros(n);
        operator::apply(OperatorKind::Poisson1, &u, &mut f);
        let before = u.clone();
        let mut scratch = Grid3::zeros(n);
        jacobi(OperatorKind::Poisson1, &mut u, &f, &mut scratch, 3);
        assert!(u.max_diff(&before) < 1e-10);
    }

    #[test]
    fn jacobi_converges_on_tiny_problem() {
        // n=2 has a single unknown: one sweep with omega=1 solves exactly;
        // damped sweeps converge geometrically.
        let n = 2;
        let mut f = Grid3::zeros(n);
        f.set(1, 1, 1, 5.0);
        let mut u = Grid3::zeros(n);
        let mut scratch = Grid3::zeros(n);
        for _ in 0..60 {
            jacobi_sweep(OperatorKind::Poisson1, &mut u, &f, &mut scratch, 2.0 / 3.0);
        }
        // Solution: u = f / diag = 5 / (6 * 4) with h = 1/2.
        assert!((u.get(1, 1, 1) - 5.0 / 24.0).abs() < 1e-8);
    }

    #[test]
    fn smoother_preserves_dirichlet_boundary() {
        let n = 8;
        let mut u = Grid3::zeros(n);
        u.fill_interior(|x, _, _| x);
        let mut f = Grid3::zeros(n);
        f.fill_interior(|_, _, _| 1.0);
        let mut scratch = Grid3::zeros(n);
        jacobi(OperatorKind::Poisson2, &mut u, &f, &mut scratch, 5);
        assert!(u.boundary_is_zero());
        let mut corr = Grid3::zeros(n);
        chebyshev(
            OperatorKind::Poisson2,
            &mut u,
            &f,
            &mut scratch,
            &mut corr,
            3,
        );
        assert!(u.boundary_is_zero());
    }
}
