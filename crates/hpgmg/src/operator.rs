//! The three elliptic operators of the HPGMG-FE benchmark factor.
//!
//! All three discretize `-div(D(x) grad u) = f` on the unit cube with
//! homogeneous Dirichlet conditions, using 7-point finite differences at
//! spacing `h = 1/n`:
//!
//! * `Poisson1`: `D = I` (constant coefficient) — the cheapest stencil;
//! * `Poisson2`: scalar variable coefficient `a(x) = 1 + x/2`, with
//!   face-midpoint coefficient evaluation (flux form) — extra coefficient
//!   evaluations per point make it the most expensive stencil;
//! * `Poisson2Affine`: constant *anisotropic* diagonal tensor
//!   `D = diag(1, 1/sy^2, 1/sz^2)` arising from an axis-scaling affine mesh
//!   deformation `(x, y, z) -> (x, sy y, sz z)` pulled back to the unit
//!   cube (shear omitted; see crate docs).

use crate::grid3::Grid3;
use rayon::prelude::*;

/// Number of interior points above which stencil sweeps use rayon.
const PAR_MIN_POINTS: usize = 32 * 32 * 32;

/// Which elliptic operator to solve — the paper's `Operator` factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Constant-coefficient Poisson (`poisson1`).
    Poisson1,
    /// Variable-coefficient Poisson (`poisson2`).
    Poisson2,
    /// Constant-coefficient Poisson on an affinely deformed mesh
    /// (`poisson2affine`).
    Poisson2Affine,
}

impl OperatorKind {
    /// All operators, in the paper's Table I order.
    pub fn all() -> [OperatorKind; 3] {
        [
            OperatorKind::Poisson1,
            OperatorKind::Poisson2,
            OperatorKind::Poisson2Affine,
        ]
    }

    /// The paper's level name for this operator.
    pub fn name(&self) -> &'static str {
        match self {
            OperatorKind::Poisson1 => "poisson1",
            OperatorKind::Poisson2 => "poisson2",
            OperatorKind::Poisson2Affine => "poisson2affine",
        }
    }

    /// Parse a paper-style level name.
    pub fn from_name(s: &str) -> Option<OperatorKind> {
        match s {
            "poisson1" => Some(OperatorKind::Poisson1),
            "poisson2" => Some(OperatorKind::Poisson2),
            "poisson2affine" => Some(OperatorKind::Poisson2Affine),
            _ => None,
        }
    }

    /// Anisotropy factors `(dx, dy, dz)` for the affine operator; `(1,1,1)`
    /// otherwise. The deformation scales y by 1.25 and z by 0.8, giving
    /// tensor entries `1/s^2`.
    pub fn axis_coeffs(&self) -> (f64, f64, f64) {
        match self {
            OperatorKind::Poisson2Affine => (1.0, 1.0 / (1.25 * 1.25), 1.0 / (0.8 * 0.8)),
            _ => (1.0, 1.0, 1.0),
        }
    }

    /// Scalar coefficient field `a(x, y, z)` for the variable-coefficient
    /// operator; `1` otherwise. Strictly positive on the cube.
    #[inline]
    pub fn coefficient(&self, x: f64, _y: f64, _z: f64) -> f64 {
        match self {
            OperatorKind::Poisson2 => 1.0 + 0.5 * x,
            _ => 1.0,
        }
    }

    /// Approximate floating-point work per interior point per operator
    /// application — feeds the performance model's per-operator cost.
    pub fn flops_per_point(&self) -> f64 {
        match self {
            OperatorKind::Poisson1 => 8.0,
            OperatorKind::Poisson2 => 21.0,
            OperatorKind::Poisson2Affine => 11.0,
        }
    }
}

/// Stencil weights for one interior vertex: the diagonal and the six
/// neighbor coefficients, all already divided by `h^2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stencil {
    /// Diagonal weight.
    pub diag: f64,
    /// Weights for `(i-1, i+1, j-1, j+1, k-1, k+1)` neighbors (negated in
    /// the operator, i.e. `A u = diag*u - sum w_m u_m`).
    pub nbr: [f64; 6],
}

/// Compute the stencil at vertex `(i, j, k)` of a grid with refinement `n`.
pub fn stencil_at(kind: OperatorKind, n: usize, i: usize, j: usize, k: usize) -> Stencil {
    let h = 1.0 / n as f64;
    let inv_h2 = 1.0 / (h * h);
    match kind {
        OperatorKind::Poisson1 => Stencil {
            diag: 6.0 * inv_h2,
            nbr: [inv_h2; 6],
        },
        OperatorKind::Poisson2Affine => {
            let (dx, dy, dz) = kind.axis_coeffs();
            Stencil {
                diag: 2.0 * (dx + dy + dz) * inv_h2,
                nbr: [
                    dx * inv_h2,
                    dx * inv_h2,
                    dy * inv_h2,
                    dy * inv_h2,
                    dz * inv_h2,
                    dz * inv_h2,
                ],
            }
        }
        OperatorKind::Poisson2 => {
            let (x, y, z) = (i as f64 * h, j as f64 * h, k as f64 * h);
            // Face-midpoint coefficients (flux form).
            let axm = kind.coefficient(x - 0.5 * h, y, z);
            let axp = kind.coefficient(x + 0.5 * h, y, z);
            let aym = kind.coefficient(x, y - 0.5 * h, z);
            let ayp = kind.coefficient(x, y + 0.5 * h, z);
            let azm = kind.coefficient(x, y, z - 0.5 * h);
            let azp = kind.coefficient(x, y, z + 0.5 * h);
            Stencil {
                diag: (axm + axp + aym + ayp + azm + azp) * inv_h2,
                nbr: [
                    axm * inv_h2,
                    axp * inv_h2,
                    aym * inv_h2,
                    ayp * inv_h2,
                    azm * inv_h2,
                    azp * inv_h2,
                ],
            }
        }
    }
}

/// Sweep a function over all interior z-slabs of `out`, in parallel when
/// the grid is large. The closure receives `(k, out_slab)` where `out_slab`
/// is the contiguous `k = const` plane of `out`.
fn sweep_slabs(out: &mut Grid3, body: impl Fn(usize, &mut [f64]) + Sync) {
    let n = out.n();
    let side = out.side();
    let plane = side * side;
    let interior = out.n_interior();
    let data = out.as_mut_slice();
    if interior >= PAR_MIN_POINTS {
        data.par_chunks_mut(plane)
            .enumerate()
            .for_each(|(k, slab)| {
                if k != 0 && k != n {
                    body(k, slab);
                }
            });
    } else {
        for (k, slab) in data.chunks_mut(plane).enumerate() {
            if k != 0 && k != n {
                body(k, slab);
            }
        }
    }
}

/// `out = A u` over the interior (boundary of `out` left at zero).
///
/// # Panics
/// Panics if the grids have different refinements.
pub fn apply(kind: OperatorKind, u: &Grid3, out: &mut Grid3) {
    assert_eq!(u.n(), out.n(), "apply: refinement mismatch");
    let n = u.n();
    let side = u.side();
    let plane = side * side;
    let ud = u.as_slice();
    sweep_slabs(out, |k, slab| {
        for j in 1..n {
            let row = j * side;
            for i in 1..n {
                let st = stencil_at(kind, n, i, j, k);
                let c = i + row + k * plane;
                let val = st.diag * ud[c]
                    - st.nbr[0] * ud[c - 1]
                    - st.nbr[1] * ud[c + 1]
                    - st.nbr[2] * ud[c - side]
                    - st.nbr[3] * ud[c + side]
                    - st.nbr[4] * ud[c - plane]
                    - st.nbr[5] * ud[c + plane];
                slab[row + i] = val;
            }
        }
    });
}

/// `r = f - A u` over the interior.
pub fn residual(kind: OperatorKind, u: &Grid3, f: &Grid3, r: &mut Grid3) {
    assert_eq!(u.n(), f.n(), "residual: refinement mismatch");
    assert_eq!(u.n(), r.n(), "residual: refinement mismatch");
    let n = u.n();
    let side = u.side();
    let plane = side * side;
    let ud = u.as_slice();
    let fd = f.as_slice();
    sweep_slabs(r, |k, slab| {
        for j in 1..n {
            let row = j * side;
            for i in 1..n {
                let st = stencil_at(kind, n, i, j, k);
                let c = i + row + k * plane;
                let au = st.diag * ud[c]
                    - st.nbr[0] * ud[c - 1]
                    - st.nbr[1] * ud[c + 1]
                    - st.nbr[2] * ud[c - side]
                    - st.nbr[3] * ud[c + side]
                    - st.nbr[4] * ud[c - plane]
                    - st.nbr[5] * ud[c + plane];
                slab[row + i] = fd[c] - au;
            }
        }
    });
}

/// Upper bound on the largest eigenvalue of `A` by Gershgorin's theorem:
/// `max_i (a_ii + sum_j |a_ij|)`, which for these stencils is
/// `2 * max diag`. Used to scale smoothers.
pub fn eigen_upper_bound(kind: OperatorKind, n: usize) -> f64 {
    // The diagonal is maximized where the coefficient field is largest; for
    // a(x) = 1 + x/2 that is x = 1. Sample a few interior points to be safe.
    let mut max_diag = 0.0f64;
    for &(i, j, k) in &[
        (1, 1, 1),
        (n - 1, n - 1, n - 1),
        (n / 2, n / 2, n / 2),
        (n - 1, 1, 1),
    ] {
        max_diag = max_diag.max(stencil_at(kind, n, i, j, k).diag);
    }
    2.0 * max_diag
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn names_round_trip() {
        for k in OperatorKind::all() {
            assert_eq!(OperatorKind::from_name(k.name()), Some(k));
        }
        assert_eq!(OperatorKind::from_name("nope"), None);
    }

    #[test]
    fn poisson1_matches_hand_computed_stencil() {
        // n = 4, h = 1/4, 1/h^2 = 16; A u at the center of a delta function.
        let n = 4;
        let mut u = Grid3::zeros(n);
        u.set(2, 2, 2, 1.0);
        let mut out = Grid3::zeros(n);
        apply(OperatorKind::Poisson1, &u, &mut out);
        assert!((out.get(2, 2, 2) - 96.0).abs() < 1e-12); // 6 * 16
        assert!((out.get(1, 2, 2) + 16.0).abs() < 1e-12); // -1 * 16
        assert!((out.get(2, 1, 2) + 16.0).abs() < 1e-12);
        assert_eq!(out.get(1, 1, 1), 0.0); // not a neighbor
    }

    #[test]
    fn operator_is_symmetric() {
        // <A u, v> == <u, A v> for random-ish u, v (all operators).
        let n = 8;
        for kind in OperatorKind::all() {
            let mut u = Grid3::zeros(n);
            let mut v = Grid3::zeros(n);
            u.fill_interior(|x, y, z| (5.0 * x).sin() + y * y - z);
            v.fill_interior(|x, y, z| (3.0 * y).cos() * x + z * z);
            let mut au = Grid3::zeros(n);
            let mut av = Grid3::zeros(n);
            apply(kind, &u, &mut au);
            apply(kind, &v, &mut av);
            let dot = |a: &Grid3, b: &Grid3| {
                let mut s = 0.0;
                for k in 1..n {
                    for j in 1..n {
                        for i in 1..n {
                            s += a.get(i, j, k) * b.get(i, j, k);
                        }
                    }
                }
                s
            };
            let lhs = dot(&au, &v);
            let rhs = dot(&u, &av);
            assert!(
                (lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()),
                "{kind:?}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn operator_is_positive_definite_on_samples() {
        let n = 8;
        for kind in OperatorKind::all() {
            let mut u = Grid3::zeros(n);
            u.fill_interior(|x, y, z| (x - 0.3) * (y + 0.1) + z);
            let mut au = Grid3::zeros(n);
            apply(kind, &u, &mut au);
            let mut s = 0.0;
            for k in 1..n {
                for j in 1..n {
                    for i in 1..n {
                        s += u.get(i, j, k) * au.get(i, j, k);
                    }
                }
            }
            assert!(s > 0.0, "{kind:?}: u^T A u = {s}");
        }
    }

    /// Truncation error of the discrete operator against the analytic
    /// manufactured solution shrinks as O(h^2).
    #[test]
    fn truncation_error_is_second_order() {
        let u_exact = |x: f64, y: f64, z: f64| (PI * x).sin() * (PI * y).sin() * (PI * z).sin();
        for kind in OperatorKind::all() {
            let f_exact = move |x: f64, y: f64, z: f64| -> f64 {
                let u = u_exact(x, y, z);
                match kind {
                    OperatorKind::Poisson1 => 3.0 * PI * PI * u,
                    OperatorKind::Poisson2Affine => {
                        let (dx, dy, dz) = kind.axis_coeffs();
                        (dx + dy + dz) * PI * PI * u
                    }
                    // f = a * 3 pi^2 u - a_x u_x with a = 1 + x/2.
                    OperatorKind::Poisson2 => {
                        let a = 1.0 + 0.5 * x;
                        let ux = PI * (PI * x).cos() * (PI * y).sin() * (PI * z).sin();
                        a * 3.0 * PI * PI * u - 0.5 * ux
                    }
                }
            };
            let mut errs = Vec::new();
            for n in [8usize, 16, 32] {
                let mut u = Grid3::zeros(n);
                u.fill_interior(u_exact);
                let mut au = Grid3::zeros(n);
                apply(kind, &u, &mut au);
                let mut f = Grid3::zeros(n);
                f.fill_interior(f_exact);
                errs.push(au.max_diff(&f));
            }
            // Ratios ~4 per refinement for O(h^2).
            assert!(errs[0] / errs[1] > 3.0, "{kind:?}: {errs:?}");
            assert!(errs[1] / errs[2] > 3.0, "{kind:?}: {errs:?}");
        }
    }

    #[test]
    fn residual_zero_at_discrete_solution() {
        // r = f - A u is exactly zero when f := A u.
        let n = 8;
        let mut u = Grid3::zeros(n);
        u.fill_interior(|x, y, z| x * y * z);
        let mut f = Grid3::zeros(n);
        apply(OperatorKind::Poisson2, &u, &mut f);
        let mut r = Grid3::zeros(n);
        residual(OperatorKind::Poisson2, &u, &f, &mut r);
        assert!(r.norm_inf() < 1e-10);
    }

    #[test]
    fn flops_ordering_matches_stencil_complexity() {
        assert!(
            OperatorKind::Poisson2.flops_per_point()
                > OperatorKind::Poisson2Affine.flops_per_point()
        );
        assert!(
            OperatorKind::Poisson2Affine.flops_per_point()
                > OperatorKind::Poisson1.flops_per_point()
        );
    }

    #[test]
    fn eigen_bound_dominates_diagonal() {
        for kind in OperatorKind::all() {
            let n = 16;
            let b = eigen_upper_bound(kind, n);
            let d = stencil_at(kind, n, n / 2, n / 2, n / 2).diag;
            assert!(b >= d);
        }
    }

    #[test]
    fn coefficient_positive_on_cube() {
        for kind in OperatorKind::all() {
            for &x in &[0.0, 0.5, 1.0] {
                assert!(kind.coefficient(x, 0.5, 0.5) > 0.0);
            }
        }
    }

    #[test]
    fn parallel_apply_matches_serial_values() {
        // n = 64 takes the parallel path; verify against stencil_at.
        let n = 64;
        let mut u = Grid3::zeros(n);
        u.fill_interior(|x, y, z| x + 2.0 * y * y + (3.0 * z).sin());
        let mut out = Grid3::zeros(n);
        apply(OperatorKind::Poisson1, &u, &mut out);
        let (i, j, k) = (31, 17, 44);
        let st = stencil_at(OperatorKind::Poisson1, n, i, j, k);
        let expect = st.diag * u.get(i, j, k)
            - st.nbr[0] * u.get(i - 1, j, k)
            - st.nbr[1] * u.get(i + 1, j, k)
            - st.nbr[2] * u.get(i, j - 1, k)
            - st.nbr[3] * u.get(i, j + 1, k)
            - st.nbr[4] * u.get(i, j, k - 1)
            - st.nbr[5] * u.get(i, j, k + 1);
        assert!((out.get(i, j, k) - expect).abs() < 1e-12);
    }
}
