//! Property-based tests for the multigrid substrate: operator symmetry and
//! positivity on random fields, smoother contraction, transfer-operator
//! consistency, and solver robustness across random right-hand sides.

use alperf_hpgmg::cycle::Hierarchy;
use alperf_hpgmg::grid3::Grid3;
use alperf_hpgmg::operator::{self, OperatorKind};
use alperf_hpgmg::smoother;
use alperf_hpgmg::transfer;
use proptest::prelude::*;

/// Fill a grid's interior from a coefficient vector (pseudo-random field
/// parameterized by proptest).
fn fill_from(g: &mut Grid3, coeffs: &[f64]) {
    let c = coeffs.to_vec();
    g.fill_interior(move |x, y, z| {
        let mut v = 0.0;
        for (k, &a) in c.iter().enumerate() {
            let f = (k + 1) as f64;
            v += a * (f * x).sin() * (f * 1.3 * y).cos() * (f * 0.7 * z).sin();
        }
        v
    });
}

fn dot(a: &Grid3, b: &Grid3) -> f64 {
    let n = a.n();
    let mut s = 0.0;
    for k in 1..n {
        for j in 1..n {
            for i in 1..n {
                s += a.get(i, j, k) * b.get(i, j, k);
            }
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// <A u, v> == <u, A v> and <A u, u> > 0 for random nonzero fields.
    #[test]
    fn operators_symmetric_positive(
        cu in prop::collection::vec(-2.0..2.0f64, 3),
        cv in prop::collection::vec(-2.0..2.0f64, 3),
    ) {
        prop_assume!(cu.iter().any(|v| v.abs() > 0.1));
        let n = 8;
        for kind in OperatorKind::all() {
            let mut u = Grid3::zeros(n);
            let mut v = Grid3::zeros(n);
            fill_from(&mut u, &cu);
            fill_from(&mut v, &cv);
            let mut au = Grid3::zeros(n);
            let mut av = Grid3::zeros(n);
            operator::apply(kind, &u, &mut au);
            operator::apply(kind, &v, &mut av);
            let lhs = dot(&au, &v);
            let rhs = dot(&u, &av);
            prop_assert!((lhs - rhs).abs() <= 1e-8 * (1.0 + lhs.abs()), "{kind:?}");
            prop_assert!(dot(&au, &u) > 0.0, "{kind:?} not positive");
        }
    }

    /// One V-cycle contracts the residual for any random RHS.
    #[test]
    fn vcycle_contracts_for_random_rhs(c in prop::collection::vec(-3.0..3.0f64, 4)) {
        prop_assume!(c.iter().any(|v| v.abs() > 0.1));
        let mut h = Hierarchy::new(OperatorKind::Poisson1, 16);
        fill_from(h.rhs_mut(), &c);
        let r0 = h.residual_norm();
        prop_assume!(r0 > 1e-12);
        h.vcycle();
        let r1 = h.residual_norm();
        prop_assert!(r1 < 0.3 * r0, "contraction {r1}/{r0}");
    }

    /// Gauss–Seidel never increases the residual, from any starting guess.
    #[test]
    fn smoother_never_diverges(
        cu in prop::collection::vec(-2.0..2.0f64, 3),
        cf in prop::collection::vec(-2.0..2.0f64, 3),
    ) {
        let n = 8;
        for kind in OperatorKind::all() {
            let mut u = Grid3::zeros(n);
            let mut f = Grid3::zeros(n);
            fill_from(&mut u, &cu);
            fill_from(&mut f, &cf);
            let mut scratch = Grid3::zeros(n);
            let mut r = Grid3::zeros(n);
            operator::residual(kind, &u, &f, &mut r);
            let before = r.norm_l2();
            smoother::gauss_seidel_rb(kind, &mut u, &f, &mut scratch);
            operator::residual(kind, &u, &f, &mut r);
            let after = r.norm_l2();
            prop_assert!(after <= before * (1.0 + 1e-9), "{kind:?}: {after} > {before}");
            prop_assert!(u.boundary_is_zero());
        }
    }

    /// Restriction then prolongation is a contraction in the max-norm for
    /// smooth fields (it removes high-frequency content, never amplifies).
    #[test]
    fn restrict_prolong_contracts_smooth_fields(c in prop::collection::vec(-2.0..2.0f64, 2)) {
        prop_assume!(c.iter().any(|v| v.abs() > 0.1));
        let mut fine = Grid3::zeros(16);
        // Low-frequency content only.
        let cc = c.clone();
        fine.fill_interior(move |x, y, z| {
            cc[0] * (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin()
                * (std::f64::consts::PI * z).sin()
                + cc[1] * x * (1.0 - x) * y * (1.0 - y) * z * (1.0 - z)
        });
        let mut coarse = Grid3::zeros(8);
        transfer::restrict(&fine, &mut coarse);
        let mut back = Grid3::zeros(16);
        transfer::prolong_add(&coarse, &mut back);
        prop_assert!(back.norm_inf() <= fine.norm_inf() * 1.05 + 1e-12);
    }

    /// FMG reduces the residual by orders of magnitude for any smooth RHS.
    #[test]
    fn fmg_solves_random_smooth_problems(c in prop::collection::vec(-3.0..3.0f64, 3)) {
        prop_assume!(c.iter().any(|v| v.abs() > 0.1));
        for kind in OperatorKind::all() {
            let mut h = Hierarchy::new(kind, 16);
            fill_from(h.rhs_mut(), &c);
            let r0 = h.residual_norm();
            prop_assume!(r0 > 1e-12);
            h.fmg(2);
            let r1 = h.residual_norm();
            prop_assert!(r1 < 1e-2 * r0, "{kind:?}: {r1} vs {r0}");
        }
    }
}
