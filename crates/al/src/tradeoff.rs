//! Cost–error tradeoff analysis (the paper's Fig. 8b and the 38% headline).
//!
//! Each AL run yields a step function `RMSE(cumulative cost)`. To compare
//! strategies the paper averages these over many random partitions and
//! plots error against *money spent* rather than iteration count, then
//! reads off:
//!
//! * the **crossover cost** `C` where Cost Efficiency's averaged curve
//!   drops below Variance Reduction's and stays there;
//! * the **relative error reduction** `(rmse_VR - rmse_CE) / rmse_VR` at
//!   `C, 2C, 3C, 5C, 10C` — the paper reports up to 38% at the crossover
//!   region and 25/21/16/13% at the multiples.

use crate::runner::AlRun;
use alperf_linalg::stats;
use alperf_linalg::vector::logspace;

/// A strategy's averaged tradeoff curve on a common cost grid.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffCurve {
    /// Cost grid (ascending).
    pub cost: Vec<f64>,
    /// Mean RMSE at each grid cost (NaN where no run has spent that much).
    pub rmse: Vec<f64>,
}

/// Evaluate a single run's step function `RMSE(cost)` at `c`: the RMSE
/// recorded at the largest cumulative cost `<= c`; `None` below the first
/// record.
fn step_value(points: &[(f64, f64)], c: f64) -> Option<f64> {
    let mut val = None;
    for &(cost, rmse) in points {
        if cost <= c {
            val = Some(rmse);
        } else {
            break;
        }
    }
    val
}

/// Average many runs' step functions onto a log-spaced cost grid.
///
/// The grid spans the smallest first-record cost to the largest final cost
/// across runs. Grid points where fewer than half the runs have data yet
/// are reported as NaN.
pub fn average_curve(runs: &[AlRun], grid_points: usize) -> TradeoffCurve {
    let all: Vec<Vec<(f64, f64)>> = runs.iter().map(|r| r.cost_rmse_points()).collect();
    let firsts: Vec<f64> = all.iter().filter_map(|p| p.first().map(|v| v.0)).collect();
    let lasts: Vec<f64> = all.iter().filter_map(|p| p.last().map(|v| v.0)).collect();
    if firsts.is_empty() {
        return TradeoffCurve {
            cost: vec![],
            rmse: vec![],
        };
    }
    let lo = stats::min(&firsts).expect("non-empty").max(1e-12);
    let hi = stats::max(&lasts).expect("non-empty").max(lo * 1.0001);
    let mut grid = logspace(lo, hi, grid_points.max(2));
    // Pin the endpoints exactly: 10^log10(hi) can round a hair below hi,
    // which would drop every run's final record from the last grid point.
    *grid.first_mut().expect("non-empty") = lo;
    *grid.last_mut().expect("non-empty") = hi;
    let rmse: Vec<f64> = grid
        .iter()
        .map(|&c| {
            let vals: Vec<f64> = all.iter().filter_map(|p| step_value(p, c)).collect();
            if vals.len() * 2 >= all.len() {
                stats::mean(&vals)
            } else {
                f64::NAN
            }
        })
        .collect();
    TradeoffCurve { cost: grid, rmse }
}

/// Comparison of two strategies' averaged curves.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffComparison {
    /// Common cost grid.
    pub cost: Vec<f64>,
    /// Baseline (e.g. Variance Reduction) mean RMSE.
    pub baseline: Vec<f64>,
    /// Contender (e.g. Cost Efficiency) mean RMSE.
    pub contender: Vec<f64>,
    /// First grid cost after which the contender's curve stays at or below
    /// the baseline's (the paper's crossover `C`), if any.
    pub crossover: Option<f64>,
    /// Maximum relative error reduction `(base - cont) / base` over costs
    /// at/after the crossover.
    pub max_relative_reduction: f64,
}

/// Compare two strategies on a common grid.
pub fn compare(
    baseline_runs: &[AlRun],
    contender_runs: &[AlRun],
    grid_points: usize,
) -> TradeoffComparison {
    // Shared grid: union of both strategies' cost ranges.
    let mut both = baseline_runs.to_vec();
    both.extend(contender_runs.iter().cloned());
    let grid = average_curve(&both, grid_points).cost;
    let eval = |runs: &[AlRun]| -> Vec<f64> {
        let all: Vec<Vec<(f64, f64)>> = runs.iter().map(|r| r.cost_rmse_points()).collect();
        grid.iter()
            .map(|&c| {
                let vals: Vec<f64> = all.iter().filter_map(|p| step_value(p, c)).collect();
                if vals.len() * 2 >= all.len() {
                    stats::mean(&vals)
                } else {
                    f64::NAN
                }
            })
            .collect()
    };
    let baseline = eval(baseline_runs);
    let contender = eval(contender_runs);
    // Crossover: first index where the contender is strictly better and
    // stays at least as good for the rest of the (defined) grid. "At least
    // as good" tolerates both relative jitter (5%) and absolute jitter
    // scaled to the baseline curve's total drop — near the maximum cost the
    // paper's curves *meet*, so tiny tail differences must not veto an
    // otherwise stable crossover.
    let defined = |i: usize| baseline[i].is_finite() && contender[i].is_finite();
    let finite_base: Vec<f64> = baseline.iter().copied().filter(|v| v.is_finite()).collect();
    let drop_scale = match (stats::max(&finite_base), stats::min(&finite_base)) {
        (Some(hi), Some(lo)) => hi - lo,
        _ => 0.0,
    };
    let tolerated = |b: f64, c: f64| c <= b * 1.05 || c - b <= 0.05 * drop_scale;
    let mut crossover = None;
    'outer: for i in 0..grid.len() {
        // The crossover is where the contender becomes *strictly* better
        // (equal curves are not an advantage worth reporting).
        if !defined(i) || contender[i] >= baseline[i] {
            continue;
        }
        for j in i..grid.len() {
            if defined(j) && !tolerated(baseline[j], contender[j]) {
                continue 'outer;
            }
        }
        crossover = Some(grid[i]);
        break;
    }
    let mut max_red = 0.0f64;
    if let Some(c) = crossover {
        for i in 0..grid.len() {
            if grid[i] >= c && defined(i) && baseline[i] > 0.0 {
                max_red = max_red.max((baseline[i] - contender[i]) / baseline[i]);
            }
        }
    }
    TradeoffComparison {
        cost: grid,
        baseline,
        contender,
        crossover,
        max_relative_reduction: max_red,
    }
}

impl TradeoffComparison {
    /// Relative error reduction at cost `c` (interpolating the grid as step
    /// functions); `None` when either curve is undefined there.
    pub fn relative_reduction_at(&self, c: f64) -> Option<f64> {
        let mut idx = None;
        for (i, &g) in self.cost.iter().enumerate() {
            if g <= c {
                idx = Some(i);
            }
        }
        let i = idx?;
        let (b, k) = (self.baseline[i], self.contender[i]);
        if b.is_finite() && k.is_finite() && b > 0.0 {
            Some((b - k) / b)
        } else {
            None
        }
    }

    /// The paper's readout table: reductions at `C, 2C, 3C, 5C, 10C`.
    pub fn reduction_table(&self) -> Vec<(f64, Option<f64>)> {
        match self.crossover {
            None => vec![],
            Some(c) => [1.0, 2.0, 3.0, 5.0, 10.0]
                .iter()
                .map(|&m| (m, self.relative_reduction_at(m * c)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{AlRun, IterationRecord};

    fn run_from_points(points: &[(f64, f64)]) -> AlRun {
        AlRun {
            strategy: "synthetic",
            history: points
                .iter()
                .enumerate()
                .map(|(i, &(cost, rmse))| IterationRecord {
                    iter: i,
                    chosen_row: i,
                    x: vec![0.0],
                    y: 0.0,
                    sigma_at_chosen: 0.0,
                    amsd: 0.0,
                    rmse,
                    cumulative_cost: cost,
                    lml: 0.0,
                    noise_std: 0.1,
                })
                .collect(),
            final_train: vec![],
            lost: vec![],
        }
    }

    #[test]
    fn step_function_semantics() {
        let pts = vec![(1.0, 0.9), (2.0, 0.5), (4.0, 0.2)];
        assert_eq!(step_value(&pts, 0.5), None);
        assert_eq!(step_value(&pts, 1.0), Some(0.9));
        assert_eq!(step_value(&pts, 3.0), Some(0.5));
        assert_eq!(step_value(&pts, 100.0), Some(0.2));
    }

    #[test]
    fn average_curve_spans_cost_range() {
        let runs = vec![
            run_from_points(&[(1.0, 1.0), (10.0, 0.5)]),
            run_from_points(&[(2.0, 0.8), (20.0, 0.4)]),
        ];
        let curve = average_curve(&runs, 10);
        assert_eq!(curve.cost.len(), 10);
        assert!((curve.cost[0] - 1.0).abs() < 1e-9);
        assert!((curve.cost[9] - 20.0).abs() / 20.0 < 1e-9);
        // At the top of the grid both runs contribute: mean of 0.5 and 0.4.
        assert!((curve.rmse[9] - 0.45).abs() < 1e-12);
    }

    #[test]
    fn crossover_detected() {
        // Baseline: flat 0.5 after cost 1. Contender: starts worse (0.8),
        // drops to 0.3 at cost 5 — crossover near 5.
        let base = vec![run_from_points(&[(1.0, 0.5), (100.0, 0.5)])];
        let cont = vec![run_from_points(&[(1.0, 0.8), (5.0, 0.3), (100.0, 0.3)])];
        let cmp = compare(&base, &cont, 50);
        let c = cmp.crossover.expect("crossover expected");
        assert!((4.0..=6.5).contains(&c), "crossover at {c}");
        // Max reduction: (0.5 - 0.3)/0.5 = 40%.
        assert!((cmp.max_relative_reduction - 0.4).abs() < 0.02);
    }

    #[test]
    fn no_crossover_when_contender_always_worse() {
        let base = vec![run_from_points(&[(1.0, 0.3), (100.0, 0.2)])];
        let cont = vec![run_from_points(&[(1.0, 0.9), (100.0, 0.8)])];
        let cmp = compare(&base, &cont, 30);
        assert_eq!(cmp.crossover, None);
        assert!(cmp.reduction_table().is_empty());
        assert_eq!(cmp.max_relative_reduction, 0.0);
    }

    #[test]
    fn reduction_table_shape() {
        let base = vec![run_from_points(&[(1.0, 1.0), (10.0, 0.8), (1000.0, 0.8)])];
        let cont = vec![run_from_points(&[(1.0, 1.0), (10.0, 0.4), (1000.0, 0.4)])];
        let cmp = compare(&base, &cont, 60);
        let table = cmp.reduction_table();
        assert_eq!(table.len(), 5);
        assert_eq!(table[0].0, 1.0);
        assert_eq!(table[4].0, 10.0);
        // Reduction at the multiples: (0.8-0.4)/0.8 = 50%.
        for (_, red) in &table[1..] {
            let r = red.expect("defined");
            assert!((r - 0.5).abs() < 0.05, "r = {r}");
        }
    }

    #[test]
    fn empty_runs_no_panic() {
        let curve = average_curve(&[], 10);
        assert!(curve.cost.is_empty());
    }
}
