//! Greedy batch selection with fantasy variance updates — the paper's
//! future-work extension ("some experiments could reasonably be run in
//! parallel which ... may indicate a less greedy selection strategy",
//! Section VI).
//!
//! To pick `q` experiments *before seeing any of their outcomes*, the
//! standard trick is exploited: the GP posterior **variance** depends only
//! on the input locations, never on the observed responses. So the batch is
//! grown greedily — pick the max-variance candidate, condition the model on
//! a "fantasy" observation at that point (its own predicted mean, which
//! leaves the mean field unchanged and shrinks variances exactly as a real
//! observation would), repeat.

use alperf_gp::model::{GpError, Prediction};
use alperf_gp::surrogate::Surrogate;
use alperf_linalg::matrix::Matrix;
use rayon::prelude::*;

/// Below this many open candidates the max-SD scan runs serially; the scan
/// is a handful of compares per item, so fork-join overhead dominates for
/// small pools.
const PAR_SCAN_MIN: usize = 256;

/// Max-predictive-SD scan over the open candidates, `(pool position, std,
/// mean)` of the winner. Chunked across rayon workers with a serial
/// in-order fold of the per-chunk winners — bit-identical to the one-pass
/// serial scan for any chunking (predictive SDs are finite, scores are
/// per-item, and both levels keep the first occurrence on ties via the
/// same `best >= s` rule).
fn max_std_candidate(open: &[usize], preds: &[Prediction]) -> Option<(usize, f64, f64)> {
    let scan = |base: usize, items: &[usize]| {
        let mut best: Option<(usize, f64, f64)> = None;
        for (i, &pos) in items.iter().enumerate() {
            let p = &preds[base + i];
            match best {
                Some((_, bs, _)) if bs >= p.std => {}
                _ => best = Some((pos, p.std, p.mean)),
            }
        }
        best
    };
    let threads = rayon::current_num_threads();
    if open.len() < PAR_SCAN_MIN || threads <= 1 {
        return scan(0, open);
    }
    let chunk = open.len().div_ceil(threads);
    let per_chunk: Vec<Option<(usize, f64, f64)>> = open
        .par_chunks(chunk)
        .enumerate()
        .map(|(ci, block)| scan(ci * chunk, block))
        .collect();
    let mut best: Option<(usize, f64, f64)> = None;
    for cand in per_chunk.into_iter().flatten() {
        match best {
            Some((_, bs, _)) if bs >= cand.1 => {}
            _ => best = Some(cand),
        }
    }
    best
}

/// Select a batch of `q` pool candidates for parallel execution.
///
/// Returns positions into `pool` (distinct, in selection order). The model
/// is refit after each fantasy point with hyperparameters *frozen* (kernel
/// and noise reused — re-optimizing on fantasy data would be circular).
/// Fantasy refits preserve the incoming model's tier: a sparse surrogate's
/// refits stay O(n m^2) with the inducing set frozen, so batch selection on
/// the approximate tier never pays an exact Cholesky.
///
/// # Errors
/// Propagates GPR failures from the fantasy refits.
pub fn select_batch(
    model: &Surrogate,
    x_all: &Matrix,
    train: &[usize],
    y_train: &[f64],
    pool: &[usize],
    q: usize,
) -> Result<Vec<usize>, GpError> {
    let mut chosen: Vec<usize> = Vec::new();
    let mut fx = x_all.select_rows(train);
    let mut fy = y_train.to_vec();
    // Frozen hyperparameters (and, on the sparse tier, frozen inducing
    // points) from the incoming model.
    let mut current = model.refit(fx.clone(), &fy, true)?;
    for _ in 0..q.min(pool.len()) {
        // Max predictive SD among unchosen pool candidates — one batched
        // prediction per round instead of a per-candidate loop.
        let open: Vec<usize> = (0..pool.len()).filter(|p| !chosen.contains(p)).collect();
        let open_rows: Vec<usize> = open.iter().map(|&p| pool[p]).collect();
        let preds = current.predict_batch(&x_all.select_rows(&open_rows))?;
        let Some((pos, _, fantasy_y)) = max_std_candidate(&open, &preds) else {
            break;
        };
        chosen.push(pos);
        // Fantasy update: condition on the predicted mean at the new point.
        let row = pool[pos];
        fx = fx.with_row(x_all.row(row)).expect("consistent dims");
        fy.push(fantasy_y);
        current = model.refit(fx.clone(), &fy, true)?;
    }
    Ok(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_gp::kernel::SquaredExponential;
    use alperf_gp::model::Gpr;

    fn setup() -> (Matrix, Vec<f64>, Vec<usize>, Vec<usize>, Surrogate) {
        // 1-D grid; train on the center, pool everywhere else.
        let n = 21;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = xs.iter().map(|v| (0.6 * v).sin()).collect();
        let x_all = Matrix::from_vec(n, 1, xs).unwrap();
        let train = vec![10usize];
        let pool: Vec<usize> = (0..n).filter(|&i| i != 10).collect();
        let model = Surrogate::Exact(
            Gpr::fit(
                x_all.select_rows(&train),
                &[y[10]],
                Box::new(SquaredExponential::new(1.5, 1.0)),
                0.1,
                true,
            )
            .unwrap(),
        );
        (x_all, y, train, pool, model)
    }

    #[test]
    fn batch_is_distinct_and_sized() {
        let (x_all, y, train, pool, model) = setup();
        let y_train = vec![y[10]];
        let batch = select_batch(&model, &x_all, &train, &y_train, &pool, 4).unwrap();
        assert_eq!(batch.len(), 4);
        let distinct: std::collections::BTreeSet<_> = batch.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn batch_spreads_over_the_domain() {
        // Without fantasy updates, the top-q max-variance points would
        // cluster at one edge. With them, the batch must cover both sides
        // of the training point.
        let (x_all, y, train, pool, model) = setup();
        let y_train = vec![y[10]];
        let batch = select_batch(&model, &x_all, &train, &y_train, &pool, 4).unwrap();
        let positions: Vec<f64> = batch.iter().map(|&p| x_all.row(pool[p])[0]).collect();
        let left = positions.iter().filter(|&&v| v < 5.0).count();
        let right = positions.iter().filter(|&&v| v > 5.0).count();
        assert!(
            left >= 1 && right >= 1,
            "batch failed to spread: {positions:?}"
        );
    }

    #[test]
    fn naive_topq_clusters_but_fantasy_does_not() {
        // Contrast check justifying the machinery: score the initial model
        // only and take the top 3 — they land on the two extreme edges'
        // neighborhoods (ties at the boundary), at least two of them
        // adjacent. Batch selection must separate them more.
        let (x_all, y, train, pool, model) = setup();
        let y_train = vec![y[10]];
        let pool_preds = model.predict_batch(&x_all.select_rows(&pool)).unwrap();
        let mut scored: Vec<(usize, f64)> = pool_preds
            .iter()
            .enumerate()
            .map(|(pos, p)| (pos, p.std))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let naive: Vec<f64> = scored[..3]
            .iter()
            .map(|&(p, _)| x_all.row(pool[p])[0])
            .collect();
        let batch = select_batch(&model, &x_all, &train, &y_train, &pool, 3).unwrap();
        let fancy: Vec<f64> = batch.iter().map(|&p| x_all.row(pool[p])[0]).collect();
        let min_gap = |v: &[f64]| -> f64 {
            let mut s = v.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s.windows(2)
                .map(|w| w[1] - w[0])
                .fold(f64::INFINITY, f64::min)
        };
        assert!(
            min_gap(&fancy) >= min_gap(&naive),
            "fantasy batch {fancy:?} not more spread than naive {naive:?}"
        );
    }

    #[test]
    fn q_larger_than_pool_is_clamped() {
        let (x_all, y, train, pool, model) = setup();
        let y_train = vec![y[10]];
        let small_pool = &pool[..2];
        let batch = select_batch(&model, &x_all, &train, &y_train, small_pool, 10).unwrap();
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn zero_q_gives_empty_batch() {
        let (x_all, y, train, pool, model) = setup();
        let y_train = vec![y[10]];
        let batch = select_batch(&model, &x_all, &train, &y_train, &pool, 0).unwrap();
        assert!(batch.is_empty());
    }

    #[test]
    fn max_std_scan_matches_serial_across_widths() {
        // Parity of the chunked scan with a one-pass serial scan on a pool
        // large enough to clear the fallback threshold, exact ties included.
        let n = 1200;
        let preds: Vec<alperf_gp::model::Prediction> = (0..n)
            .map(|i: usize| alperf_gp::model::Prediction {
                mean: (i as f64) * 0.01,
                std: if i.is_multiple_of(17) {
                    0.9
                } else {
                    (i as f64 * 0.377) % 1.0
                },
            })
            .collect();
        let open: Vec<usize> = (0..n).map(|i| i + 5).collect();
        let mut serial: Option<(usize, f64, f64)> = None;
        for (i, &pos) in open.iter().enumerate() {
            let p = &preds[i];
            match serial {
                Some((_, bs, _)) if bs >= p.std => {}
                _ => serial = Some((pos, p.std, p.mean)),
            }
        }
        for t in [1usize, 2, 4, 8] {
            let par = alperf_linalg::threads::with_threads(t, || max_std_candidate(&open, &preds));
            assert_eq!(par, serial, "t={t}");
        }
    }

    #[test]
    fn sparse_tier_fantasy_updates_stay_sparse_and_spread() {
        // A sparse surrogate's fantasy refits keep the tier (frozen inducing
        // points), and the batch still spreads over the domain.
        use alperf_gp::sparse::{select_inducing_kcenter, SparseGpr, SparseMethod};
        let n = 21;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = xs.iter().map(|v| (0.6 * v).sin()).collect();
        let x_all = Matrix::from_vec(n, 1, xs).unwrap();
        let train: Vec<usize> = vec![8, 10, 12];
        let y_train: Vec<f64> = train.iter().map(|&i| y[i]).collect();
        let pool: Vec<usize> = (0..n).filter(|i| !train.contains(i)).collect();
        let tx = x_all.select_rows(&train);
        let z = tx.select_rows(&select_inducing_kcenter(&tx, 3));
        let model = Surrogate::Sparse(
            SparseGpr::fit(
                tx,
                &y_train,
                Box::new(SquaredExponential::new(1.5, 1.0)),
                0.1,
                true,
                SparseMethod::Fitc,
                z,
            )
            .unwrap(),
        );
        let batch = select_batch(&model, &x_all, &train, &y_train, &pool, 4).unwrap();
        assert_eq!(batch.len(), 4);
        let distinct: std::collections::BTreeSet<_> = batch.iter().collect();
        assert_eq!(distinct.len(), 4);
        let positions: Vec<f64> = batch.iter().map(|&p| x_all.row(pool[p])[0]).collect();
        let left = positions.iter().filter(|&&v| v < 4.0).count();
        let right = positions.iter().filter(|&&v| v > 6.0).count();
        assert!(
            left >= 1 && right >= 1,
            "sparse batch failed to spread: {positions:?}"
        );
    }
}
