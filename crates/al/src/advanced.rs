//! Advanced acquisition strategies beyond the paper's two algorithms.
//!
//! The paper's future-work section points at richer selection rules; these
//! are the two standard ones that slot straight into the same loop:
//!
//! * [`IntegratedVarianceReduction`] (ALC, "active learning Cohn"): instead
//!   of going where *local* variance is highest, pick the candidate whose
//!   observation shrinks posterior variance the most **summed over the
//!   whole pool**. Closed form: observing `x` reduces the variance at `z`
//!   by `cov(z, x)^2 / (sigma^2(x) + sigma_n^2)`, so
//!   `score(x) = sum_z cov(z, x)^2 / (sigma^2(x) + sigma_n^2)`.
//! * [`ThompsonSampling`]: draw one function from the GP posterior over the
//!   pool and pick its extremum. Natural when AL is used for *optimization*
//!   (find the best configuration) rather than coverage; also a randomized
//!   exploration baseline.
//!
//! Both cost more per iteration than Variance Reduction — ALC needs the
//! joint posterior covariance over the pool (O(pool^2) solves), Thompson a
//! posterior Cholesky — the `acquisition_argmax` criterion bench quantifies
//! the difference.

use crate::strategy::{SelectionContext, Strategy};
use alperf_linalg::matrix::Matrix;
use rand::rngs::StdRng;

/// ALC: maximize the pool-integrated posterior-variance reduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct IntegratedVarianceReduction;

impl Strategy for IntegratedVarianceReduction {
    fn name(&self) -> &'static str {
        "integrated_variance_reduction"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, _rng: &mut StdRng) -> Option<usize> {
        if ctx.pool.is_empty() {
            return None;
        }
        let pool_x = ctx.x_all.select_rows(ctx.pool);
        let cov = ctx.model.posterior_covariance(&pool_x).ok()?;
        let noise = ctx.model.noise_std_raw();
        let noise2 = noise * noise;
        let m = ctx.pool.len();
        let mut best: Option<(usize, f64)> = None;
        for cand in 0..m {
            let denom = cov[(cand, cand)] + noise2;
            if denom <= 0.0 {
                continue;
            }
            let mut score = 0.0;
            for z in 0..m {
                let c = cov[(z, cand)];
                score += c * c;
            }
            score /= denom;
            if score.is_nan() {
                continue;
            }
            match best {
                Some((_, bs)) if bs >= score => {}
                _ => best = Some((cand, score)),
            }
        }
        best.map(|(i, _)| i)
    }
}

/// Thompson sampling: draw one posterior function over the pool and select
/// its maximizer (set `minimize` to chase the minimum instead).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThompsonSampling {
    /// Pick the sampled function's minimum instead of its maximum.
    pub minimize: bool,
}

impl Strategy for ThompsonSampling {
    fn name(&self) -> &'static str {
        "thompson_sampling"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Option<usize> {
        if ctx.pool.is_empty() {
            return None;
        }
        let pool_x: Matrix = ctx.x_all.select_rows(ctx.pool);
        let sample = ctx.model.sample_posterior(&pool_x, 1, rng).ok()?.pop()?;
        let mut best: Option<(usize, f64)> = None;
        for (i, &v) in sample.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            let key = if self.minimize { -v } else { v };
            match best {
                Some((_, bs)) if bs >= key => {}
                _ => best = Some((i, key)),
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_gp::kernel::SquaredExponential;
    use alperf_gp::model::{Gpr, Prediction};
    use alperf_gp::surrogate::Surrogate;
    use rand::SeedableRng;

    struct Fx {
        x_all: Matrix,
        y_all: Vec<f64>,
        train: Vec<usize>,
        pool: Vec<usize>,
        model: Surrogate,
    }

    fn fixture() -> Fx {
        // Train in the middle; pool on a line either side, with one isolated
        // far-right point.
        let xs: Vec<f64> = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 12.0];
        let y: Vec<f64> = xs.iter().map(|v| (v * 0.5).sin()).collect();
        let x_all = Matrix::from_vec(8, 1, xs).unwrap();
        let train = vec![3usize];
        let pool = vec![0usize, 1, 2, 4, 5, 6, 7];
        let model = Surrogate::Exact(
            Gpr::fit(
                x_all.select_rows(&train),
                &[y[3]],
                Box::new(SquaredExponential::new(1.5, 1.0)),
                0.1,
                false,
            )
            .unwrap(),
        );
        Fx {
            x_all,
            y_all: y,
            train,
            pool,
            model,
        }
    }

    fn ctx_select(fx: &Fx, strat: &mut dyn Strategy, seed: u64) -> Option<usize> {
        let preds: Vec<Prediction> = fx
            .model
            .predict_batch(&fx.x_all.select_rows(&fx.pool))
            .unwrap();
        let ctx = SelectionContext {
            model: &fx.model,
            x_all: &fx.x_all,
            y_all: &fx.y_all,
            train: &fx.train,
            pool: &fx.pool,
            predictions: &preds,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        strat.select(&ctx, &mut rng)
    }

    #[test]
    fn alc_prefers_informative_cluster_over_isolated_point() {
        // The isolated point at x=12 has maximal *local* variance but its
        // observation informs nothing else; ALC must prefer a point inside
        // the dense cluster. Plain Variance Reduction would pick x=12.
        let fx = fixture();
        let pick = ctx_select(&fx, &mut IntegratedVarianceReduction, 0).unwrap();
        let chosen_x = fx.x_all.row(fx.pool[pick])[0];
        assert!(
            chosen_x < 12.0,
            "ALC picked the isolated point x={chosen_x}"
        );
        // Contrast: VR picks the isolated point.
        let vr_pick = ctx_select(&fx, &mut crate::strategy::VarianceReduction, 0).unwrap();
        assert_eq!(fx.x_all.row(fx.pool[vr_pick])[0], 12.0);
    }

    #[test]
    fn alc_deterministic() {
        let fx = fixture();
        let a = ctx_select(&fx, &mut IntegratedVarianceReduction, 1);
        let b = ctx_select(&fx, &mut IntegratedVarianceReduction, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn thompson_varies_with_seed_but_stays_valid() {
        let fx = fixture();
        let picks: std::collections::BTreeSet<usize> = (0..12)
            .filter_map(|s| ctx_select(&fx, &mut ThompsonSampling::default(), s))
            .collect();
        assert!(!picks.is_empty());
        assert!(picks.iter().all(|&p| p < fx.pool.len()));
        // Randomized: more than one distinct pick across seeds.
        assert!(picks.len() > 1, "Thompson was deterministic: {picks:?}");
    }

    #[test]
    fn thompson_minimize_flag_changes_behavior() {
        // With a strong trend in the data, min- and max-chasing samples
        // concentrate at opposite ends.
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = xs.iter().map(|v| v * 1.0).collect();
        let x_all = Matrix::from_vec(10, 1, xs).unwrap();
        let train: Vec<usize> = (0..10).collect();
        let model = Surrogate::Exact(
            Gpr::fit(
                x_all.select_rows(&train),
                &y,
                Box::new(SquaredExponential::new(2.0, 3.0)),
                0.1,
                false,
            )
            .unwrap(),
        );
        let pool: Vec<usize> = (0..10).collect();
        let preds: Vec<Prediction> = model.predict_batch(&x_all.select_rows(&pool)).unwrap();
        let mut max_sum = 0.0;
        let mut min_sum = 0.0;
        for s in 0..8 {
            let ctx = SelectionContext {
                model: &model,
                x_all: &x_all,
                y_all: &y,
                train: &train,
                pool: &pool,
                predictions: &preds,
            };
            let mut rng = StdRng::seed_from_u64(s);
            let pmax = ThompsonSampling { minimize: false }
                .select(&ctx, &mut rng)
                .unwrap();
            let mut rng = StdRng::seed_from_u64(s);
            let pmin = ThompsonSampling { minimize: true }
                .select(&ctx, &mut rng)
                .unwrap();
            max_sum += x_all.row(pool[pmax])[0];
            min_sum += x_all.row(pool[pmin])[0];
        }
        assert!(
            max_sum > min_sum,
            "max-chasing mean position {max_sum} !> min-chasing {min_sum}"
        );
    }

    #[test]
    fn empty_pool_returns_none() {
        let mut fx = fixture();
        fx.pool.clear();
        assert_eq!(ctx_select(&fx, &mut IntegratedVarianceReduction, 0), None);
        assert_eq!(ctx_select(&fx, &mut ThompsonSampling::default(), 0), None);
    }
}
