//! Acquisition strategies: which pool candidate to run next.
//!
//! The paper's two algorithms (Section V-B):
//!
//! * **Variance Reduction** — `x* = argmax sigma_f(x)`: run the experiment
//!   the model is least sure about.
//! * **Cost Efficiency** — `x* = argmax (sigma_f(x) - mu_f(x))` (Eq. 14):
//!   with log-transformed cost responses this maximizes the
//!   *variance-per-unit-cost* ratio, leaning "toward smaller experiments
//!   rather than larger ones where such choice is appropriate".
//!
//! Both operate on a finite pool, and — unlike EMCM — a setting stays
//! selectable as long as rows remain for it (noisy functions need repeated
//! measurements, Section III).

use alperf_gp::model::Prediction;
use alperf_gp::surrogate::Surrogate;
use alperf_linalg::matrix::Matrix;
use rand::rngs::StdRng;
use rand::Rng;
use rayon::prelude::*;

/// Everything a strategy may look at when scoring the pool.
pub struct SelectionContext<'a> {
    /// The surrogate (exact or sparse GPR) fitted to the current training
    /// set.
    pub model: &'a Surrogate,
    /// Design matrix over *all* rows of the dataset.
    pub x_all: &'a Matrix,
    /// Response over all rows (log scale where applicable).
    pub y_all: &'a [f64],
    /// Row indices currently in the training set.
    pub train: &'a [usize],
    /// Row indices currently in the candidate pool.
    pub pool: &'a [usize],
    /// Predictions at each pool row (same order as `pool`).
    pub predictions: &'a [Prediction],
}

/// An acquisition strategy. Returns the position *within the pool slice*
/// of the chosen candidate, or `None` when the pool is empty.
pub trait Strategy: Send {
    /// Short name for reports ("variance_reduction", ...).
    fn name(&self) -> &'static str;

    /// Choose the next experiment.
    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Option<usize>;
}

/// The paper's basic algorithm: maximize the predictive standard deviation.
#[derive(Debug, Clone, Copy, Default)]
pub struct VarianceReduction;

impl Strategy for VarianceReduction {
    fn name(&self) -> &'static str {
        "variance_reduction"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, _rng: &mut StdRng) -> Option<usize> {
        par_argmax_by(ctx.predictions, |p| p.std)
    }
}

/// The paper's cost-aware algorithm (Eq. 14): maximize
/// `sigma_f(x) - mu_f(x)` on the log-cost scale.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostEfficiency;

impl Strategy for CostEfficiency {
    fn name(&self) -> &'static str {
        "cost_efficiency"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, _rng: &mut StdRng) -> Option<usize> {
        // With y = log10(runtime), mu is the predicted log-cost; subtracting
        // it in log space is dividing by the predicted cost in linear space.
        par_argmax_by(ctx.predictions, |p| p.std - p.mean)
    }
}

/// A tunable generalization: `sigma - lambda * mu`. `lambda = 0` recovers
/// Variance Reduction, `lambda = 1` recovers Cost Efficiency. Used by the
/// ablation benches to sweep the aggressiveness of cost awareness.
#[derive(Debug, Clone, Copy)]
pub struct CostWeighted {
    /// Cost-awareness weight.
    pub lambda: f64,
}

impl Strategy for CostWeighted {
    fn name(&self) -> &'static str {
        "cost_weighted"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, _rng: &mut StdRng) -> Option<usize> {
        let l = self.lambda;
        par_argmax_by(ctx.predictions, |p| p.std - l * p.mean)
    }
}

/// Uniform random selection from the pool — the null baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSampling;

impl Strategy for RandomSampling {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Option<usize> {
        if ctx.pool.is_empty() {
            None
        } else {
            Some(rng.gen_range(0..ctx.pool.len()))
        }
    }
}

/// `argmax` over predictions with a score function; `None` on empty input
/// or all-NaN scores. Ties resolve to the first occurrence (deterministic).
pub fn argmax_by(preds: &[Prediction], score: impl Fn(&Prediction) -> f64) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, p) in preds.iter().enumerate() {
        let s = score(p);
        if s.is_nan() {
            continue;
        }
        match best {
            Some((_, bs)) if bs >= s => {}
            _ => best = Some((i, s)),
        }
    }
    best.map(|(i, _)| i)
}

/// Pools smaller than this are scored serially: below a few hundred
/// candidates the fork-join overhead of scoped threads dominates the
/// per-item score evaluation.
const PAR_ARGMAX_MIN: usize = 256;

/// Parallel `argmax` over predictions, **bit-identical** to [`argmax_by`]
/// for any chunking: scores are computed per item (chunk-independent), the
/// chunks are contiguous and ordered, and the final fold walks chunk
/// results in input order with the same `best >= s` keep-first tie rule.
/// Falls back to the serial scan for small pools or a 1-thread pool, so
/// single-threaded runs never pay the partitioning cost.
pub fn par_argmax_by(
    preds: &[Prediction],
    score: impl Fn(&Prediction) -> f64 + Sync,
) -> Option<usize> {
    let n = preds.len();
    let threads = rayon::current_num_threads();
    if n < PAR_ARGMAX_MIN || threads <= 1 {
        return argmax_by(preds, &score);
    }
    let chunk = n.div_ceil(threads);
    let per_chunk: Vec<Option<(usize, f64)>> = preds
        .par_chunks(chunk)
        .enumerate()
        .map(|(ci, block)| {
            let base = ci * chunk;
            let mut best: Option<(usize, f64)> = None;
            for (i, p) in block.iter().enumerate() {
                let s = score(p);
                if s.is_nan() {
                    continue;
                }
                match best {
                    Some((_, bs)) if bs >= s => {}
                    _ => best = Some((base + i, s)),
                }
            }
            best
        })
        .collect();
    let mut best: Option<(usize, f64)> = None;
    for cand in per_chunk.into_iter().flatten() {
        match best {
            Some((_, bs)) if bs >= cand.1 => {}
            _ => best = Some(cand),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_gp::kernel::SquaredExponential;
    use alperf_gp::model::Gpr;
    use rand::SeedableRng;

    fn fake_predictions(stds: &[f64], means: &[f64]) -> Vec<Prediction> {
        stds.iter()
            .zip(means)
            .map(|(&std, &mean)| Prediction { mean, std })
            .collect()
    }

    /// Minimal context over a 1-D dataset for strategy tests.
    fn with_context<R>(
        preds: &[Prediction],
        f: impl FnOnce(&SelectionContext<'_>, &mut StdRng) -> R,
    ) -> R {
        let x_all = Matrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        let y_all = vec![0.0, 1.0, 0.5, 0.2];
        let train = vec![0usize];
        let pool: Vec<usize> = (0..preds.len()).map(|i| i + 1).collect();
        let model = Surrogate::Exact(
            Gpr::fit(
                x_all.select_rows(&train),
                &[0.0],
                Box::new(SquaredExponential::unit()),
                0.1,
                false,
            )
            .unwrap(),
        );
        let ctx = SelectionContext {
            model: &model,
            x_all: &x_all,
            y_all: &y_all,
            train: &train,
            pool: &pool,
            predictions: preds,
        };
        let mut rng = StdRng::seed_from_u64(0);
        f(&ctx, &mut rng)
    }

    #[test]
    fn variance_reduction_picks_highest_sd() {
        let preds = fake_predictions(&[0.1, 0.9, 0.5], &[0.0, 0.0, 0.0]);
        let pick = with_context(&preds, |ctx, rng| VarianceReduction.select(ctx, rng));
        assert_eq!(pick, Some(1));
    }

    #[test]
    fn cost_efficiency_prefers_cheap_experiments() {
        // Same SD, very different predicted (log) cost: pick the cheap one.
        let preds = fake_predictions(&[0.5, 0.5], &[3.0, 0.0]);
        let pick = with_context(&preds, |ctx, rng| CostEfficiency.select(ctx, rng));
        assert_eq!(pick, Some(1));
    }

    #[test]
    fn cost_efficiency_trades_sd_against_cost() {
        // Slightly higher SD but much higher cost loses.
        let preds = fake_predictions(&[0.6, 0.5], &[2.0, 0.0]);
        let pick = with_context(&preds, |ctx, rng| CostEfficiency.select(ctx, rng));
        assert_eq!(pick, Some(1));
        // But a large SD advantage wins even at higher cost.
        let preds = fake_predictions(&[3.0, 0.5], &[2.0, 0.0]);
        let pick = with_context(&preds, |ctx, rng| CostEfficiency.select(ctx, rng));
        assert_eq!(pick, Some(0));
    }

    #[test]
    fn cost_weighted_interpolates() {
        let preds = fake_predictions(&[0.6, 0.5], &[2.0, 0.0]);
        // lambda = 0: pure variance reduction picks index 0.
        let p0 = with_context(&preds, |ctx, rng| {
            CostWeighted { lambda: 0.0 }.select(ctx, rng)
        });
        assert_eq!(p0, Some(0));
        // lambda = 1: cost efficiency picks index 1.
        let p1 = with_context(&preds, |ctx, rng| {
            CostWeighted { lambda: 1.0 }.select(ctx, rng)
        });
        assert_eq!(p1, Some(1));
    }

    #[test]
    fn random_sampling_stays_in_bounds_and_varies() {
        let preds = fake_predictions(&[0.1, 0.2, 0.3], &[0.0; 3]);
        let picks: Vec<Option<usize>> = (0..20)
            .map(|seed| {
                let x_all = Matrix::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]).unwrap();
                let y_all = vec![0.0; 4];
                let train = vec![0usize];
                let pool = vec![1usize, 2, 3];
                let model = Surrogate::Exact(
                    Gpr::fit(
                        x_all.select_rows(&train),
                        &[0.0],
                        Box::new(SquaredExponential::unit()),
                        0.1,
                        false,
                    )
                    .unwrap(),
                );
                let ctx = SelectionContext {
                    model: &model,
                    x_all: &x_all,
                    y_all: &y_all,
                    train: &train,
                    pool: &pool,
                    predictions: &preds,
                };
                let mut rng = StdRng::seed_from_u64(seed);
                RandomSampling.select(&ctx, &mut rng)
            })
            .collect();
        assert!(picks.iter().all(|p| matches!(p, Some(i) if *i < 3)));
        let distinct: std::collections::BTreeSet<_> = picks.iter().flatten().collect();
        assert!(distinct.len() > 1, "random picks never varied");
    }

    #[test]
    fn empty_pool_returns_none() {
        let preds: Vec<Prediction> = vec![];
        let pick = with_context(&preds, |ctx, rng| VarianceReduction.select(ctx, rng));
        assert_eq!(pick, None);
        let pick = with_context(&preds, |ctx, rng| RandomSampling.select(ctx, rng));
        assert_eq!(pick, None);
    }

    #[test]
    fn argmax_skips_nan() {
        let preds = fake_predictions(&[f64::NAN, 0.2], &[0.0, 0.0]);
        assert_eq!(argmax_by(&preds, |p| p.std), Some(1));
        let allnan = fake_predictions(&[f64::NAN], &[0.0]);
        assert_eq!(argmax_by(&allnan, |p| p.std), None);
    }

    #[test]
    fn par_argmax_matches_serial_across_widths() {
        // Pseudo-random scores with deliberate exact ties and NaN holes,
        // large enough to clear the serial-fallback threshold.
        let n = 1500usize;
        let preds: Vec<Prediction> = (0..n)
            .map(|i| {
                let s = if i.is_multiple_of(97) {
                    f64::NAN
                } else if i.is_multiple_of(13) {
                    0.75 // repeated exact tie value
                } else {
                    ((i as f64 * 0.61803) % 1.0) * 0.7
                };
                Prediction { mean: 0.0, std: s }
            })
            .collect();
        let serial = argmax_by(&preds, |p| p.std);
        for t in [1usize, 2, 4, 8] {
            let par = alperf_linalg::threads::with_threads(t, || par_argmax_by(&preds, |p| p.std));
            assert_eq!(par, serial, "t={t}");
        }
        // All-NaN and empty behave like the serial scan too.
        let allnan: Vec<Prediction> = (0..600)
            .map(|_| Prediction {
                mean: 0.0,
                std: f64::NAN,
            })
            .collect();
        assert_eq!(par_argmax_by(&allnan, |p| p.std), None);
        assert_eq!(par_argmax_by(&[], |p| p.std), None);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(VarianceReduction.name(), "variance_reduction");
        assert_eq!(CostEfficiency.name(), "cost_efficiency");
        assert_eq!(RandomSampling.name(), "random");
    }
}
