//! EMCM — Expected Model Change Maximization (Cai, Zhang & Zhou 2013), the
//! regression-AL baseline the paper critiques in Section III.
//!
//! Selection criterion (paper Eq. 1):
//!
//! ```text
//! x* = argmax_{x in pool} (1/K) sum_k || (f(x) - f_k(x)) x ||
//! ```
//!
//! where `f` is trained on all available data and the `f_k` are K weak
//! learners trained on bootstrap resamples. Since `(f - f_k)(x)` is a
//! scalar, the norm factors into `|f(x) - f_k(x)| * ||x||`.
//!
//! The paper's two criticisms are visible in this implementation:
//! the K learners are "a Monte Carlo estimate of variance ... especially
//! noisy when the training set is small", and the original method removes
//! a selected point from the pool permanently (no repeated measurements of
//! noisy settings). Both behaviours are reproduced faithfully so the
//! `repro_ablation_emcm` experiment can demonstrate them.

use crate::strategy::{SelectionContext, Strategy};
use alperf_gp::kernel::Kernel;
use alperf_gp::model::Gpr;
use alperf_gp::sparse::{select_inducing_kcenter, SparseGpr};
use alperf_gp::surrogate::Surrogate;
use alperf_linalg::matrix::Matrix;
use alperf_linalg::vector::norm2;
use rand::rngs::StdRng;
use rand::Rng;
use rayon::prelude::*;

/// EMCM acquisition with K bootstrap GPR weak learners.
pub struct Emcm {
    /// Number of weak learners (the reference implementation uses 4–8).
    pub k: usize,
    /// Kernel template for the weak learners (hyperparameters are reused,
    /// not re-optimized, per weak learner — bootstrap refitting of
    /// hyperparameters would be prohibitive and is not what EMCM does).
    pub kernel: Box<dyn Kernel>,
    /// Noise level for the weak learners.
    pub noise_std: f64,
    /// Remove selected points from future consideration (original EMCM
    /// behaviour). The runner still consumes the pool row either way; this
    /// flag makes EMCM additionally blacklist *settings* it has seen.
    pub exclude_seen: bool,
    seen: Vec<Vec<f64>>,
}

impl Emcm {
    /// New EMCM baseline with `k` weak learners.
    pub fn new(k: usize, kernel: Box<dyn Kernel>, noise_std: f64) -> Self {
        Emcm {
            k: k.max(1),
            kernel,
            noise_std,
            exclude_seen: true,
            seen: Vec::new(),
        }
    }

    fn is_seen(&self, x: &[f64]) -> bool {
        self.seen
            .iter()
            .any(|s| s.iter().zip(x).all(|(a, b)| (a - b).abs() < 1e-9))
    }
}

impl Strategy for Emcm {
    fn name(&self) -> &'static str {
        "emcm"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>, rng: &mut StdRng) -> Option<usize> {
        if ctx.pool.is_empty() {
            return None;
        }
        let n = ctx.train.len();
        // Draw all bootstrap index sets serially (determinism: the RNG
        // stream must not depend on thread scheduling), then fit the K weak
        // learners in parallel — each fit is an independent O(n^3) Cholesky.
        let samples: Vec<Vec<usize>> = (0..self.k)
            .map(|_| (0..n).map(|_| ctx.train[rng.gen_range(0..n)]).collect())
            .collect();
        // Weak learners inherit the main model's tier: on the sparse tier the
        // bootstrap refits use sparse GPRs too (k-center inducing points per
        // resample, rank capped by the main model's), keeping EMCM's
        // per-iteration cost O(K n m^2) instead of O(K n^3).
        let sparse = match ctx.model {
            Surrogate::Sparse(s) => Some((s.rank(), s.method())),
            Surrogate::Exact(_) => None,
        };
        let weak: Vec<Surrogate> = samples
            .par_iter()
            .map(|sample| {
                let xs = ctx.x_all.select_rows(sample);
                let ys: Vec<f64> = sample.iter().map(|&i| ctx.y_all[i]).collect();
                // A degenerate resample fails to factor; skip that learner.
                match sparse {
                    Some((rank, method)) if xs.nrows() > rank => {
                        let z = xs.select_rows(&select_inducing_kcenter(&xs, rank));
                        SparseGpr::fit(
                            xs,
                            &ys,
                            self.kernel.clone_box(),
                            self.noise_std,
                            true,
                            method,
                            z,
                        )
                        .ok()
                        .map(Surrogate::Sparse)
                    }
                    _ => Gpr::fit(xs, &ys, self.kernel.clone_box(), self.noise_std, true)
                        .ok()
                        .map(Surrogate::Exact),
                }
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect();
        if weak.is_empty() {
            return None;
        }
        // Score pool candidates: one batched prediction per weak learner
        // over the eligible candidates instead of a per-candidate loop.
        let eligible: Vec<usize> = (0..ctx.pool.len())
            .filter(|&pos| !(self.exclude_seen && self.is_seen(ctx.x_all.row(ctx.pool[pos]))))
            .collect();
        let rows: Vec<usize> = eligible.iter().map(|&pos| ctx.pool[pos]).collect();
        let cand_x: Matrix = ctx.x_all.select_rows(&rows);
        let committee: Vec<_> = weak
            .par_iter()
            .map(|w| w.predict_batch(&cand_x).ok())
            .collect();
        // Candidate scores are independent of each other, so compute them
        // across rayon workers (contiguous ordered blocks) and keep the
        // argmax as a serial in-order fold — bit-identical to the old
        // serial loop for any chunking, and serial below the threshold
        // where fork-join overhead would dominate.
        let score_of = |ci: usize, pos: usize| -> Option<f64> {
            let x = cand_x.row(ci);
            let f = ctx.predictions[pos].mean;
            let mut change = 0.0;
            let mut used = 0usize;
            for preds in committee.iter().flatten() {
                change += (f - preds[ci].mean).abs();
                used += 1;
            }
            if used == 0 {
                return None;
            }
            let score = (change / used as f64) * norm2(x);
            if score.is_nan() {
                None
            } else {
                Some(score)
            }
        };
        const PAR_SCORE_MIN: usize = 256;
        let scores: Vec<Option<f64>> =
            if eligible.len() >= PAR_SCORE_MIN && rayon::current_num_threads() > 1 {
                eligible
                    .par_iter()
                    .enumerate()
                    .map(|(ci, &pos)| score_of(ci, pos))
                    .collect()
            } else {
                eligible
                    .iter()
                    .enumerate()
                    .map(|(ci, &pos)| score_of(ci, pos))
                    .collect()
            };
        let mut best: Option<(usize, f64)> = None;
        for (&pos, score) in eligible.iter().zip(&scores) {
            let Some(score) = *score else { continue };
            match best {
                Some((_, bs)) if bs >= score => {}
                _ => best = Some((pos, score)),
            }
        }
        // If everything was excluded, fall back to the first candidate
        // (EMCM has exhausted its view of the pool).
        let pick = best.map(|(i, _)| i).or(Some(0));
        if let Some(pos) = pick {
            if self.exclude_seen {
                self.seen.push(ctx.x_all.row(ctx.pool[pos]).to_vec());
            }
        }
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_gp::kernel::SquaredExponential;
    use alperf_gp::model::Prediction;
    use alperf_linalg::matrix::Matrix;
    use rand::SeedableRng;

    struct Fixture {
        x_all: Matrix,
        y_all: Vec<f64>,
        train: Vec<usize>,
        pool: Vec<usize>,
    }

    fn fixture() -> Fixture {
        // 1-D: training data on the left half, pool spread over the domain.
        let xs: Vec<f64> = (0..12).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = xs.iter().map(|v| (v * 0.8).sin() * (1.0 + v)).collect();
        Fixture {
            x_all: Matrix::from_vec(12, 1, xs).unwrap(),
            y_all: y,
            train: vec![0, 1, 2, 3, 4],
            pool: vec![5, 6, 7, 8, 9, 10, 11],
        }
    }

    fn run_select(f: &Fixture, emcm: &mut Emcm, seed: u64) -> Option<usize> {
        let xs = f.x_all.select_rows(&f.train);
        let ys: Vec<f64> = f.train.iter().map(|&i| f.y_all[i]).collect();
        let model = Surrogate::Exact(
            Gpr::fit(xs, &ys, Box::new(SquaredExponential::unit()), 0.1, true).unwrap(),
        );
        run_select_with(f, &model, emcm, seed)
    }

    fn run_select_with(
        f: &Fixture,
        model: &Surrogate,
        emcm: &mut Emcm,
        seed: u64,
    ) -> Option<usize> {
        let preds: Vec<Prediction> = model.predict_batch(&f.x_all.select_rows(&f.pool)).unwrap();
        let ctx = SelectionContext {
            model,
            x_all: &f.x_all,
            y_all: &f.y_all,
            train: &f.train,
            pool: &f.pool,
            predictions: &preds,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        emcm.select(&ctx, &mut rng)
    }

    #[test]
    fn selects_a_valid_pool_position() {
        let f = fixture();
        let mut emcm = Emcm::new(4, Box::new(SquaredExponential::unit()), 0.1);
        let pick = run_select(&f, &mut emcm, 0).unwrap();
        assert!(pick < f.pool.len());
    }

    #[test]
    fn prefers_far_away_large_norm_candidates() {
        // Weak learners disagree most where training data is absent (right
        // half), and the ||x|| factor further favors large x. Individual
        // picks are Monte Carlo noisy, so check the majority over seeds.
        let f = fixture();
        let mut far = 0;
        let total = 10;
        for seed in 0..total {
            let mut emcm = Emcm::new(6, Box::new(SquaredExponential::unit()), 0.1);
            let pick = run_select(&f, &mut emcm, seed).unwrap();
            if f.pool[pick] >= 8 {
                far += 1;
            }
        }
        assert!(
            far * 2 > total,
            "only {far}/{total} picks were far candidates"
        );
    }

    #[test]
    fn exclusion_blacklists_repeated_settings() {
        let f = fixture();
        let mut emcm = Emcm::new(4, Box::new(SquaredExponential::unit()), 0.1);
        let first = run_select(&f, &mut emcm, 2).unwrap();
        // Same pool again: the previous pick's setting must not repeat.
        let second = run_select(&f, &mut emcm, 3).unwrap();
        assert_ne!(f.pool[first], f.pool[second]);
    }

    #[test]
    fn monte_carlo_estimate_is_noisy_on_tiny_training_sets() {
        // The paper's critique: with a tiny training set, different RNG
        // seeds produce different selections (the variance estimate is a
        // noisy Monte Carlo). Verify the instability exists.
        let mut f = fixture();
        f.train = vec![0, 1]; // tiny
        let picks: std::collections::BTreeSet<usize> = (0..12)
            .filter_map(|seed| {
                let mut emcm = Emcm::new(3, Box::new(SquaredExponential::unit()), 0.1);
                run_select(&f, &mut emcm, seed)
            })
            .collect();
        assert!(
            picks.len() > 1,
            "EMCM was deterministic on a tiny training set: {picks:?}"
        );
    }

    #[test]
    fn empty_pool_returns_none() {
        let mut f = fixture();
        f.pool.clear();
        let mut emcm = Emcm::new(4, Box::new(SquaredExponential::unit()), 0.1);
        assert_eq!(run_select(&f, &mut emcm, 0), None);
    }

    #[test]
    fn sparse_tier_committee_selects_valid_candidates() {
        // When the main model is sparse, the bootstrap committee must fit
        // sparse weak learners (rank-capped) and still return valid picks.
        use alperf_gp::sparse::{select_inducing_kcenter, SparseGpr, SparseMethod};
        let f = fixture();
        let xs = f.x_all.select_rows(&f.train);
        let ys: Vec<f64> = f.train.iter().map(|&i| f.y_all[i]).collect();
        let z = xs.select_rows(&select_inducing_kcenter(&xs, 3));
        let model = Surrogate::Sparse(
            SparseGpr::fit(
                xs,
                &ys,
                Box::new(SquaredExponential::unit()),
                0.1,
                true,
                SparseMethod::Fitc,
                z,
            )
            .unwrap(),
        );
        let mut emcm = Emcm::new(4, Box::new(SquaredExponential::unit()), 0.1);
        let pick = run_select_with(&f, &model, &mut emcm, 5).unwrap();
        assert!(pick < f.pool.len());
        // Deterministic for a fixed seed.
        let mut emcm2 = Emcm::new(4, Box::new(SquaredExponential::unit()), 0.1);
        assert_eq!(run_select_with(&f, &model, &mut emcm2, 5), Some(pick));
    }
}
