//! Aggregation of AL trajectories across repeated runs.
//!
//! The paper evaluates each strategy on batches of random partitions of the
//! same dataset (10 runs in Fig. 7, 50 in Fig. 8) and reads averaged
//! trajectories. This module aligns runs by iteration and produces
//! mean / min / max envelopes for any recorded quantity.

use crate::runner::AlRun;

/// Mean and envelope of a per-iteration quantity across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Mean value at each iteration (up to the shortest run's length).
    pub mean: Vec<f64>,
    /// Minimum across runs.
    pub lo: Vec<f64>,
    /// Maximum across runs.
    pub hi: Vec<f64>,
}

impl Envelope {
    /// Number of iterations covered.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// True when no iterations are covered.
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }
}

/// Build an envelope for a quantity extracted from each iteration record.
pub fn envelope(
    runs: &[AlRun],
    quantity: impl Fn(&crate::runner::IterationRecord) -> f64,
) -> Envelope {
    let n_iters = runs.iter().map(|r| r.history.len()).min().unwrap_or(0);
    let mut mean = Vec::with_capacity(n_iters);
    let mut lo = Vec::with_capacity(n_iters);
    let mut hi = Vec::with_capacity(n_iters);
    // One pass per iteration: fold sum/min/max directly over the runs
    // instead of materializing a per-iteration Vec.
    for i in 0..n_iters {
        let (sum, mn, mx) = runs.iter().fold(
            (0.0f64, f64::INFINITY, f64::NEG_INFINITY),
            |(s, mn, mx), r| {
                let v = quantity(&r.history[i]);
                (s + v, mn.min(v), mx.max(v))
            },
        );
        mean.push(sum / runs.len() as f64);
        lo.push(mn);
        hi.push(mx);
    }
    Envelope { mean, lo, hi }
}

/// The three paper metrics (Fig. 7) averaged across runs:
/// `(sigma_f(x*), AMSD, RMSE)`.
pub fn paper_metrics(runs: &[AlRun]) -> (Envelope, Envelope, Envelope) {
    (
        envelope(runs, |r| r.sigma_at_chosen),
        envelope(runs, |r| r.amsd),
        envelope(runs, |r| r.rmse),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{AlRun, IterationRecord};

    fn fake_run(rmses: &[f64]) -> AlRun {
        AlRun {
            strategy: "fake",
            history: rmses
                .iter()
                .enumerate()
                .map(|(i, &rmse)| IterationRecord {
                    iter: i,
                    chosen_row: i,
                    x: vec![i as f64],
                    y: 0.0,
                    sigma_at_chosen: 1.0 / (i + 1) as f64,
                    amsd: 0.5 / (i + 1) as f64,
                    rmse,
                    cumulative_cost: (i + 1) as f64,
                    lml: 0.0,
                    noise_std: 0.1,
                })
                .collect(),
            final_train: vec![],
            lost: vec![],
        }
    }

    #[test]
    fn envelope_mean_min_max() {
        let runs = vec![fake_run(&[1.0, 0.5, 0.2]), fake_run(&[2.0, 1.0, 0.4])];
        let env = envelope(&runs, |r| r.rmse);
        assert_eq!(env.len(), 3);
        for (got, expect) in env.mean.iter().zip([1.5, 0.75, 0.3]) {
            assert!((got - expect).abs() < 1e-12);
        }
        assert_eq!(env.lo, vec![1.0, 0.5, 0.2]);
        assert_eq!(env.hi, vec![2.0, 1.0, 0.4]);
    }

    #[test]
    fn envelope_truncates_to_shortest_run() {
        let runs = vec![fake_run(&[1.0, 0.5]), fake_run(&[2.0, 1.0, 0.4])];
        let env = envelope(&runs, |r| r.rmse);
        assert_eq!(env.len(), 2);
    }

    #[test]
    fn empty_runs_give_empty_envelope() {
        let env = envelope(&[], |r| r.rmse);
        assert!(env.is_empty());
    }

    #[test]
    fn paper_metrics_shapes_agree() {
        let runs = vec![fake_run(&[1.0, 0.5, 0.2]); 3];
        let (sig, amsd, rmse) = paper_metrics(&runs);
        assert_eq!(sig.len(), 3);
        assert_eq!(amsd.len(), 3);
        assert_eq!(rmse.len(), 3);
        // sigma trace decreasing by construction.
        assert!(sig.mean.windows(2).all(|w| w[1] < w[0]));
    }
}
