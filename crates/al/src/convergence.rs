//! AMSD-based convergence detection.
//!
//! Section V-B4: "when [AMSD] converges (i.e. the average does not change
//! significantly with additional AL iterations), AL can be terminated.
//! The plots confirm that at that point RMSE will also converge to its
//! stable value, and subsequent experiments may be considered excessive."

/// Sliding-window convergence detector over a scalar series.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceDetector {
    /// Window length (iterations) over which stability is required.
    pub window: usize,
    /// Maximum relative change within the window to call it converged.
    pub rel_tolerance: f64,
}

impl Default for ConvergenceDetector {
    fn default() -> Self {
        ConvergenceDetector {
            window: 5,
            rel_tolerance: 0.05,
        }
    }
}

impl ConvergenceDetector {
    /// First iteration index at which the series has been stable for a full
    /// window: `max(w) - min(w) <= rel_tolerance * |mean(w)|` over the last
    /// `window` values. `None` if never.
    pub fn converged_at(&self, series: &[f64]) -> Option<usize> {
        if self.window == 0 || series.len() < self.window {
            return None;
        }
        for end in self.window..=series.len() {
            let w = &series[end - self.window..end];
            if w.iter().any(|v| !v.is_finite()) {
                continue; // windows containing NaN/inf cannot attest stability
            }
            let lo = w.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = w.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mean = w.iter().sum::<f64>() / w.len() as f64;
            if hi - lo <= self.rel_tolerance * mean.abs().max(f64::MIN_POSITIVE) {
                return Some(end - 1);
            }
        }
        None
    }

    /// Convenience: should AL stop now, given the AMSD history so far?
    pub fn should_stop(&self, series: &[f64]) -> bool {
        self.converged_at(series)
            .map(|i| i == series.len() - 1 || self.tail_converged(series))
            .unwrap_or(false)
    }

    fn tail_converged(&self, series: &[f64]) -> bool {
        series.len() >= self.window
            && self
                .converged_at(&series[series.len() - self.window..])
                .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_plateau() {
        let d = ConvergenceDetector {
            window: 3,
            rel_tolerance: 0.05,
        };
        let series = [1.0, 0.6, 0.4, 0.30, 0.30, 0.295];
        // Window [0.30, 0.30, 0.295] at indices 3..6: spread 0.005 < 5% of ~0.3.
        assert_eq!(d.converged_at(&series), Some(5));
    }

    #[test]
    fn no_convergence_when_still_falling() {
        let d = ConvergenceDetector::default();
        let series = [1.0, 0.8, 0.6, 0.4, 0.3, 0.2, 0.12, 0.05];
        assert_eq!(d.converged_at(&series), None);
        assert!(!d.should_stop(&series));
    }

    #[test]
    fn short_series_never_converged() {
        let d = ConvergenceDetector::default();
        assert_eq!(d.converged_at(&[0.5, 0.5]), None);
        assert_eq!(d.converged_at(&[]), None);
    }

    #[test]
    fn should_stop_on_stable_tail() {
        let d = ConvergenceDetector {
            window: 4,
            rel_tolerance: 0.1,
        };
        let series = [2.0, 1.0, 0.5, 0.31, 0.30, 0.30, 0.29, 0.30];
        assert!(d.should_stop(&series));
    }

    #[test]
    fn nan_windows_skipped() {
        let d = ConvergenceDetector {
            window: 2,
            rel_tolerance: 0.1,
        };
        let series = [f64::NAN, 1.0, 1.0];
        assert_eq!(d.converged_at(&series), Some(2));
    }

    #[test]
    fn zero_window_is_inert() {
        let d = ConvergenceDetector {
            window: 0,
            rel_tolerance: 0.1,
        };
        assert_eq!(d.converged_at(&[1.0, 1.0, 1.0]), None);
    }
}
