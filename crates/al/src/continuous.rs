//! Continuous-domain acquisition optimization.
//!
//! Paper §VI: "Realistic simulations often involve continuous or
//! near-continuous parameters, such that the active set cannot be treated
//! as finite. We expect that this could be handled by choosing the best
//! option within a finite subset or, preferably, by using continuous
//! optimization."
//!
//! This module implements both halves of that sentence: a box-constrained
//! [`ContinuousAcquisition`] optimizer that maximizes an arbitrary
//! acquisition criterion over `R^d` by multi-start pattern search
//! (derivative-free — acquisition surfaces are cheap to evaluate and the
//! pattern search cannot be fooled by the noisy curvature near training
//! points), and convenience criteria matching the paper's two strategies.

use alperf_gp::model::GpError;
use alperf_gp::surrogate::Surrogate;
use alperf_linalg::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Acquisition criteria over the GP posterior at a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Predictive standard deviation (Variance Reduction).
    Sigma,
    /// `sigma - mu` on log-cost responses (Cost Efficiency, Eq. 14).
    SigmaMinusMean,
    /// Upper confidence bound `mu + 2 sigma` (optimization-flavored).
    Ucb,
}

impl Criterion {
    /// Evaluate the criterion from a prediction.
    pub fn score(&self, mean: f64, std: f64) -> f64 {
        match self {
            Criterion::Sigma => std,
            Criterion::SigmaMinusMean => std - mean,
            Criterion::Ucb => mean + 2.0 * std,
        }
    }

    /// Chain rule: criterion gradient from the mean/SD gradients.
    pub fn score_gradient(&self, grad_mean: &[f64], grad_std: &[f64]) -> Vec<f64> {
        match self {
            Criterion::Sigma => grad_std.to_vec(),
            Criterion::SigmaMinusMean => {
                grad_std.iter().zip(grad_mean).map(|(s, m)| s - m).collect()
            }
            Criterion::Ucb => grad_mean
                .iter()
                .zip(grad_std)
                .map(|(m, s)| m + 2.0 * s)
                .collect(),
        }
    }
}

/// Box-constrained continuous acquisition maximizer.
#[derive(Debug, Clone)]
pub struct ContinuousAcquisition {
    /// Per-dimension `[lo, hi]` search box.
    pub bounds: Vec<(f64, f64)>,
    /// Number of random starts (plus one at the box center).
    pub starts: usize,
    /// Pattern-search iterations per start.
    pub iters: usize,
    /// RNG seed for the random starts.
    pub seed: u64,
}

impl ContinuousAcquisition {
    /// New optimizer over the given box with sensible defaults.
    pub fn new(bounds: Vec<(f64, f64)>) -> Self {
        assert!(!bounds.is_empty(), "need at least one dimension");
        assert!(
            bounds.iter().all(|(lo, hi)| hi > lo),
            "bounds must be non-degenerate"
        );
        ContinuousAcquisition {
            bounds,
            starts: 8,
            iters: 60,
            seed: 0,
        }
    }

    /// Maximize `criterion` over the box; returns `(x*, score)`.
    ///
    /// All start points are scored in one batched prediction, and each
    /// pattern-search sweep scores its `2d` axis probes in one batch and
    /// takes the *best* improving probe (best-improvement; the batched
    /// probes come for the same price as one, so there is nothing to gain
    /// from stopping at the first).
    ///
    /// # Errors
    /// Propagates prediction failures (dimension mismatch with the model).
    pub fn maximize(
        &self,
        model: &Surrogate,
        criterion: Criterion,
    ) -> Result<(Vec<f64>, f64), GpError> {
        let d = self.bounds.len();
        let score_batch = |cands: &Matrix| -> Result<Vec<f64>, GpError> {
            Ok(model
                .predict_batch(cands)?
                .iter()
                .map(|p| criterion.score(p.mean, p.std))
                .collect())
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        let starts: Vec<Vec<f64>> = (0..=self.starts)
            .map(|start| {
                if start == 0 {
                    self.bounds.iter().map(|(lo, hi)| 0.5 * (lo + hi)).collect()
                } else {
                    self.bounds
                        .iter()
                        .map(|(lo, hi)| rng.gen_range(*lo..=*hi))
                        .collect()
                }
            })
            .collect();
        let start_m =
            Matrix::from_vec(starts.len(), d, starts.concat()).expect("starts are d-dimensional");
        let start_f = score_batch(&start_m)?;
        // Each start's pattern search is independent and deterministic (all
        // randomness was pre-drawn into `starts` above), so the searches
        // fan out across rayon workers; the winner is picked by a serial
        // in-order fold whose `f > best_f` rule keeps the earliest start on
        // exact ties — bit-identical to running the starts sequentially.
        let refine = |(mut x, mut f): (Vec<f64>, f64)| -> Result<(Vec<f64>, f64), GpError> {
            // Pattern search: probe +/- step along each axis (one batched
            // prediction per sweep), shrink on failure.
            let mut steps: Vec<f64> = self
                .bounds
                .iter()
                .map(|(lo, hi)| (hi - lo) * 0.25)
                .collect();
            for _ in 0..self.iters {
                let mut probes: Vec<f64> = Vec::with_capacity(2 * d * d);
                let mut n_probes = 0usize;
                for j in 0..d {
                    for dir in [1.0, -1.0] {
                        let mut cand = x.clone();
                        cand[j] =
                            (cand[j] + dir * steps[j]).clamp(self.bounds[j].0, self.bounds[j].1);
                        if cand[j] == x[j] {
                            continue;
                        }
                        probes.extend_from_slice(&cand);
                        n_probes += 1;
                    }
                }
                let mut improved = false;
                if n_probes > 0 {
                    let pm =
                        Matrix::from_vec(n_probes, d, probes).expect("probes are d-dimensional");
                    let fs = score_batch(&pm)?;
                    let mut pick: Option<(usize, f64)> = None;
                    for (i, &fc) in fs.iter().enumerate() {
                        if fc.is_nan() {
                            continue;
                        }
                        match pick {
                            Some((_, pf)) if pf >= fc => {}
                            _ => pick = Some((i, fc)),
                        }
                    }
                    if let Some((i, fc)) = pick {
                        if fc > f {
                            x = pm.row(i).to_vec();
                            f = fc;
                            improved = true;
                        }
                    }
                }
                if !improved {
                    for s in steps.iter_mut() {
                        *s *= 0.5;
                    }
                    if steps.iter().all(|s| *s < 1e-6) {
                        break;
                    }
                }
            }
            Ok((x, f))
        };
        let pairs: Vec<(Vec<f64>, f64)> = starts.into_iter().zip(start_f).collect();
        let refined: Vec<Result<(Vec<f64>, f64), GpError>> = if rayon::current_num_threads() > 1 {
            pairs.into_par_iter().map(refine).collect()
        } else {
            pairs.into_iter().map(refine).collect()
        };
        let mut best_x: Option<Vec<f64>> = None;
        let mut best_f = f64::NEG_INFINITY;
        for r in refined {
            let (x, f) = r?;
            if f > best_f {
                best_f = f;
                best_x = Some(x);
            }
        }
        Ok((best_x.expect("at least one start"), best_f))
    }

    /// Like [`ContinuousAcquisition::maximize`] but using *analytic
    /// gradients* of the GP posterior (projected gradient ascent with
    /// backtracking) — the paper's §VI "gradient-based methods, which are
    /// available with GPR". Falls back to the pattern search when the
    /// model's kernel has no input gradient — or when the model is the
    /// sparse tier, whose posterior gradients are not implemented.
    ///
    /// # Errors
    /// Propagates prediction failures.
    pub fn maximize_with_gradients(
        &self,
        model: &Surrogate,
        criterion: Criterion,
    ) -> Result<(Vec<f64>, f64), GpError> {
        // Probe gradient availability once.
        let center: Vec<f64> = self.bounds.iter().map(|(lo, hi)| 0.5 * (lo + hi)).collect();
        if model.predict_with_gradient(&center)?.is_none() {
            return self.maximize(model, criterion);
        }
        let eval = |x: &[f64]| -> Result<(f64, Option<Vec<f64>>), GpError> {
            match model.predict_with_gradient(x)? {
                Some((p, gm, gs)) => Ok((
                    criterion.score(p.mean, p.std),
                    Some(criterion.score_gradient(&gm, &gs)),
                )),
                None => {
                    // sigma = 0 exactly (on a training point): value only.
                    let p = model.predict_one(x)?;
                    Ok((criterion.score(p.mean, p.std), None))
                }
            }
        };
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best_x: Option<Vec<f64>> = None;
        let mut best_f = f64::NEG_INFINITY;
        for start in 0..=self.starts {
            let mut x: Vec<f64> = if start == 0 {
                center.clone()
            } else {
                self.bounds
                    .iter()
                    .map(|(lo, hi)| rng.gen_range(*lo..=*hi))
                    .collect()
            };
            let (mut f, mut g) = eval(&x)?;
            let mut step = self
                .bounds
                .iter()
                .map(|(lo, hi)| hi - lo)
                .fold(f64::INFINITY, f64::min)
                * 0.25;
            for _ in 0..self.iters {
                let Some(grad) = g.clone() else { break };
                let gnorm = grad.iter().fold(0.0f64, |m, v| m.max(v.abs()));
                if gnorm < 1e-10 {
                    break;
                }
                // Backtracking along the (normalized) gradient.
                let mut accepted = false;
                let mut local = step;
                for _ in 0..25 {
                    let cand: Vec<f64> = x
                        .iter()
                        .zip(&grad)
                        .zip(&self.bounds)
                        .map(|((xi, gi), (lo, hi))| (xi + local * gi / gnorm).clamp(*lo, *hi))
                        .collect();
                    if cand == x {
                        break;
                    }
                    let (fc, gc) = eval(&cand)?;
                    if fc > f + 1e-14 {
                        x = cand;
                        f = fc;
                        g = gc;
                        accepted = true;
                        break;
                    }
                    local *= 0.5;
                }
                if accepted {
                    step = local * 2.0;
                } else {
                    break;
                }
            }
            if f > best_f {
                best_f = f;
                best_x = Some(x);
            }
        }
        Ok((best_x.expect("at least one start"), best_f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_gp::kernel::SquaredExponential;
    use alperf_gp::model::Gpr;
    use alperf_gp::sparse::{select_inducing_kcenter, SparseGpr, SparseMethod};
    use alperf_linalg::matrix::Matrix;
    use alperf_linalg::vector::linspace;

    fn model() -> Surrogate {
        // Training points at 2, 4, 6 in [0, 10]: sigma is maximized at the
        // domain edges (0 or 10) and locally between points.
        let xs = vec![2.0, 4.0, 6.0];
        let y = vec![0.5, 0.9, 0.2];
        Surrogate::Exact(
            Gpr::fit(
                Matrix::from_vec(3, 1, xs).unwrap(),
                &y,
                Box::new(SquaredExponential::new(1.0, 1.0)),
                0.05,
                false,
            )
            .unwrap(),
        )
    }

    #[test]
    fn continuous_matches_fine_grid_search() {
        let gpr = model();
        let acq = ContinuousAcquisition::new(vec![(0.0, 10.0)]);
        let (x_star, f_star) = acq.maximize(&gpr, Criterion::Sigma).unwrap();
        // Dense grid reference, scored in one batched prediction.
        let grid = linspace(0.0, 10.0, 2001);
        let gm = Matrix::from_vec(grid.len(), 1, grid.clone()).unwrap();
        let preds = gpr.predict_batch(&gm).unwrap();
        let (mut gx, mut gf) = (0.0, f64::NEG_INFINITY);
        for (&g, p) in grid.iter().zip(&preds) {
            if p.std > gf {
                gf = p.std;
                gx = g;
            }
        }
        assert!(
            (f_star - gf).abs() < 1e-4,
            "continuous {f_star} vs grid {gf} (at {gx} vs {x_star:?})"
        );
    }

    #[test]
    fn sigma_maximizer_is_far_from_training_data() {
        let gpr = model();
        let acq = ContinuousAcquisition::new(vec![(0.0, 10.0)]);
        let (x_star, _) = acq.maximize(&gpr, Criterion::Sigma).unwrap();
        // Farthest from {2,4,6} within [0,10] is x=10 (distance 4).
        assert!((x_star[0] - 10.0).abs() < 0.05, "x* = {:?}", x_star);
    }

    #[test]
    fn respects_bounds() {
        let gpr = model();
        let acq = ContinuousAcquisition::new(vec![(3.0, 5.0)]);
        let (x_star, _) = acq.maximize(&gpr, Criterion::Sigma).unwrap();
        assert!((3.0..=5.0).contains(&x_star[0]));
    }

    #[test]
    fn criteria_differ() {
        let gpr = model();
        let acq = ContinuousAcquisition::new(vec![(0.0, 10.0)]);
        let (x_sigma, _) = acq.maximize(&gpr, Criterion::Sigma).unwrap();
        let (x_ucb, _) = acq.maximize(&gpr, Criterion::Ucb).unwrap();
        // UCB is pulled toward the high-mean region near x=4; sigma runs to
        // the boundary.
        assert!(
            (x_sigma[0] - x_ucb[0]).abs() > 0.5,
            "{x_sigma:?} vs {x_ucb:?}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let gpr = model();
        let acq = ContinuousAcquisition::new(vec![(0.0, 10.0)]);
        let a = acq.maximize(&gpr, Criterion::SigmaMinusMean).unwrap();
        let b = acq.maximize(&gpr, Criterion::SigmaMinusMean).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn maximize_is_bit_identical_across_thread_widths() {
        // The per-start searches fan out over workers; the result must not
        // depend on the pool width.
        let gpr = model();
        let acq = ContinuousAcquisition::new(vec![(0.0, 10.0)]);
        let serial = alperf_linalg::threads::with_threads(1, || {
            acq.maximize(&gpr, Criterion::SigmaMinusMean).unwrap()
        });
        for t in [2usize, 4, 8] {
            let par = alperf_linalg::threads::with_threads(t, || {
                acq.maximize(&gpr, Criterion::SigmaMinusMean).unwrap()
            });
            assert_eq!(par, serial, "t={t}");
        }
    }

    #[test]
    fn gradient_ascent_matches_pattern_search() {
        let gpr = model();
        let acq = ContinuousAcquisition::new(vec![(0.0, 10.0)]);
        for criterion in [Criterion::Sigma, Criterion::SigmaMinusMean, Criterion::Ucb] {
            let (_, f_pat) = acq.maximize(&gpr, criterion).unwrap();
            let (_, f_grad) = acq.maximize_with_gradients(&gpr, criterion).unwrap();
            assert!(
                (f_pat - f_grad).abs() <= 2e-3 * (1.0 + f_pat.abs()),
                "{criterion:?}: pattern {f_pat} vs gradient {f_grad}"
            );
        }
    }

    #[test]
    fn gradient_ascent_falls_back_without_kernel_gradients() {
        // Matern32 has no input gradient: maximize_with_gradients must
        // silently use the pattern search and still succeed.
        let xs = vec![2.0, 4.0, 6.0];
        let y = vec![0.5, 0.9, 0.2];
        let gpr = Surrogate::Exact(
            Gpr::fit(
                Matrix::from_vec(3, 1, xs).unwrap(),
                &y,
                Box::new(alperf_gp::kernel::Matern32::new(1.0, 1.0)),
                0.05,
                false,
            )
            .unwrap(),
        );
        let acq = ContinuousAcquisition::new(vec![(0.0, 10.0)]);
        let (x_star, f_star) = acq.maximize_with_gradients(&gpr, Criterion::Sigma).unwrap();
        assert!((0.0..=10.0).contains(&x_star[0]));
        assert!(f_star > 0.0);
    }

    #[test]
    fn sparse_surrogate_falls_back_to_pattern_search() {
        // The sparse tier has no posterior gradients: both entry points
        // must still find (nearly) the same maximizer.
        let n = 24;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 10.0 / (n - 1) as f64).collect();
        let y: Vec<f64> = xs.iter().map(|v| (0.5 * v).sin()).collect();
        let x = Matrix::from_vec(n, 1, xs).unwrap();
        let z = x.select_rows(&select_inducing_kcenter(&x, 8));
        let sparse = Surrogate::Sparse(
            SparseGpr::fit(
                x,
                &y,
                Box::new(SquaredExponential::new(1.0, 1.0)),
                0.05,
                false,
                SparseMethod::Fitc,
                z,
            )
            .unwrap(),
        );
        let acq = ContinuousAcquisition::new(vec![(0.0, 10.0)]);
        let (xp, fp) = acq.maximize(&sparse, Criterion::Sigma).unwrap();
        let (xg, fg) = acq
            .maximize_with_gradients(&sparse, Criterion::Sigma)
            .unwrap();
        assert_eq!(xp, xg, "fallback must be exactly the pattern search");
        assert_eq!(fp, fg);
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn degenerate_bounds_rejected() {
        ContinuousAcquisition::new(vec![(1.0, 1.0)]);
    }

    #[test]
    fn works_in_two_dimensions() {
        let xs = vec![0.5, 0.5, 0.2, 0.8];
        let y = vec![1.0, 0.0];
        let gpr = Surrogate::Exact(
            Gpr::fit(
                Matrix::from_vec(2, 2, xs).unwrap(),
                &y,
                Box::new(SquaredExponential::new(0.4, 1.0)),
                0.05,
                false,
            )
            .unwrap(),
        );
        let acq = ContinuousAcquisition::new(vec![(0.0, 1.0), (0.0, 1.0)]);
        let (x_star, f_star) = acq.maximize(&gpr, Criterion::Sigma).unwrap();
        assert_eq!(x_star.len(), 2);
        assert!(f_star > 0.5, "far corners should be near the prior SD");
        // The maximizer is a corner away from both training points.
        let d1 = ((x_star[0] - 0.5).powi(2) + (x_star[1] - 0.5).powi(2)).sqrt();
        assert!(d1 > 0.3, "x* too close to training data: {x_star:?}");
    }
}
