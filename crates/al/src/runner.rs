//! The Active-Learning driver loop (the paper's "prototype", Section IV).
//!
//! One *run* replays AL over a dataset partition:
//!
//! 1. train a GPR on the Initial rows (hyperparameters optimized with the
//!    configured noise floor — the knob behind Fig. 7);
//! 2. each iteration: predict over the Active pool, let the strategy pick a
//!    candidate, "run the experiment" (reveal that row's measured
//!    response), move the row into the training set, refit;
//! 3. per iteration, record the paper's monitoring quantities
//!    (Section V-B3): `sigma_f(x*)` at the selected candidate, AMSD
//!    (arithmetic mean predictive SD over the pool), Test-set RMSE (Eq. 2),
//!    and the cumulative cost (runtime x cores) spent so far.
//!
//! The offline oracle is the dataset itself; each pool row is one recorded
//! measurement, so repeated settings remain selectable through their other
//! rows — the noisy-function requirement of Section III.

use crate::cache::PoolPredictionCache;
use crate::oracle::{DatasetOracle, ExperimentOracle, ExperimentOutcome};
use crate::strategy::{SelectionContext, Strategy};
use alperf_data::partition::Partition;
use alperf_gp::model::GpError;
use alperf_gp::optimize::{fit_surrogate, GprConfig};
use alperf_gp::surrogate::Surrogate;
use alperf_linalg::matrix::Matrix;
use alperf_obs::names;
use alperf_obs::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How the runner schedules surrogate refits against experiment execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineConfig {
    /// The paper's serial loop: select, measure, refit, repeat. This path
    /// is bit-identical to the pre-pipelining runner and serves as the
    /// determinism oracle for the speculative mode.
    #[default]
    Off,
    /// Asynchronous AL: while the selected experiment is being measured on
    /// a worker thread, the main thread refits the surrogate on the
    /// training set *without* the in-flight measurement (one batch stale)
    /// and speculatively selects the next candidate from it. The in-flight
    /// outcome is reconciled when both sides finish. Trades depth-1 model
    /// staleness for overlapping measurement latency with fit/select
    /// compute — the asynchronous setting of the materials-benchmarking
    /// literature.
    Speculative,
}

/// Configuration of one AL run.
pub struct AlConfig {
    /// GPR fitting configuration (kernel template, noise floor, restarts).
    pub gpr: GprConfig,
    /// Maximum AL iterations (pool exhaustion stops earlier).
    pub max_iters: usize,
    /// Refit hyperparameters every `refit_every` iterations (1 = always,
    /// matching the paper; larger values are an ablation knob).
    pub refit_every: usize,
    /// Warm-start refits from the previous iteration's hyperparameters
    /// with a single ascent (no random restarts), falling back to the full
    /// multi-restart search every `full_refit_every` iterations. The LML
    /// landscape moves slowly as one point is added, so this matches the
    /// full search in practice at a fraction of the cost.
    pub warm_start: bool,
    /// Period of full multi-restart refits under warm starting.
    pub full_refit_every: usize,
    /// RNG seed for strategy randomness.
    pub seed: u64,
    /// Refit/measurement scheduling (serial, or speculative pipelining).
    pub pipeline: PipelineConfig,
}

impl AlConfig {
    /// Paper-faithful defaults around a given GPR config.
    pub fn new(gpr: GprConfig) -> Self {
        AlConfig {
            gpr,
            max_iters: 100,
            refit_every: 1,
            warm_start: true,
            full_refit_every: 10,
            seed: 0,
            pipeline: PipelineConfig::Off,
        }
    }
}

/// Everything recorded about one AL iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Iteration number (0-based).
    pub iter: usize,
    /// Dataset row chosen this iteration.
    pub chosen_row: usize,
    /// Input point of the chosen row.
    pub x: Vec<f64>,
    /// Response revealed by the "experiment".
    pub y: f64,
    /// Predictive SD at the chosen candidate *before* adding it —
    /// the paper's `sigma_f(x)` trace.
    pub sigma_at_chosen: f64,
    /// Arithmetic Mean of the Standard Deviation over the remaining pool.
    pub amsd: f64,
    /// RMSE on the Test set (Eq. 2).
    pub rmse: f64,
    /// Cumulative experiment cost after running this experiment.
    pub cumulative_cost: f64,
    /// Log marginal likelihood of the fit used this iteration.
    pub lml: f64,
    /// Fitted noise level `sigma_n` this iteration.
    pub noise_std: f64,
}

/// A selected experiment that the oracle lost to a fault: the runner
/// charged its cost, dropped the candidate, and carried on.
#[derive(Debug, Clone, PartialEq)]
pub struct LostExperiment {
    /// Iteration (0-based) on which the loss happened.
    pub iter: usize,
    /// Dataset row whose measurement was lost.
    pub row: usize,
    /// Execution attempts the oracle burned before giving up.
    pub attempts: u32,
    /// Cost charged for the lost experiment.
    pub cost: f64,
}

/// A completed AL run.
#[derive(Debug, Clone)]
pub struct AlRun {
    /// Strategy name.
    pub strategy: &'static str,
    /// Per-iteration records, in order (degraded iterations are absent
    /// here — see `lost`).
    pub history: Vec<IterationRecord>,
    /// Rows in the training set at the end (initial + selected).
    pub final_train: Vec<usize>,
    /// Experiments lost to faults, in iteration order (empty under the
    /// default [`crate::oracle::DatasetOracle`]).
    pub lost: Vec<LostExperiment>,
}

impl AlRun {
    /// The RMSE trajectory.
    pub fn rmse_series(&self) -> Vec<f64> {
        self.history.iter().map(|r| r.rmse).collect()
    }

    /// The AMSD trajectory.
    pub fn amsd_series(&self) -> Vec<f64> {
        self.history.iter().map(|r| r.amsd).collect()
    }

    /// The cumulative-cost trajectory.
    pub fn cost_series(&self) -> Vec<f64> {
        self.history.iter().map(|r| r.cumulative_cost).collect()
    }

    /// `(cumulative_cost, rmse)` pairs — the raw material of the paper's
    /// Fig. 8(b) tradeoff curves.
    pub fn cost_rmse_points(&self) -> Vec<(f64, f64)> {
        self.history
            .iter()
            .map(|r| (r.cumulative_cost, r.rmse))
            .collect()
    }
}

/// Errors from an AL run.
#[derive(Debug, Clone, PartialEq)]
pub enum AlError {
    /// GPR fitting failed irrecoverably.
    Gp(GpError),
    /// The partition does not match the dataset size.
    BadPartition(String),
}

impl std::fmt::Display for AlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlError::Gp(e) => write!(f, "GPR failure in AL loop: {e}"),
            AlError::BadPartition(s) => write!(f, "bad partition: {s}"),
        }
    }
}

impl std::error::Error for AlError {}

impl From<GpError> for AlError {
    fn from(e: GpError) -> Self {
        AlError::Gp(e)
    }
}

/// Run Active Learning over `(x_all, y_all)` with the given partition.
///
/// ```
/// use alperf_al::runner::{run_al, AlConfig};
/// use alperf_al::strategy::VarianceReduction;
/// use alperf_data::partition::Partition;
/// use alperf_gp::kernel::SquaredExponential;
/// use alperf_gp::optimize::GprConfig;
/// use alperf_linalg::matrix::Matrix;
///
/// let n = 20;
/// let x = Matrix::from_fn(n, 1, |i, _| i as f64 * 0.4);
/// let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin()).collect();
/// let cost = vec![1.0; n];
/// let part = Partition::paper_default(n, 7);
/// let cfg = AlConfig {
///     max_iters: 5,
///     ..AlConfig::new(GprConfig::new(Box::new(SquaredExponential::unit())).with_restarts(1))
/// };
/// let run = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).unwrap();
/// assert_eq!(run.history.len(), 5);
/// ```
///
/// * `cost` — per-row experiment cost (the paper uses runtime x cores);
///   pass all-ones to count experiments instead.
/// * `strategy` — the acquisition strategy (mutable: EMCM keeps state).
pub fn run_al(
    x_all: &Matrix,
    y_all: &[f64],
    cost: &[f64],
    partition: &Partition,
    strategy: &mut dyn Strategy,
    config: &AlConfig,
) -> Result<AlRun, AlError> {
    run_al_with_oracle(
        x_all,
        y_all,
        cost,
        partition,
        strategy,
        &DatasetOracle,
        config,
    )
}

/// [`run_al`] with an explicit [`ExperimentOracle`] deciding each selected
/// experiment's fate. Under a faulty oracle the loop degrades gracefully:
/// a [`ExperimentOutcome::Lost`] experiment is charged its cost, flagged in
/// the telemetry stream (`al.degraded_iteration` counter + record), and
/// removed from the pool — the next iteration re-selects from the
/// survivors instead of aborting. Lost experiments are reported in
/// [`AlRun::lost`]; the metric history only contains iterations that
/// produced a measurement.
pub fn run_al_with_oracle(
    x_all: &Matrix,
    y_all: &[f64],
    cost: &[f64],
    partition: &Partition,
    strategy: &mut dyn Strategy,
    oracle: &dyn ExperimentOracle,
    config: &AlConfig,
) -> Result<AlRun, AlError> {
    let n = x_all.nrows();
    if y_all.len() != n || cost.len() != n {
        return Err(AlError::BadPartition(format!(
            "X has {n} rows, y has {}, cost has {}",
            y_all.len(),
            cost.len()
        )));
    }
    if !partition.is_valid_cover(n) {
        return Err(AlError::BadPartition(format!(
            "partition does not cover 0..{n} exactly"
        )));
    }
    match config.pipeline {
        PipelineConfig::Off => {
            run_al_serial(x_all, y_all, cost, partition, strategy, oracle, config)
        }
        PipelineConfig::Speculative => {
            run_al_pipelined(x_all, y_all, cost, partition, strategy, oracle, config)
        }
    }
}

/// One surrogate refit under the runner's scheduling policy: a full
/// multi-restart hyperparameter search, a warm-started single ascent, a
/// rank-one Cholesky extension, or a fixed-hyperparameter refit — exactly
/// the decision tree the serial loop has always used, shared verbatim with
/// the pipelined runner. Returns the refit kind (`"full"`, `"warm"`,
/// `"rank1"`, `"refit"`); the caller invalidates prediction caches iff the
/// kind re-optimized hyperparameters (`"full"`/`"warm"`).
fn refit_step(
    config: &AlConfig,
    x_all: &Matrix,
    y_all: &[f64],
    train: &[usize],
    iter: usize,
    model: &mut Option<Surrogate>,
    warm_theta: &mut Option<Vec<f64>>,
) -> Result<&'static str, AlError> {
    let xs = x_all.select_rows(train);
    let ys: Vec<f64> = train.iter().map(|&i| y_all[i]).collect();
    let refit_kind;
    // Re-optimize hyperparameters on schedule; while the training set
    // is small every new point reshapes the LML, so always optimize.
    let optimize_now =
        model.is_none() || train.len() <= 30 || iter.is_multiple_of(config.refit_every.max(1));
    if optimize_now {
        // Full multi-restart search early (small-n fits are cheap and
        // the LML landscape still shifts with every point — a warm
        // start can lock onto a degenerate all-noise optimum), then
        // warm-started single ascents with periodic full refreshes.
        let full_search = !config.warm_start
            || warm_theta.is_none()
            || train.len() < 15
            || iter.is_multiple_of(config.full_refit_every.max(1));
        let cfg = if full_search {
            config.gpr.clone()
        } else {
            // Seed the single ascent from the previous optimum.
            let theta = warm_theta.as_ref().expect("checked above");
            let mut kernel = config.gpr.kernel.clone_box();
            let nk = kernel.n_params();
            kernel.set_params(&theta[..nk]);
            let mut cfg = config.gpr.clone();
            if config.gpr.optimize_noise && theta.len() > nk {
                cfg.noise_init = theta[nk].exp();
            }
            cfg.kernel = kernel;
            cfg.restarts = 1;
            // One added point barely moves the optimum: a short, loose
            // ascent suffices between full refreshes.
            cfg.max_iters = cfg.max_iters.min(60);
            cfg.grad_tol = cfg.grad_tol.max(1e-4);
            cfg
        };
        refit_kind = if full_search { "full" } else { "warm" };
        let (m, outcome) = fit_surrogate(&xs, &ys, &cfg)?;
        *warm_theta = Some(outcome.theta);
        *model = Some(m);
    } else {
        // Recondition on the grown training set at the current
        // hyperparameters. The common case (exactly one new point, same
        // prefix) takes the O(n^2) rank-one Cholesky extension; anything
        // unexpected — or a numerically indefinite extension from a
        // duplicated point — falls back to a full O(n^3) refit.
        let prev = model.as_ref().expect("model exists when not optimizing");
        // (Under standardization the full refit re-centers on the grown
        // response set while the incremental path freezes the old
        // scaler — only bit-identical when standardization is off.)
        let incremental = if !config.gpr.standardize && prev.n_train() + 1 == train.len() {
            let new_row = train.last().expect("non-empty train");
            prev.with_observation(x_all.row(*new_row), y_all[*new_row])
                .ok()
        } else {
            None
        };
        *model = Some(match incremental {
            Some(m) => {
                refit_kind = "rank1";
                m
            }
            None => {
                refit_kind = "refit";
                let prev = model.as_ref().expect("model exists");
                prev.refit(xs, &ys, config.gpr.standardize)?
            }
        });
    }
    Ok(refit_kind)
}

#[allow(clippy::too_many_arguments)]
fn run_al_serial(
    x_all: &Matrix,
    y_all: &[f64],
    cost: &[f64],
    partition: &Partition,
    strategy: &mut dyn Strategy,
    oracle: &dyn ExperimentOracle,
    config: &AlConfig,
) -> Result<AlRun, AlError> {
    let mut train: Vec<usize> = partition.initial.clone();
    let mut pool: Vec<usize> = partition.active.clone();
    let test = &partition.test;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut history = Vec::new();
    let mut lost: Vec<LostExperiment> = Vec::new();
    let mut cumulative_cost: f64 = train.iter().map(|&i| cost[i]).sum();
    let mut model: Option<Surrogate> = None;

    // Telemetry is strictly observational: timestamps are read and records
    // emitted only when the global switch is on, and nothing below feeds
    // back into the numerics — a telemetry-on run is bit-identical to a
    // telemetry-off run (see tests/obs_determinism.rs).
    let obs_on = alperf_obs::enabled();
    let run_id = if obs_on { alperf_obs::next_run_id() } else { 0 };
    if obs_on {
        alperf_obs::record(
            "al.run_start",
            &[
                ("run", Value::U64(run_id)),
                ("strategy", Value::Str(strategy.name())),
                ("n_initial", Value::U64(train.len() as u64)),
                ("pool_size", Value::U64(pool.len() as u64)),
                ("test_size", Value::U64(test.len() as u64)),
                ("max_iters", Value::U64(config.max_iters as u64)),
                ("seed", Value::U64(config.seed)),
            ],
        );
    }
    // Per-campaign labeled series, resolved once so the per-iteration cost
    // is a single relaxed atomic on the cached child handle. The fit-time
    // family is keyed by (strategy, tier) and the tier can change across
    // iterations (Auto tier), so that one is resolved per iteration.
    let campaign_label = run_id.to_string();
    let campaign_key = format!("campaign:{run_id}");
    let campaign_iters = obs_on.then(|| {
        alperf_obs::counter_vec(
            names::AL_CAMPAIGN_ITERATIONS,
            &[names::LABEL_CAMPAIGN, names::LABEL_STRATEGY],
        )
        .with(&[&campaign_label, strategy.name()])
    });
    let campaign_degraded = obs_on.then(|| {
        alperf_obs::counter_vec(
            names::AL_CAMPAIGN_DEGRADED,
            &[names::LABEL_CAMPAIGN, names::LABEL_STRATEGY],
        )
        .with(&[&campaign_label, strategy.name()])
    });
    let fit_by_tier = obs_on.then(|| {
        alperf_obs::histogram_vec(
            names::AL_FIT_BY_TIER,
            &[names::LABEL_STRATEGY, names::LABEL_TIER],
        )
    });

    // Batched-prediction caches over the pool and the (fixed) test set.
    // Between hyperparameter refits these maintain K(candidates, train)
    // incrementally — one appended column per iteration — instead of
    // rebuilding it; see `crate::cache` for the invalidation rule.
    let mut pool_cache = PoolPredictionCache::new(x_all.select_rows(&pool));
    let mut test_cache = PoolPredictionCache::new(x_all.select_rows(test));

    let mut warm_theta: Option<Vec<f64>> = None;
    for iter in 0..config.max_iters {
        if pool.is_empty() {
            break;
        }
        // One span per iteration, with fit/predict/select child spans
        // bracketing the same regions the *_ns record fields measure —
        // the trace tree decomposes al.iteration into its stages.
        let _iter_span = alperf_obs::span("al.iteration");
        let fit_span = alperf_obs::span("al.iteration.fit");
        let t_fit = if obs_on {
            alperf_obs::clock::monotonic_ns()
        } else {
            0
        };
        let refit_kind = refit_step(
            config,
            x_all,
            y_all,
            &train,
            iter,
            &mut model,
            &mut warm_theta,
        )?;
        let optimize_now = matches!(refit_kind, "full" | "warm");
        let fit_ns = if obs_on {
            alperf_obs::clock::monotonic_ns() - t_fit
        } else {
            0
        };
        drop(fit_span);
        let m = model.as_ref().expect("model fitted above");
        if optimize_now {
            // Hyperparameters may have moved: the cached cross-covariances
            // are stale. (The caches also self-check, but dropping them
            // here keeps the intent explicit.)
            pool_cache.invalidate();
            test_cache.invalidate();
        }
        // Batched predictions over the pool and the test set: one blocked
        // cross-covariance + multi-RHS solve each instead of a per-point
        // loop of O(n^2) scalar solves.
        let cache_warm = obs_on && pool_cache.is_warm_for(m);
        let predict_span = alperf_obs::span("al.iteration.predict");
        let t_predict = if obs_on {
            alperf_obs::clock::monotonic_ns()
        } else {
            0
        };
        let predictions = pool_cache.predictions(m)?;
        let rmse = if test.is_empty() {
            0.0
        } else {
            let se: f64 = test_cache
                .predictions(m)?
                .iter()
                .zip(test)
                .map(|(p, &i)| {
                    let d = p.mean - y_all[i];
                    d * d
                })
                .sum();
            (se / test.len() as f64).sqrt()
        };
        let predict_ns = if obs_on {
            alperf_obs::clock::monotonic_ns() - t_predict
        } else {
            0
        };
        drop(predict_span);
        let select_span = alperf_obs::span("al.iteration.select");
        // AMSD folded directly — no per-iteration Vec of SDs.
        let amsd = predictions.iter().map(|p| p.std).sum::<f64>() / predictions.len() as f64;
        // Strategy picks.
        let ctx = SelectionContext {
            model: m,
            x_all,
            y_all,
            train: &train,
            pool: &pool,
            predictions: &predictions,
        };
        let t_select = if obs_on {
            alperf_obs::clock::monotonic_ns()
        } else {
            0
        };
        let Some(pos) = strategy.select(&ctx, &mut rng) else {
            break;
        };
        let select_ns = if obs_on {
            alperf_obs::clock::monotonic_ns() - t_select
        } else {
            0
        };
        drop(select_span);
        let row = pool[pos];
        // "Run" the experiment through the oracle. Either way its cost is
        // charged — the paper counts failed experiments against the budget.
        let outcome = oracle.run_experiment(row);
        cumulative_cost += cost[row];
        if let ExperimentOutcome::Lost { attempts } = outcome {
            // Graceful degradation: flag the loss, drop the candidate from
            // the pool (its measurement cannot be obtained), and re-select
            // from the survivors next iteration. The model, training set,
            // and cache->train mapping are untouched.
            if obs_on {
                alperf_obs::inc(names::AL_DEGRADED_ITERATION);
                if let Some(c) = &campaign_degraded {
                    c.inc();
                }
                // A degraded iteration is still forward progress.
                alperf_obs::watchdog::global().beat(&campaign_key);
                alperf_obs::record(
                    names::AL_DEGRADED_ITERATION,
                    &[
                        ("run", Value::U64(run_id)),
                        ("iter", Value::U64(iter as u64)),
                        ("row", Value::U64(row as u64)),
                        ("attempts", Value::U64(attempts as u64)),
                        ("pool_size", Value::U64(pool.len() as u64)),
                        ("cum_cost", Value::F64(cumulative_cost)),
                    ],
                );
            }
            lost.push(LostExperiment {
                iter,
                row,
                attempts,
                cost: cost[row],
            });
            pool.swap_remove(pos);
            pool_cache.swap_remove(pos);
            continue;
        }
        let attempts = outcome.attempts();
        if obs_on {
            alperf_obs::record(
                "al.iteration",
                &[
                    ("run", Value::U64(run_id)),
                    ("iter", Value::U64(iter as u64)),
                    ("chosen_row", Value::U64(row as u64)),
                    ("pool_size", Value::U64(pool.len() as u64)),
                    ("refit", Value::Str(refit_kind)),
                    ("tier", Value::Str(m.tier_name())),
                    ("rank", Value::U64(m.rank() as u64)),
                    ("fit_ns", Value::U64(fit_ns)),
                    ("predict_ns", Value::U64(predict_ns)),
                    ("select_ns", Value::U64(select_ns)),
                    ("cache_warm", Value::Bool(cache_warm)),
                    ("sigma", Value::F64(predictions[pos].std)),
                    ("amsd", Value::F64(amsd)),
                    ("rmse", Value::F64(rmse)),
                    ("cum_cost", Value::F64(cumulative_cost)),
                    ("lml", Value::F64(m.lml())),
                    ("noise", Value::F64(m.noise_std())),
                    ("attempts", Value::U64(attempts as u64)),
                ],
            );
            // (The stage spans above already record into the
            // al.iteration.* histograms on drop.)
            alperf_obs::inc("al.iterations");
            if let Some(c) = &campaign_iters {
                c.inc();
            }
            if let Some(f) = &fit_by_tier {
                f.with(&[strategy.name(), m.tier_name()]).record(fit_ns);
            }
            alperf_obs::watchdog::global().beat(&campaign_key);
        }
        history.push(IterationRecord {
            iter,
            chosen_row: row,
            x: x_all.row(row).to_vec(),
            y: y_all[row],
            sigma_at_chosen: predictions[pos].std,
            amsd,
            rmse,
            cumulative_cost,
            lml: m.lml(),
            noise_std: m.noise_std(),
        });
        // "Run" the experiment: the row's measurement joins the training set.
        pool.swap_remove(pos);
        train.push(row);
        // Mirror the pool change in the caches and extend K(., train) by
        // the new point's column while the kernel is still the one the
        // caches were built under.
        pool_cache.swap_remove(pos);
        pool_cache.extend_train(x_all.row(row), m);
        test_cache.extend_train(x_all.row(row), m);
        // Force a refit next iteration if refit_every == 1.
        if config.refit_every <= 1 {
            model = None;
        }
    }
    if obs_on {
        // A finished campaign is not a stalled one.
        alperf_obs::watchdog::global().clear(&campaign_key);
    }
    Ok(AlRun {
        strategy: strategy.name(),
        history,
        final_train: train,
        lost,
    })
}

/// A selection whose measurement is in flight: everything the reconcile
/// step needs to emit the `al.iteration` record and history entry was
/// captured at selection time, from the (possibly stale) model that made
/// the choice.
struct PendingSelection {
    iter: usize,
    row: usize,
    /// Pool size at selection time, *before* the row was removed — the
    /// same quantity the serial loop records.
    pool_size: usize,
    sigma: f64,
    amsd: f64,
    rmse: f64,
    refit_kind: &'static str,
    tier: &'static str,
    rank: usize,
    lml: f64,
    noise_std: f64,
    fit_ns: u64,
    predict_ns: u64,
    select_ns: u64,
    cache_warm: bool,
}

/// One pipelined selection round: refit on the current training set (which
/// excludes any in-flight measurement — that is the speculation), predict
/// over the pool, let the strategy pick, capture the record payload, and
/// remove the chosen row from the pool so the next round cannot re-select
/// it. Returns `None` when the strategy declines (empty/NaN pool).
#[allow(clippy::too_many_arguments)]
fn pipeline_select_round(
    x_all: &Matrix,
    y_all: &[f64],
    test: &[usize],
    config: &AlConfig,
    strategy: &mut dyn Strategy,
    rng: &mut StdRng,
    iter: usize,
    train: &[usize],
    pool: &mut Vec<usize>,
    pool_cache: &mut PoolPredictionCache,
    test_cache: &mut PoolPredictionCache,
    model: &mut Option<Surrogate>,
    warm_theta: &mut Option<Vec<f64>>,
    obs_on: bool,
) -> Result<Option<PendingSelection>, AlError> {
    if pool.is_empty() {
        return Ok(None);
    }
    let _iter_span = alperf_obs::span("al.iteration");
    let fit_span = alperf_obs::span("al.iteration.fit");
    let t_fit = if obs_on {
        alperf_obs::clock::monotonic_ns()
    } else {
        0
    };
    let refit_kind = refit_step(config, x_all, y_all, train, iter, model, warm_theta)?;
    let fit_ns = if obs_on {
        alperf_obs::clock::monotonic_ns() - t_fit
    } else {
        0
    };
    drop(fit_span);
    let m = model.as_ref().expect("model fitted above");
    if matches!(refit_kind, "full" | "warm") {
        pool_cache.invalidate();
        test_cache.invalidate();
    }
    let cache_warm = obs_on && pool_cache.is_warm_for(m);
    let predict_span = alperf_obs::span("al.iteration.predict");
    let t_predict = if obs_on {
        alperf_obs::clock::monotonic_ns()
    } else {
        0
    };
    let predictions = pool_cache.predictions(m)?;
    let rmse = if test.is_empty() {
        0.0
    } else {
        let se: f64 = test_cache
            .predictions(m)?
            .iter()
            .zip(test)
            .map(|(p, &i)| {
                let d = p.mean - y_all[i];
                d * d
            })
            .sum();
        (se / test.len() as f64).sqrt()
    };
    let predict_ns = if obs_on {
        alperf_obs::clock::monotonic_ns() - t_predict
    } else {
        0
    };
    drop(predict_span);
    let select_span = alperf_obs::span("al.iteration.select");
    let amsd = predictions.iter().map(|p| p.std).sum::<f64>() / predictions.len() as f64;
    let ctx = SelectionContext {
        model: m,
        x_all,
        y_all,
        train,
        pool,
        predictions: &predictions,
    };
    let t_select = if obs_on {
        alperf_obs::clock::monotonic_ns()
    } else {
        0
    };
    let Some(pos) = strategy.select(&ctx, rng) else {
        return Ok(None);
    };
    let select_ns = if obs_on {
        alperf_obs::clock::monotonic_ns() - t_select
    } else {
        0
    };
    drop(select_span);
    let row = pool[pos];
    let pending = PendingSelection {
        iter,
        row,
        pool_size: pool.len(),
        sigma: predictions[pos].std,
        amsd,
        rmse,
        refit_kind,
        tier: m.tier_name(),
        rank: m.rank(),
        lml: m.lml(),
        noise_std: m.noise_std(),
        fit_ns,
        predict_ns,
        select_ns,
        cache_warm,
    };
    // The measurement is now in flight: take the row out of the pool (and
    // mirror it in the cache) so the next speculative round selects from
    // the survivors.
    pool.swap_remove(pos);
    pool_cache.swap_remove(pos);
    Ok(Some(pending))
}

/// The speculative pipelined loop (`PipelineConfig::Speculative`): while a
/// worker thread measures the in-flight experiment, the main thread refits
/// the surrogate on the training set *without* that measurement and
/// speculatively selects the next candidate from the stale posterior. The
/// two sides join and the outcome is reconciled: a measured row enters the
/// training set (and the caches' cross-covariance grows by its column); a
/// lost row is charged, flagged (`al.pipeline.lost_speculation` +
/// `al.degraded_iteration`), and the already-made stale selection stays
/// valid because the lost row was removed from the pool at selection time.
///
/// Each history/record entry reports the quantities *the selecting model
/// saw* — sigma, AMSD, RMSE and LML lag the serial loop by the one
/// in-flight measurement, which is the price of the overlap. The strategy
/// RNG is consumed in selection order on the main thread only, so runs are
/// bit-reproducible for a fixed seed; telemetry stays strictly
/// observational (clocks are only read when the global switch is on).
#[allow(clippy::too_many_arguments)]
fn run_al_pipelined(
    x_all: &Matrix,
    y_all: &[f64],
    cost: &[f64],
    partition: &Partition,
    strategy: &mut dyn Strategy,
    oracle: &dyn ExperimentOracle,
    config: &AlConfig,
) -> Result<AlRun, AlError> {
    let mut train: Vec<usize> = partition.initial.clone();
    let mut pool: Vec<usize> = partition.active.clone();
    let test = &partition.test;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut history = Vec::new();
    let mut lost: Vec<LostExperiment> = Vec::new();
    let mut cumulative_cost: f64 = train.iter().map(|&i| cost[i]).sum();
    let mut model: Option<Surrogate> = None;
    let mut warm_theta: Option<Vec<f64>> = None;

    let obs_on = alperf_obs::enabled();
    let run_id = if obs_on { alperf_obs::next_run_id() } else { 0 };
    if obs_on {
        alperf_obs::record(
            "al.run_start",
            &[
                ("run", Value::U64(run_id)),
                ("strategy", Value::Str(strategy.name())),
                ("n_initial", Value::U64(train.len() as u64)),
                ("pool_size", Value::U64(pool.len() as u64)),
                ("test_size", Value::U64(test.len() as u64)),
                ("max_iters", Value::U64(config.max_iters as u64)),
                ("seed", Value::U64(config.seed)),
                ("pipeline", Value::Str("speculative")),
            ],
        );
    }
    // Same per-campaign labeled series as the serial loop (one resolved
    // child handle; per-event cost is a relaxed atomic).
    let campaign_label = run_id.to_string();
    let campaign_key = format!("campaign:{run_id}");
    let campaign_iters = obs_on.then(|| {
        alperf_obs::counter_vec(
            names::AL_CAMPAIGN_ITERATIONS,
            &[names::LABEL_CAMPAIGN, names::LABEL_STRATEGY],
        )
        .with(&[&campaign_label, strategy.name()])
    });
    let campaign_degraded = obs_on.then(|| {
        alperf_obs::counter_vec(
            names::AL_CAMPAIGN_DEGRADED,
            &[names::LABEL_CAMPAIGN, names::LABEL_STRATEGY],
        )
        .with(&[&campaign_label, strategy.name()])
    });
    let fit_by_tier = obs_on.then(|| {
        alperf_obs::histogram_vec(
            names::AL_FIT_BY_TIER,
            &[names::LABEL_STRATEGY, names::LABEL_TIER],
        )
    });

    let mut pool_cache = PoolPredictionCache::new(x_all.select_rows(&pool));
    let mut test_cache = PoolPredictionCache::new(x_all.select_rows(test));

    // Prime the pipeline: the first selection has nothing to overlap with.
    let mut iter = 0usize;
    let mut pending: Option<PendingSelection> = if config.max_iters == 0 {
        None
    } else {
        pipeline_select_round(
            x_all,
            y_all,
            test,
            config,
            strategy,
            &mut rng,
            iter,
            &train,
            &mut pool,
            &mut pool_cache,
            &mut test_cache,
            &mut model,
            &mut warm_theta,
            obs_on,
        )?
    };
    if pending.is_some() {
        iter += 1;
    }

    while let Some(p) = pending.take() {
        let want_next = iter < config.max_iters && !pool.is_empty();
        let row = p.row;
        // Overlap: measure `row` on a scoped worker thread while this
        // thread refits on the stale training set and selects the next
        // candidate. The worker only touches the oracle (Sync); every
        // piece of runner state stays on this thread.
        let mut next: Result<Option<PendingSelection>, AlError> = Ok(None);
        let mut select_side_ns = 0u64;
        let (outcome, measure_ns) = std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let t0 = if obs_on {
                    alperf_obs::clock::monotonic_ns()
                } else {
                    0
                };
                let out = oracle.run_experiment(row);
                let t1 = if obs_on {
                    alperf_obs::clock::monotonic_ns()
                } else {
                    0
                };
                (out, t1 - t0)
            });
            if want_next {
                let t0 = if obs_on {
                    alperf_obs::clock::monotonic_ns()
                } else {
                    0
                };
                next = pipeline_select_round(
                    x_all,
                    y_all,
                    test,
                    config,
                    strategy,
                    &mut rng,
                    iter,
                    &train,
                    &mut pool,
                    &mut pool_cache,
                    &mut test_cache,
                    &mut model,
                    &mut warm_theta,
                    obs_on,
                );
                if obs_on {
                    select_side_ns = alperf_obs::clock::monotonic_ns() - t0;
                    if matches!(next, Ok(Some(_))) {
                        alperf_obs::inc(names::AL_PIPELINE_STALE_SELECTS);
                    }
                }
            }
            match handle.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        });
        // Reconcile the in-flight measurement. Its cost is charged either
        // way — the paper counts failed experiments against the budget.
        cumulative_cost += cost[row];
        if obs_on {
            alperf_obs::inc(names::AL_PIPELINE_RECONCILES);
            alperf_obs::add(
                names::AL_PIPELINE_OVERLAP_NS,
                select_side_ns.min(measure_ns),
            );
        }
        match outcome {
            ExperimentOutcome::Lost { attempts } => {
                // Graceful degradation under speculation: the row was
                // already out of the pool (removed at selection time), so
                // the speculative selection made above remains valid; the
                // loss is charged and flagged, nothing is rolled back.
                if obs_on {
                    alperf_obs::inc(names::AL_DEGRADED_ITERATION);
                    alperf_obs::inc(names::AL_PIPELINE_LOST_SPECULATION);
                    if let Some(c) = &campaign_degraded {
                        c.inc();
                    }
                    alperf_obs::watchdog::global().beat(&campaign_key);
                    alperf_obs::record(
                        names::AL_DEGRADED_ITERATION,
                        &[
                            ("run", Value::U64(run_id)),
                            ("iter", Value::U64(p.iter as u64)),
                            ("row", Value::U64(row as u64)),
                            ("attempts", Value::U64(attempts as u64)),
                            ("pool_size", Value::U64(p.pool_size as u64)),
                            ("cum_cost", Value::F64(cumulative_cost)),
                        ],
                    );
                    alperf_obs::record(
                        names::AL_PIPELINE_LOST_SPECULATION,
                        &[
                            ("run", Value::U64(run_id)),
                            ("iter", Value::U64(p.iter as u64)),
                            ("row", Value::U64(row as u64)),
                            ("cost", Value::F64(cost[row])),
                        ],
                    );
                }
                lost.push(LostExperiment {
                    iter: p.iter,
                    row,
                    attempts,
                    cost: cost[row],
                });
            }
            ExperimentOutcome::Measured { attempts } => {
                if obs_on {
                    alperf_obs::record(
                        "al.iteration",
                        &[
                            ("run", Value::U64(run_id)),
                            ("iter", Value::U64(p.iter as u64)),
                            ("chosen_row", Value::U64(row as u64)),
                            ("pool_size", Value::U64(p.pool_size as u64)),
                            ("refit", Value::Str(p.refit_kind)),
                            ("tier", Value::Str(p.tier)),
                            ("rank", Value::U64(p.rank as u64)),
                            ("fit_ns", Value::U64(p.fit_ns)),
                            ("predict_ns", Value::U64(p.predict_ns)),
                            ("select_ns", Value::U64(p.select_ns)),
                            ("cache_warm", Value::Bool(p.cache_warm)),
                            ("sigma", Value::F64(p.sigma)),
                            ("amsd", Value::F64(p.amsd)),
                            ("rmse", Value::F64(p.rmse)),
                            ("cum_cost", Value::F64(cumulative_cost)),
                            ("lml", Value::F64(p.lml)),
                            ("noise", Value::F64(p.noise_std)),
                            ("attempts", Value::U64(attempts as u64)),
                        ],
                    );
                    alperf_obs::inc("al.iterations");
                    if let Some(c) = &campaign_iters {
                        c.inc();
                    }
                    if let Some(f) = &fit_by_tier {
                        f.with(&[strategy.name(), p.tier]).record(p.fit_ns);
                    }
                    alperf_obs::watchdog::global().beat(&campaign_key);
                }
                history.push(IterationRecord {
                    iter: p.iter,
                    chosen_row: row,
                    x: x_all.row(row).to_vec(),
                    y: y_all[row],
                    sigma_at_chosen: p.sigma,
                    amsd: p.amsd,
                    rmse: p.rmse,
                    cumulative_cost,
                    lml: p.lml,
                    noise_std: p.noise_std,
                });
                train.push(row);
                // Extend the cached cross-covariances by the measured
                // row's column while the model they are warm for is still
                // current (the caches self-check and rebuild otherwise).
                if let Some(m) = model.as_ref() {
                    pool_cache.extend_train(x_all.row(row), m);
                    test_cache.extend_train(x_all.row(row), m);
                }
                // Force a refit next round if refit_every == 1.
                if config.refit_every <= 1 {
                    model = None;
                }
            }
        }
        pending = next?;
        if pending.is_some() {
            iter += 1;
        }
    }
    if obs_on {
        alperf_obs::watchdog::global().clear(&campaign_key);
    }
    Ok(AlRun {
        strategy: strategy.name(),
        history,
        final_train: train,
        lost,
    })
}

/// RMSE of the model on the test rows (Eq. 2), via one batched prediction.
pub fn test_rmse(model: &Surrogate, x_all: &Matrix, y_all: &[f64], test: &[usize]) -> f64 {
    if test.is_empty() {
        return 0.0;
    }
    let preds = model
        .predict_batch(&x_all.select_rows(test))
        .expect("dims match");
    let se: f64 = preds
        .iter()
        .zip(test)
        .map(|(p, &i)| {
            let d = p.mean - y_all[i];
            d * d
        })
        .sum();
    (se / test.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{CostEfficiency, RandomSampling, VarianceReduction};
    use alperf_gp::kernel::SquaredExponential;
    use alperf_gp::noise::NoiseFloor;
    use rand::Rng;

    /// Synthetic 1-D noisy dataset: y = sin(x) * 2 + noise; cost grows with x.
    fn dataset(n: usize, seed: u64) -> (Matrix, Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 8.0 / n as f64).collect();
        let y: Vec<f64> = xs
            .iter()
            .map(|v| (v).sin() * 2.0 + rng.gen_range(-0.15..0.15))
            .collect();
        let cost: Vec<f64> = xs.iter().map(|v| 1.0 + v * v).collect();
        (Matrix::from_vec(n, 1, xs).unwrap(), y, cost)
    }

    fn config() -> AlConfig {
        let gpr = GprConfig::new(Box::new(SquaredExponential::unit()))
            .with_noise_floor(NoiseFloor::Fixed(0.05))
            .with_restarts(2)
            .with_seed(7);
        AlConfig {
            max_iters: 25,
            seed: 3,
            ..AlConfig::new(gpr)
        }
    }

    #[test]
    fn al_reduces_rmse_and_amsd() {
        let (x, y, cost) = dataset(60, 1);
        let part = Partition::random(60, 2, 0.8, 5);
        let run = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &config()).unwrap();
        assert_eq!(run.history.len(), 25);
        let first = &run.history[0];
        let last = run.history.last().unwrap();
        assert!(
            last.rmse < 0.6 * first.rmse,
            "rmse {} -> {}",
            first.rmse,
            last.rmse
        );
        // AMSD on tiny training sets can start artificially *low* (the
        // paper's overfitting observation, Fig. 7a), so compare the final
        // value against the early-iteration peak rather than iteration 0.
        let early_peak = run.history[..8]
            .iter()
            .map(|r| r.amsd)
            .fold(0.0f64, f64::max);
        assert!(
            last.amsd < early_peak,
            "amsd final {} !< early peak {early_peak}",
            last.amsd
        );
    }

    #[test]
    fn variance_reduction_explores_edges_first() {
        // Seeding in the middle: the first selections should hit the domain
        // edges (the paper's "star-like pattern", Fig. 6).
        let (x, y, cost) = dataset(50, 2);
        // Build a partition whose initial point is central. The seed is
        // chosen so the property holds with margin for the vendored RNG
        // stream; the "star-like" pattern is typical, not universal.
        let mut part = Partition::random(50, 1, 0.9, 0);
        // Swap the initial to be the middle row.
        let mid = 25usize;
        if part.initial[0] != mid {
            let old_init = part.initial[0];
            if let Some(p) = part.active.iter().position(|&i| i == mid) {
                part.active[p] = old_init;
                part.initial[0] = mid;
            } else if let Some(p) = part.test.iter().position(|&i| i == mid) {
                part.test[p] = old_init;
                part.initial[0] = mid;
            }
        }
        let run = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &config()).unwrap();
        let first_picks: Vec<f64> = run.history.iter().take(2).map(|r| r.x[0]).collect();
        // Both early picks are in the outer thirds of the domain [0, 8].
        for v in &first_picks {
            assert!(
                *v < 8.0 / 3.0 || *v > 16.0 / 3.0,
                "early pick {v} not at an edge; picks: {first_picks:?}"
            );
        }
    }

    #[test]
    fn cost_efficiency_spends_less_for_same_iterations() {
        // Seed chosen so the expected cost ordering holds with margin for
        // the vendored RNG stream; CE beats VR on cost typically, not always.
        let (x, y, cost) = dataset(60, 3);
        let part = Partition::random(60, 1, 0.8, 1);
        let vr = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &config()).unwrap();
        let ce = run_al(&x, &y, &cost, &part, &mut CostEfficiency, &config()).unwrap();
        let vr_cost = vr.history.last().unwrap().cumulative_cost;
        let ce_cost = ce.history.last().unwrap().cumulative_cost;
        assert!(
            ce_cost < vr_cost,
            "cost efficiency {ce_cost} !< variance reduction {vr_cost}"
        );
    }

    #[test]
    fn pool_rows_never_repeat_but_settings_can() {
        let (x, y, cost) = dataset(40, 4);
        let part = Partition::random(40, 1, 0.9, 2);
        let run = run_al(&x, &y, &cost, &part, &mut RandomSampling, &config()).unwrap();
        let rows: Vec<usize> = run.history.iter().map(|r| r.chosen_row).collect();
        let distinct: std::collections::BTreeSet<_> = rows.iter().collect();
        assert_eq!(rows.len(), distinct.len(), "a pool row was selected twice");
    }

    #[test]
    fn history_is_reproducible() {
        let (x, y, cost) = dataset(40, 5);
        let part = Partition::random(40, 1, 0.8, 3);
        let a = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &config()).unwrap();
        let b = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &config()).unwrap();
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn cumulative_cost_is_monotone_and_correct() {
        let (x, y, cost) = dataset(30, 6);
        let part = Partition::random(30, 1, 0.8, 1);
        let run = run_al(&x, &y, &cost, &part, &mut RandomSampling, &config()).unwrap();
        let mut expected: f64 = part.initial.iter().map(|&i| cost[i]).sum();
        for r in &run.history {
            expected += cost[r.chosen_row];
            assert!((r.cumulative_cost - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn stops_when_pool_exhausted() {
        let (x, y, cost) = dataset(12, 7);
        let part = Partition::random(12, 1, 0.5, 0); // small pool
        let mut cfg = config();
        cfg.max_iters = 100;
        let run = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).unwrap();
        assert_eq!(run.history.len(), part.active.len());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (x, y, cost) = dataset(10, 8);
        let bad_part = Partition {
            initial: vec![0],
            active: vec![1],
            test: vec![2],
        }; // does not cover all rows
        assert!(matches!(
            run_al(&x, &y, &cost, &bad_part, &mut VarianceReduction, &config()),
            Err(AlError::BadPartition(_))
        ));
        let part = Partition::random(10, 1, 0.8, 0);
        assert!(run_al(&x, &y[..5], &cost, &part, &mut VarianceReduction, &config()).is_err());
    }

    #[test]
    fn refit_every_affects_workload_not_correctness() {
        let (x, y, cost) = dataset(40, 9);
        let part = Partition::random(40, 1, 0.8, 4);
        let mut cfg = config();
        cfg.refit_every = 5;
        let run = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).unwrap();
        assert_eq!(run.history.len(), 25);
        // Still learns.
        assert!(run.history.last().unwrap().rmse < run.history[0].rmse);
    }

    #[test]
    fn single_initial_point_works() {
        // The paper's realistic scenario: a single initial experiment.
        let (x, y, cost) = dataset(30, 10);
        let part = Partition::paper_default(30, 1);
        assert_eq!(part.initial.len(), 1);
        let run = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &config()).unwrap();
        assert!(!run.history.is_empty());
        assert!(run.history.iter().all(|r| r.rmse.is_finite()));
    }

    #[test]
    fn pipelined_campaign_learns_and_is_reproducible() {
        let (x, y, cost) = dataset(60, 1);
        let part = Partition::random(60, 2, 0.8, 5);
        let mut cfg = config();
        cfg.pipeline = PipelineConfig::Speculative;
        let a = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).unwrap();
        let b = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).unwrap();
        assert_eq!(a.history, b.history, "pipelined run not reproducible");
        assert_eq!(a.history.len(), 25);
        let first = &a.history[0];
        let last = a.history.last().unwrap();
        assert!(
            last.rmse < 0.6 * first.rmse,
            "pipelined AL failed to learn: rmse {} -> {}",
            first.rmse,
            last.rmse
        );
        // Depth-1 staleness costs accuracy boundedly: the pipelined final
        // RMSE stays within a small absolute band of the serial loop's.
        let serial = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &config()).unwrap();
        let rs = serial.history.last().unwrap().rmse;
        assert!(
            (last.rmse - rs).abs() <= 0.5 * rs.max(0.1),
            "pipelined final RMSE {} too far from serial {rs}",
            last.rmse
        );
    }

    #[test]
    fn pipelined_charges_costs_in_selection_order() {
        let (x, y, cost) = dataset(30, 6);
        let part = Partition::random(30, 1, 0.8, 1);
        let mut cfg = config();
        cfg.pipeline = PipelineConfig::Speculative;
        let run = run_al(&x, &y, &cost, &part, &mut RandomSampling, &cfg).unwrap();
        let mut expected: f64 = part.initial.iter().map(|&i| cost[i]).sum();
        for r in &run.history {
            expected += cost[r.chosen_row];
            assert!((r.cumulative_cost - expected).abs() < 1e-9);
        }
        // No row selected twice even under speculation.
        let rows: Vec<usize> = run.history.iter().map(|r| r.chosen_row).collect();
        let distinct: std::collections::BTreeSet<_> = rows.iter().collect();
        assert_eq!(rows.len(), distinct.len());
    }

    #[test]
    fn pipelined_stops_on_pool_exhaustion_and_respects_max_iters() {
        let (x, y, cost) = dataset(12, 7);
        let part = Partition::random(12, 1, 0.5, 0);
        let mut cfg = config();
        cfg.max_iters = 100;
        cfg.pipeline = PipelineConfig::Speculative;
        let run = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).unwrap();
        assert_eq!(run.history.len(), part.active.len());
        cfg.max_iters = 3;
        let run = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).unwrap();
        assert_eq!(run.history.len(), 3);
        cfg.max_iters = 0;
        let run = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).unwrap();
        assert!(run.history.is_empty());
    }

    #[test]
    fn approximate_tier_campaign_learns_and_is_reproducible() {
        // The whole loop (fit, pool scoring, caches, selection) on the
        // sparse tier: still learns, and histories are bit-identical.
        use alperf_gp::optimize::{ApproxConfig, FitTier};
        let (x, y, cost) = dataset(60, 8);
        let part = Partition::random(60, 2, 0.8, 7);
        let approx = ApproxConfig {
            max_rank: 12,
            hyper_subsample: 20,
            gate_max_n: 0, // no exact-refit gate: force the sparse path
            ..ApproxConfig::default()
        };
        let gpr = GprConfig::new(Box::new(SquaredExponential::unit()))
            .with_noise_floor(NoiseFloor::Fixed(0.05))
            .with_restarts(2)
            .with_seed(7)
            .with_tier(FitTier::Approximate)
            .with_approx(approx);
        let cfg = AlConfig {
            max_iters: 20,
            seed: 3,
            ..AlConfig::new(gpr)
        };
        let a = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).unwrap();
        let b = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).unwrap();
        assert_eq!(a.history, b.history);
        assert_eq!(a.history.len(), 20);
        let first = &a.history[0];
        let last = a.history.last().unwrap();
        assert!(last.rmse.is_finite());
        assert!(
            last.rmse < first.rmse,
            "sparse-tier AL failed to learn: rmse {} -> {}",
            first.rmse,
            last.rmse
        );
    }
}
