#![warn(missing_docs)]
//! # alperf-al
//!
//! Active Learning for regression in performance analysis — the paper's
//! contribution (Sections III and V). The pieces:
//!
//! * [`strategy`]: acquisition strategies over a finite candidate pool —
//!   **Variance Reduction** (max predictive SD, the paper's basic
//!   algorithm), **Cost Efficiency** (max `sigma - mu` on log-cost
//!   responses, Eq. 14), random sampling, and the
//!   [`emcm`] baseline the paper critiques (Eq. 1, bootstrap ensemble).
//! * [`runner`]: the AL loop — seed GPR on the Initial set, then repeatedly
//!   (re)fit hyperparameters, score the Active pool, select, query, grow
//!   the training set — recording the paper's three progress metrics per
//!   iteration: `sigma_f(x*)`, AMSD over the pool, and Test-set RMSE
//!   (Section V-B3), plus cumulative experiment cost (runtime x cores).
//! * [`tradeoff`]: cost–error tradeoff curves averaged over many random
//!   partitions, crossover detection, and relative-error-reduction
//!   readouts at cost multiples (the paper's 38% / 25% / 21% / 16% / 13%
//!   series, Section V-B4 and Fig. 8b).
//! * [`batch`]: greedy batch selection with fantasy variance updates (the
//!   paper's future-work extension for parallel experiments).
//! * [`advanced`]: integrated-variance (ALC) and Thompson-sampling
//!   acquisitions built on the GP joint posterior.
//! * [`baselines`]: static factorial / latin-hypercube designs evaluated
//!   under the same metrics, for the related-work comparison (Section II-B).
//! * [`convergence`]: AMSD-based stopping — "when it converges ... AL can
//!   be terminated" (Section V-B4).

pub mod advanced;
pub mod baselines;
pub mod batch;
pub mod cache;
pub mod continuous;
pub mod convergence;
pub mod emcm;
pub mod metrics;
pub mod oracle;
pub mod runner;
pub mod strategy;
pub mod tradeoff;

pub use oracle::{
    DatasetOracle, ExperimentOracle, ExperimentOutcome, LatencyOracle, SeededFaultOracle,
};
pub use runner::{AlConfig, AlRun, IterationRecord, LostExperiment, PipelineConfig};
pub use strategy::{CostEfficiency, RandomSampling, Strategy, VarianceReduction};
