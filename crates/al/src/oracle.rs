//! Experiment oracles: how the AL loop "runs" a selected experiment.
//!
//! In the offline replay the oracle is the dataset itself — every selected
//! row's measurement already exists, so [`DatasetOracle`] always succeeds.
//! On a real testbed experiments fail (the cluster layer's fault taxonomy:
//! crashes, rejects, timeouts); [`SeededFaultOracle`] reproduces that
//! failure surface at the AL boundary so the runner's graceful-degradation
//! path is testable end to end without standing up the whole simulator.
//!
//! The contract mirrors the cluster executor's determinism argument: an
//! oracle's verdict is a **pure function of the row identity** (plus the
//! oracle's own seed), never of iteration order, thread, or telemetry
//! state — so AL trajectories under faults remain bit-reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What happened when the runner asked for row `r` to be measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentOutcome {
    /// The measurement came back (possibly after retries).
    Measured {
        /// Execution attempts consumed, including the successful one.
        attempts: u32,
    },
    /// The experiment was lost: every attempt failed. The runner must
    /// degrade gracefully — charge the burned cost, drop the candidate,
    /// and re-select from the surviving pool.
    Lost {
        /// Execution attempts consumed before giving up.
        attempts: u32,
    },
}

impl ExperimentOutcome {
    /// Attempts consumed either way.
    pub fn attempts(&self) -> u32 {
        match self {
            ExperimentOutcome::Measured { attempts } | ExperimentOutcome::Lost { attempts } => {
                *attempts
            }
        }
    }
}

/// Decides the fate of a selected experiment. Implementations must be
/// deterministic in `row` — see the module docs.
///
/// `Sync` is a supertrait because the pipelined runner measures the
/// in-flight experiment on a worker thread while the main thread refits
/// and selects; a shared reference to the oracle crosses that boundary.
pub trait ExperimentOracle: Sync {
    /// Run the experiment for dataset row `row`.
    fn run_experiment(&self, row: usize) -> ExperimentOutcome;

    /// Oracle name, for telemetry.
    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// The offline-replay oracle: the dataset already holds every measurement,
/// so nothing ever fails.
#[derive(Debug, Clone, Copy, Default)]
pub struct DatasetOracle;

impl ExperimentOracle for DatasetOracle {
    fn run_experiment(&self, _row: usize) -> ExperimentOutcome {
        ExperimentOutcome::Measured { attempts: 1 }
    }

    fn name(&self) -> &'static str {
        "dataset"
    }
}

/// splitmix64-style avalanche of (oracle seed, row) — the oracle's only
/// entropy source, so verdicts are row-local and order-independent.
fn mix2(a: u64, b: u64) -> u64 {
    let mut h = a ^ b.wrapping_mul(0x9e3779b97f4a7c15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// A seeded fault oracle mirroring the cluster layer's transient/permanent
/// split: a row is faulty with probability `failure_rate`; faulty rows are
/// permanently lost with probability `permanent_fraction`, otherwise they
/// recover after one or two retries (lost anyway if the retry budget is
/// too small).
#[derive(Debug, Clone)]
pub struct SeededFaultOracle {
    /// Oracle seed (independent of the AL strategy seed).
    pub seed: u64,
    /// Probability a row's experiment is faulty at all.
    pub failure_rate: f64,
    /// Among faulty rows, the fraction that no retry can save.
    pub permanent_fraction: f64,
    /// Retry budget: maximum attempts per experiment.
    pub max_attempts: u32,
}

impl SeededFaultOracle {
    /// An oracle with the cluster layer's default persistence split
    /// (30% of faults permanent) and retry budget (3 attempts).
    pub fn new(seed: u64, failure_rate: f64) -> Self {
        SeededFaultOracle {
            seed,
            failure_rate,
            permanent_fraction: 0.3,
            max_attempts: 3,
        }
    }
}

impl ExperimentOracle for SeededFaultOracle {
    fn run_experiment(&self, row: usize) -> ExperimentOutcome {
        let budget = self.max_attempts.max(1);
        if self.failure_rate <= 0.0 {
            return ExperimentOutcome::Measured { attempts: 1 };
        }
        let mut rng = StdRng::seed_from_u64(mix2(self.seed, row as u64));
        if rng.gen_range(0.0..1.0) >= self.failure_rate {
            return ExperimentOutcome::Measured { attempts: 1 };
        }
        if rng.gen_range(0.0..1.0) < self.permanent_fraction {
            return ExperimentOutcome::Lost { attempts: budget };
        }
        // Transient: clears on the 2nd or 3rd attempt.
        let needed = if rng.gen_range(0.0..1.0) < 0.5 { 2 } else { 3 };
        if needed <= budget {
            ExperimentOutcome::Measured { attempts: needed }
        } else {
            ExperimentOutcome::Lost { attempts: budget }
        }
    }

    fn name(&self) -> &'static str {
        "seeded_fault"
    }
}

/// Wraps any oracle with a fixed per-experiment measurement latency
/// (a real `thread::sleep`, not a simulated clock). This is what makes
/// speculative fit pipelining measurable: with a `DatasetOracle` the
/// "measurement" is free and there is nothing to overlap, whereas real
/// experiments take wall-clock time during which the pipelined runner
/// refits and selects. Sleeping does not burn CPU, so the overlap wins
/// even on a single-core machine. The verdict is delegated unchanged —
/// latency never affects numerics or determinism.
#[derive(Debug, Clone)]
pub struct LatencyOracle<O> {
    /// The oracle deciding each experiment's fate.
    pub inner: O,
    /// Wall-clock latency charged (slept) per `run_experiment` call.
    pub latency: std::time::Duration,
}

impl<O: ExperimentOracle> LatencyOracle<O> {
    /// Wrap `inner`, sleeping `latency` on every experiment.
    pub fn new(inner: O, latency: std::time::Duration) -> Self {
        LatencyOracle { inner, latency }
    }
}

impl<O: ExperimentOracle> ExperimentOracle for LatencyOracle<O> {
    fn run_experiment(&self, row: usize) -> ExperimentOutcome {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        self.inner.run_experiment(row)
    }

    fn name(&self) -> &'static str {
        "latency"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_oracle_never_fails() {
        let o = DatasetOracle;
        for row in 0..100 {
            assert_eq!(
                o.run_experiment(row),
                ExperimentOutcome::Measured { attempts: 1 }
            );
        }
    }

    #[test]
    fn fault_oracle_is_deterministic_and_rate_respecting() {
        let o = SeededFaultOracle::new(9, 0.3);
        let n = 5000;
        let verdicts: Vec<ExperimentOutcome> = (0..n).map(|r| o.run_experiment(r)).collect();
        // Row-local determinism: re-query in reverse order.
        for r in (0..n).rev() {
            assert_eq!(o.run_experiment(r), verdicts[r]);
        }
        let lost = verdicts
            .iter()
            .filter(|v| matches!(v, ExperimentOutcome::Lost { .. }))
            .count();
        let retried = verdicts
            .iter()
            .filter(|v| matches!(v, ExperimentOutcome::Measured { attempts } if *attempts > 1))
            .count();
        // Expected lost ≈ 0.3 * 0.3 = 9%; retried ≈ 0.3 * 0.7 = 21%.
        let lost_rate = lost as f64 / n as f64;
        let retried_rate = retried as f64 / n as f64;
        assert!((lost_rate - 0.09).abs() < 0.03, "lost {lost_rate}");
        assert!((retried_rate - 0.21).abs() < 0.04, "retried {retried_rate}");
        // Attempts never exceed the budget.
        assert!(verdicts
            .iter()
            .all(|v| v.attempts() <= 3 && v.attempts() >= 1));
    }

    #[test]
    fn zero_rate_oracle_equals_dataset_oracle() {
        let o = SeededFaultOracle::new(4, 0.0);
        for row in 0..50 {
            assert_eq!(
                o.run_experiment(row),
                ExperimentOutcome::Measured { attempts: 1 }
            );
        }
    }

    #[test]
    fn latency_oracle_delegates_verdicts_unchanged() {
        let inner = SeededFaultOracle::new(9, 0.3);
        let wrapped = LatencyOracle::new(inner.clone(), std::time::Duration::from_micros(50));
        for row in 0..200 {
            assert_eq!(wrapped.run_experiment(row), inner.run_experiment(row));
        }
        // Zero latency skips the sleep entirely.
        let instant = LatencyOracle::new(DatasetOracle, std::time::Duration::ZERO);
        assert_eq!(
            instant.run_experiment(0),
            ExperimentOutcome::Measured { attempts: 1 }
        );
    }

    #[test]
    fn tiny_budget_loses_transients_too() {
        let strict = SeededFaultOracle {
            max_attempts: 1,
            ..SeededFaultOracle::new(9, 1.0)
        };
        // Every row faulty, no retries: everything is lost.
        assert!((0..200).all(|r| matches!(
            strict.run_experiment(r),
            ExperimentOutcome::Lost { attempts: 1 }
        )));
    }
}
