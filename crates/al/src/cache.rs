//! Incremental cross-covariance cache for pool/test predictions.
//!
//! The AL loop predicts over the same candidate set every iteration while
//! the training set grows by exactly one row. Rebuilding `K(candidates,
//! basis)` from scratch each time costs `O(m n d)`; between hyperparameter
//! refits the kernel is frozen, so the matrix can instead be maintained
//! incrementally: for the exact tier the basis is the training set, so the
//! cache appends one column (`k(candidate_i, x_new)`) per promoted point;
//! for the sparse tier the basis is the *inducing set*, which does not move
//! between refits at all — the cached matrix stays warm with no work, the
//! sparse tier's structural advantage.
//!
//! Correctness rests on one invariant: the cached matrix depends only on
//! the kernel hyperparameters, the candidate rows, and the basis rows.
//! [`PoolPredictionCache::predictions`] therefore revalidates against the
//! model's current kernel parameters and basis size on every call and
//! silently rebuilds when anything moved — a stale cache is impossible, it
//! can only be slower than intended. Incrementally appended columns go
//! through the same [`Kernel::cross_matrix`] kernels as a full rebuild, so
//! cached and rebuilt matrices are bit-identical and a cache hit never
//! changes an AL trajectory.

use alperf_gp::kernel::Kernel;
use alperf_gp::model::{GpError, Prediction};
use alperf_gp::surrogate::Surrogate;
use alperf_linalg::matrix::Matrix;

/// Cached `K(candidates, basis)` cross-covariance with incremental updates.
#[derive(Debug, Clone)]
pub struct PoolPredictionCache {
    /// Candidate inputs, one row per candidate (pool or test set).
    x: Matrix,
    /// Cross-covariance `K(x, basis)` under `params`, when valid.
    kxb: Option<Matrix>,
    /// Kernel (log-)hyperparameters `kxb` was assembled under.
    params: Vec<f64>,
}

impl PoolPredictionCache {
    /// New cache over the given candidate rows; the cross-covariance is
    /// assembled lazily on the first [`PoolPredictionCache::predictions`].
    pub fn new(x: Matrix) -> Self {
        PoolPredictionCache {
            x,
            kxb: None,
            params: Vec::new(),
        }
    }

    /// The candidate rows, in cache order.
    pub fn candidates(&self) -> &Matrix {
        &self.x
    }

    /// Number of candidates currently tracked.
    pub fn len(&self) -> usize {
        self.x.nrows()
    }

    /// True when no candidates remain.
    pub fn is_empty(&self) -> bool {
        self.x.nrows() == 0
    }

    /// Whether the cached cross-covariance currently matches `model`.
    pub fn is_warm_for(&self, model: &Surrogate) -> bool {
        self.kxb.as_ref().is_some_and(|k| {
            k.nrows() == self.x.nrows()
                && k.ncols() == model.basis().nrows()
                && self.params == model.kernel().params()
        })
    }

    /// Drop the cached cross-covariance (call after a hyperparameter
    /// refit). The candidate rows are kept.
    pub fn invalidate(&mut self) {
        if self.kxb.is_some() {
            alperf_obs::inc("al.cache.invalidate");
        }
        self.kxb = None;
        self.params.clear();
    }

    /// Batched predictions at every candidate, reusing (or lazily
    /// rebuilding) the cached cross-covariance.
    ///
    /// # Errors
    /// Propagates [`Surrogate::predict_batch_with_cross`] failures.
    pub fn predictions(&mut self, model: &Surrogate) -> Result<Vec<Prediction>, GpError> {
        if !self.is_warm_for(model) {
            alperf_obs::inc("al.cache.rebuild");
            self.kxb = Some(model.kernel().cross_matrix(&self.x, model.basis()));
            self.params = model.kernel().params();
        } else {
            alperf_obs::inc("al.cache.hit");
        }
        model.predict_batch_with_cross(&self.x, self.kxb.as_ref().expect("assembled above"))
    }

    /// Remove candidate `pos` (the row just promoted into the training
    /// set), mirroring `Vec::swap_remove` on the caller's pool index list:
    /// the last candidate takes its place, order is not preserved.
    pub fn swap_remove(&mut self, pos: usize) {
        self.x.swap_remove_row(pos);
        if let Some(k) = &mut self.kxb {
            k.swap_remove_row(pos);
        }
    }

    /// Record that `x_new` was appended to the training set. For an exact
    /// model (basis = training set) this extends the cached
    /// cross-covariance by the column `k(candidate_i, x_new)`; for a sparse
    /// model the basis is the frozen inducing set, so the cache needs no
    /// update and stays warm. If the model's kernel hyperparameters differ
    /// from the cached ones the cache is invalidated instead (the next
    /// `predictions` call rebuilds).
    pub fn extend_train(&mut self, x_new: &[f64], model: &Surrogate) {
        if self.kxb.is_none() {
            return;
        }
        if !model.basis_tracks_train() {
            // Sparse tier: K(candidates, Z) is unaffected by training growth.
            return;
        }
        if x_new.len() != self.x.ncols() {
            // A malformed append (wrong input dimension) must not corrupt
            // the cached matrix: reject it and fall back to a rebuild on
            // the next `predictions` call.
            alperf_obs::inc("al.cache.append_reject");
            self.invalidate();
            return;
        }
        let kernel: &dyn Kernel = model.kernel();
        if kernel.params() != self.params {
            self.invalidate();
            return;
        }
        alperf_obs::inc("al.cache.append");
        let xm = Matrix::from_vec(1, x_new.len(), x_new.to_vec())
            .expect("one row of x_new.len() values");
        let col = kernel.cross_matrix(&self.x, &xm);
        self.kxb
            .as_mut()
            .expect("checked above")
            .push_col(col.as_slice())
            .expect("column length equals candidate count");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_gp::kernel::SquaredExponential;
    use alperf_gp::model::Gpr;
    use alperf_gp::sparse::{select_inducing_kcenter, SparseGpr, SparseMethod};

    fn fit(train_x: &Matrix, y: &[f64], scale: f64) -> Surrogate {
        Surrogate::Exact(
            Gpr::fit(
                train_x.clone(),
                y,
                Box::new(SquaredExponential::new(scale, 1.0)),
                0.05,
                true,
            )
            .unwrap(),
        )
    }

    fn fit_sparse(train_x: &Matrix, y: &[f64], scale: f64, m: usize) -> Surrogate {
        let z = train_x.select_rows(&select_inducing_kcenter(train_x, m));
        Surrogate::Sparse(
            SparseGpr::fit(
                train_x.clone(),
                y,
                Box::new(SquaredExponential::new(scale, 1.0)),
                0.05,
                true,
                SparseMethod::Fitc,
                z,
            )
            .unwrap(),
        )
    }

    /// Replay an AL-like sequence (predict, pick, swap-remove, extend) and
    /// check the incrementally maintained cache stays bit-identical to a
    /// cold cache rebuilt from scratch every iteration.
    #[test]
    fn incremental_updates_match_cold_rebuild() {
        let n_pool = 12;
        let pool_x = Matrix::from_fn(n_pool, 2, |i, j| ((i * 2 + j) as f64 * 0.9).sin() * 3.0);
        let mut train_x = Matrix::from_fn(4, 2, |i, j| (i + j) as f64 * 0.8);
        let mut y: Vec<f64> = (0..4).map(|i| (i as f64 * 0.7).cos()).collect();

        let mut warm = PoolPredictionCache::new(pool_x.clone());
        let mut pool = pool_x.clone();
        for step in 0..6 {
            let model = fit(&train_x, &y, 1.1);
            let cached = warm.predictions(&model).unwrap();
            // Cold reference: fresh cache, same candidates.
            let cold = PoolPredictionCache::new(pool.clone())
                .predictions(&model)
                .unwrap();
            assert_eq!(cached, cold, "step {step} diverged");
            assert!(warm.is_warm_for(&model) || step == 0);

            // Promote candidate `pos` into the training set.
            let pos = step % warm.len();
            let chosen = pool.row(pos).to_vec();
            pool.swap_remove_row(pos);
            warm.swap_remove(pos);
            train_x = train_x.with_row(&chosen).unwrap();
            y.push((step as f64 * 0.3).sin());
            warm.extend_train(&chosen, &model);
        }
    }

    #[test]
    fn sparse_cache_stays_warm_as_training_grows() {
        // The sparse tier's basis (inducing set) is frozen: promoting pool
        // rows requires *no* cache maintenance, and a with_observation
        // update keeps the cache warm across iterations.
        let pool_x = Matrix::from_fn(8, 1, |i, _| i as f64 * 0.9 + 0.2);
        let train_x = Matrix::from_fn(12, 1, |i, _| i as f64 * 0.6);
        let y: Vec<f64> = (0..12).map(|i| (i as f64 * 0.4).sin()).collect();
        let model = fit_sparse(&train_x, &y, 1.0, 5);
        let mut cache = PoolPredictionCache::new(pool_x.clone());
        let first = cache.predictions(&model).unwrap();
        assert!(cache.is_warm_for(&model));
        // Direct batch agrees bit-for-bit with the cached path.
        let direct = model.predict_batch(&pool_x).unwrap();
        assert_eq!(first, direct);
        // Grow the training set: cache must stay warm for the grown model.
        let grown = model.with_observation(&[3.33], 0.5).unwrap();
        cache.extend_train(&[3.33], &grown);
        assert!(cache.is_warm_for(&grown), "sparse cache went cold");
        let after = cache.predictions(&grown).unwrap();
        let direct_after = grown.predict_batch(&pool_x).unwrap();
        assert_eq!(after, direct_after);
    }

    #[test]
    fn hyperparameter_change_invalidates() {
        let pool_x = Matrix::from_fn(5, 1, |i, _| i as f64);
        let train_x = Matrix::from_fn(3, 1, |i, _| i as f64 * 1.7 + 0.3);
        let y = vec![0.1, 0.8, -0.4];
        let mut cache = PoolPredictionCache::new(pool_x);
        let m1 = fit(&train_x, &y, 1.0);
        cache.predictions(&m1).unwrap();
        assert!(cache.is_warm_for(&m1));
        // Different length scale: the cache must not be considered warm,
        // and predictions must match a direct batch under the new model.
        let m2 = fit(&train_x, &y, 0.4);
        assert!(!cache.is_warm_for(&m2));
        let via_cache = cache.predictions(&m2).unwrap();
        let direct = m2.predict_batch(cache.candidates()).unwrap();
        assert_eq!(via_cache, direct);
    }

    #[test]
    fn extend_with_changed_kernel_invalidates_instead_of_corrupting() {
        let pool_x = Matrix::from_fn(4, 1, |i, _| i as f64);
        let train_x = Matrix::from_fn(3, 1, |i, _| i as f64 + 0.5);
        let y = vec![0.0, 1.0, 0.5];
        let mut cache = PoolPredictionCache::new(pool_x);
        let m1 = fit(&train_x, &y, 1.0);
        cache.predictions(&m1).unwrap();
        let other = fit(&train_x, &y, 0.3);
        cache.extend_train(&[9.0], &other);
        assert!(!cache.is_warm_for(&m1));
        // And it recovers transparently.
        assert_eq!(cache.predictions(&m1).unwrap().len(), 4);
    }

    #[test]
    fn extend_with_wrong_dimension_invalidates_instead_of_corrupting() {
        let pool_x = Matrix::from_fn(4, 2, |i, j| (i + j) as f64);
        let train_x = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64 * 0.5);
        let y = vec![0.0, 1.0, 0.5];
        let mut cache = PoolPredictionCache::new(pool_x);
        let m = fit(&train_x, &y, 1.0);
        cache.predictions(&m).unwrap();
        assert!(cache.is_warm_for(&m));
        // 3 coordinates into a 2-D cache: rejected, cache cold but intact.
        cache.extend_train(&[1.0, 2.0, 3.0], &m);
        assert!(!cache.is_warm_for(&m));
        let via_cache = cache.predictions(&m).unwrap();
        let direct = m.predict_batch(cache.candidates()).unwrap();
        assert_eq!(via_cache, direct);
    }

    #[test]
    fn empty_pool_is_supported() {
        let train_x = Matrix::from_fn(3, 1, |i, _| i as f64);
        let y = vec![0.1, 0.2, 0.3];
        let model = fit(&train_x, &y, 1.0);
        let mut cache = PoolPredictionCache::new(Matrix::zeros(0, 1));
        assert!(cache.is_empty());
        assert!(cache.predictions(&model).unwrap().is_empty());
    }
}
