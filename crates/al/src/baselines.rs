//! Static experiment designs — the classical alternatives from Jain's
//! textbook (paper Section II-B) evaluated under the same metrics as AL.
//!
//! These designs pick their whole experiment set *up front*: they "do not
//! change as measurements become available". Evaluating a GPR trained on a
//! static design of size `m` against the same Test set lets the benches
//! quantify what adaptivity buys.

use crate::runner::test_rmse;
use alperf_gp::model::GpError;
use alperf_gp::optimize::{fit_surrogate, GprConfig};
use alperf_linalg::matrix::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How a static design chooses its `m` rows from the candidate pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticDesign {
    /// Uniformly random rows (simple random sampling).
    Random,
    /// Every `k`-th row of the pool ordered by the first input dimension —
    /// a stratified / fractional-factorial-flavored subset.
    Stratified,
    /// The `2^k`-style corners: rows closest to the extremes of each input
    /// dimension, then filled with stratified picks.
    Corners,
}

/// Result of evaluating one static design size.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticResult {
    /// Design used.
    pub design: StaticDesign,
    /// Number of experiments.
    pub m: usize,
    /// Rows selected.
    pub rows: Vec<usize>,
    /// Test RMSE of the GPR trained on those rows.
    pub rmse: f64,
    /// Total cost of the selected experiments.
    pub total_cost: f64,
}

/// Choose `m` rows from `pool` according to the design.
pub fn choose_rows(
    design: StaticDesign,
    x_all: &Matrix,
    pool: &[usize],
    m: usize,
    seed: u64,
) -> Vec<usize> {
    let m = m.min(pool.len());
    match design {
        StaticDesign::Random => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = pool.to_vec();
            p.shuffle(&mut rng);
            p.truncate(m);
            p
        }
        StaticDesign::Stratified => {
            let mut sorted = pool.to_vec();
            sorted.sort_by(|&a, &b| {
                x_all.row(a)[0]
                    .partial_cmp(&x_all.row(b)[0])
                    .expect("finite inputs")
            });
            if m == 0 {
                return vec![];
            }
            // Evenly spaced positions: floor((i + 0.5) * len / m) is
            // strictly increasing for m <= len, so rows are distinct.
            (0..m)
                .map(|i| sorted[((i as f64 + 0.5) * sorted.len() as f64 / m as f64) as usize])
                .collect()
        }
        StaticDesign::Corners => {
            let d = x_all.ncols();
            let mut rows: Vec<usize> = Vec::new();
            for dim in 0..d {
                let lo = pool
                    .iter()
                    .copied()
                    .min_by(|&a, &b| x_all.row(a)[dim].partial_cmp(&x_all.row(b)[dim]).unwrap());
                let hi = pool
                    .iter()
                    .copied()
                    .max_by(|&a, &b| x_all.row(a)[dim].partial_cmp(&x_all.row(b)[dim]).unwrap());
                for r in [lo, hi].into_iter().flatten() {
                    if !rows.contains(&r) && rows.len() < m {
                        rows.push(r);
                    }
                }
            }
            // Fill with stratified picks.
            for r in choose_rows(StaticDesign::Stratified, x_all, pool, m, seed) {
                if rows.len() >= m {
                    break;
                }
                if !rows.contains(&r) {
                    rows.push(r);
                }
            }
            rows
        }
    }
}

/// Train on a static design and evaluate Test RMSE.
///
/// # Errors
/// Propagates GPR fitting failures.
#[allow(clippy::too_many_arguments)] // an experiment spec, not an API to compose
pub fn evaluate_static(
    design: StaticDesign,
    x_all: &Matrix,
    y_all: &[f64],
    cost: &[f64],
    pool: &[usize],
    test: &[usize],
    m: usize,
    gpr: &GprConfig,
    seed: u64,
) -> Result<StaticResult, GpError> {
    let rows = choose_rows(design, x_all, pool, m, seed);
    let xs = x_all.select_rows(&rows);
    let ys: Vec<f64> = rows.iter().map(|&i| y_all[i]).collect();
    let (model, _) = fit_surrogate(&xs, &ys, gpr)?;
    let rmse = test_rmse(&model, x_all, y_all, test);
    let total_cost = rows.iter().map(|&i| cost[i]).sum();
    Ok(StaticResult {
        design,
        m: rows.len(),
        rows,
        rmse,
        total_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_gp::kernel::SquaredExponential;
    use alperf_gp::noise::NoiseFloor;

    fn data() -> (Matrix, Vec<f64>, Vec<f64>, Vec<usize>, Vec<usize>) {
        let n = 40;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
        let y: Vec<f64> = xs.iter().map(|v| (0.7 * v).sin()).collect();
        let cost = vec![1.0; n];
        let pool: Vec<usize> = (0..30).collect();
        let test: Vec<usize> = (30..n).collect();
        (Matrix::from_vec(n, 1, xs).unwrap(), y, cost, pool, test)
    }

    fn gpr() -> GprConfig {
        GprConfig::new(Box::new(SquaredExponential::unit()))
            .with_noise_floor(NoiseFloor::Fixed(0.05))
            .with_restarts(2)
    }

    #[test]
    fn all_designs_produce_m_distinct_rows() {
        let (x, _, _, pool, _) = data();
        for d in [
            StaticDesign::Random,
            StaticDesign::Stratified,
            StaticDesign::Corners,
        ] {
            let rows = choose_rows(d, &x, &pool, 8, 0);
            assert_eq!(rows.len(), 8, "{d:?}");
            let set: std::collections::BTreeSet<_> = rows.iter().collect();
            assert_eq!(set.len(), 8, "{d:?} produced duplicates: {rows:?}");
            assert!(rows.iter().all(|r| pool.contains(r)));
        }
    }

    #[test]
    fn corners_include_extremes() {
        let (x, _, _, pool, _) = data();
        let rows = choose_rows(StaticDesign::Corners, &x, &pool, 6, 0);
        let vals: Vec<f64> = rows.iter().map(|&r| x.row(r)[0]).collect();
        let min_pool = 0.0;
        let max_pool = 29.0 * 0.25;
        assert!(vals.contains(&min_pool), "{vals:?}");
        assert!(vals.contains(&max_pool), "{vals:?}");
    }

    #[test]
    fn more_experiments_reduce_error() {
        let (x, y, cost, pool, test) = data();
        let small = evaluate_static(
            StaticDesign::Stratified,
            &x,
            &y,
            &cost,
            &pool,
            &test,
            4,
            &gpr(),
            0,
        )
        .unwrap();
        let large = evaluate_static(
            StaticDesign::Stratified,
            &x,
            &y,
            &cost,
            &pool,
            &test,
            20,
            &gpr(),
            0,
        )
        .unwrap();
        assert!(
            large.rmse < small.rmse,
            "20 pts {} !< 4 pts {}",
            large.rmse,
            small.rmse
        );
    }

    #[test]
    fn m_clamped_to_pool() {
        let (x, _, _, pool, _) = data();
        let rows = choose_rows(StaticDesign::Random, &x, &pool, 100, 0);
        assert_eq!(rows.len(), pool.len());
    }

    #[test]
    fn random_design_deterministic_in_seed() {
        let (x, _, _, pool, _) = data();
        let a = choose_rows(StaticDesign::Random, &x, &pool, 5, 42);
        let b = choose_rows(StaticDesign::Random, &x, &pool, 5, 42);
        assert_eq!(a, b);
        let c = choose_rows(StaticDesign::Random, &x, &pool, 5, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn cost_accumulates() {
        let (x, y, _, pool, test) = data();
        let cost: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let res = evaluate_static(
            StaticDesign::Random,
            &x,
            &y,
            &cost,
            &pool,
            &test,
            5,
            &gpr(),
            1,
        )
        .unwrap();
        let expect: f64 = res.rows.iter().map(|&i| cost[i]).sum();
        assert_eq!(res.total_cost, expect);
    }
}
