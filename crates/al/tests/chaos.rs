//! Chaos e2e: the AL loop degrades gracefully under experiment faults.
//!
//! Runs the same small AL experiment against a [`SeededFaultOracle`] at
//! failure rates {0.0, 0.1, 0.3} and requires: no panics, finite RMSE/AMSD
//! throughout, a zero-rate run identical to the fault-free `DatasetOracle`
//! run, and — with telemetry on — every lost experiment flagged as an
//! `al.degraded_iteration` record in the captured trace. Also re-checks the
//! obs determinism contract under faults: a telemetry-on chaos run is
//! bit-identical (history AND lost list) to a telemetry-off one.
//!
//! Lives in its own integration-test binary because it flips the global
//! telemetry switch; unit tests in the same process would race it.

use alperf_al::oracle::SeededFaultOracle;
use alperf_al::runner::{run_al, run_al_with_oracle, AlConfig, AlRun, PipelineConfig};
use alperf_al::strategy::VarianceReduction;
use alperf_data::partition::Partition;
use alperf_gp::kernel::SquaredExponential;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::{ApproxConfig, FitTier, GprConfig};
use alperf_linalg::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 48;
const ORACLE_SEED: u64 = 17;

fn dataset(n: usize, seed: u64) -> (Matrix, Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<f64> = (0..n).map(|i| i as f64 * 8.0 / n as f64).collect();
    let y: Vec<f64> = xs
        .iter()
        .map(|v| v.sin() * 2.0 + rng.gen_range(-0.15..0.15))
        .collect();
    let cost: Vec<f64> = xs.iter().map(|v| 1.0 + v * v).collect();
    (Matrix::from_vec(n, 1, xs).unwrap(), y, cost)
}

fn config() -> AlConfig {
    let gpr = GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::Fixed(0.05))
        .with_restarts(2)
        .with_seed(7);
    AlConfig {
        max_iters: 18,
        seed: 3,
        ..AlConfig::new(gpr)
    }
}

fn run_chaos(failure_rate: f64) -> AlRun {
    let (x, y, cost) = dataset(N, 11);
    let part = Partition::random(N, 2, 0.8, 5);
    let oracle = SeededFaultOracle::new(ORACLE_SEED, failure_rate);
    run_al_with_oracle(
        &x,
        &y,
        &cost,
        &part,
        &mut VarianceReduction,
        &oracle,
        &config(),
    )
    .unwrap()
}

/// Chaos run on the approximate (sparse) tier.
fn run_chaos_sparse(failure_rate: f64) -> AlRun {
    let (x, y, cost) = dataset(N, 11);
    let part = Partition::random(N, 2, 0.8, 5);
    let oracle = SeededFaultOracle::new(ORACLE_SEED, failure_rate);
    let approx = ApproxConfig {
        max_rank: 10,
        hyper_subsample: 16,
        gate_max_n: 0, // no exact-refit gate: keep every iteration sparse
        ..ApproxConfig::default()
    };
    let gpr = GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::Fixed(0.05))
        .with_restarts(2)
        .with_seed(7)
        .with_tier(FitTier::Approximate)
        .with_approx(approx);
    let cfg = AlConfig {
        max_iters: 18,
        seed: 3,
        ..AlConfig::new(gpr)
    };
    run_al_with_oracle(&x, &y, &cost, &part, &mut VarianceReduction, &oracle, &cfg).unwrap()
}

/// Chaos run through the speculative pipelined runner: the in-flight
/// measurement a fault kills was selected from a stale model, so this
/// exercises the lost-speculation reconcile path.
fn run_chaos_pipelined(failure_rate: f64) -> AlRun {
    let (x, y, cost) = dataset(N, 11);
    let part = Partition::random(N, 2, 0.8, 5);
    let oracle = SeededFaultOracle::new(ORACLE_SEED, failure_rate);
    let cfg = AlConfig {
        pipeline: PipelineConfig::Speculative,
        ..config()
    };
    run_al_with_oracle(&x, &y, &cost, &part, &mut VarianceReduction, &oracle, &cfg).unwrap()
}

fn assert_sane(run: &AlRun, rate: f64) {
    assert!(!run.history.is_empty(), "rate {rate}: no iterations at all");
    for r in &run.history {
        assert!(r.rmse.is_finite(), "rate {rate}: non-finite RMSE");
        assert!(r.amsd.is_finite(), "rate {rate}: non-finite AMSD");
        assert!(
            r.sigma_at_chosen.is_finite(),
            "rate {rate}: non-finite sigma"
        );
        assert!(
            r.cumulative_cost.is_finite() && r.cumulative_cost > 0.0,
            "rate {rate}: bad cumulative cost"
        );
    }
    for l in &run.lost {
        assert!(l.attempts >= 1 && l.attempts <= 3, "rate {rate}: attempts");
        assert!(l.cost > 0.0, "rate {rate}: lost cost not charged");
    }
    // History + lost together never exceed the iteration budget, and no
    // row appears both measured and lost.
    assert!(run.history.len() + run.lost.len() <= 18);
    for l in &run.lost {
        assert!(
            !run.history.iter().any(|r| r.chosen_row == l.row),
            "rate {rate}: row {} both measured and lost",
            l.row
        );
    }
}

// One #[test] only: the global telemetry switch is process-wide, and the
// default multi-threaded test runner would race two tests flipping it.
#[test]
fn al_degrades_gracefully_under_faults() {
    alperf_obs::set_enabled(false);

    // Sweep the failure rates with telemetry off.
    let runs: Vec<(f64, AlRun)> = [0.0, 0.1, 0.3]
        .into_iter()
        .map(|rate| (rate, run_chaos(rate)))
        .collect();
    for (rate, run) in &runs {
        assert_sane(run, *rate);
    }
    let zero = &runs[0].1;
    let heavy = &runs[2].1;

    // A zero-rate fault oracle is indistinguishable from the fault-free
    // dataset oracle.
    assert!(zero.lost.is_empty(), "rate 0.0 lost experiments");
    let (x, y, cost) = dataset(N, 11);
    let part = Partition::random(N, 2, 0.8, 5);
    let clean = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &config()).unwrap();
    assert_eq!(zero.history, clean.history);
    assert_eq!(zero.final_train, clean.final_train);

    // At 30% the chosen oracle seed actually loses experiments, the loop
    // keeps going past each loss, and costs for lost rows are charged.
    assert!(
        !heavy.lost.is_empty(),
        "rate 0.3 lost nothing — seed drift?"
    );
    assert!(
        heavy.history.len() + heavy.lost.len() > heavy.history.len(),
        "degraded iterations missing"
    );
    let lost_cost: f64 = heavy.lost.iter().map(|l| l.cost).sum();
    assert!(lost_cost > 0.0);

    // The approximate tier under the same faults (rate 0.1): sane, and the
    // loop survives losses without leaving the sparse path.
    let sparse_off = run_chaos_sparse(0.1);
    assert_sane(&sparse_off, 0.1);

    // The pipelined runner under the same fault sweep: a speculated batch
    // that dies mid-flight must be charged, flagged, and survived.
    let pruns: Vec<(f64, AlRun)> = [0.0, 0.1, 0.3]
        .into_iter()
        .map(|rate| (rate, run_chaos_pipelined(rate)))
        .collect();
    for (rate, run) in &pruns {
        assert_sane(run, *rate);
    }
    let pzero = &pruns[0].1;
    let pheavy = &pruns[2].1;
    assert!(pzero.lost.is_empty(), "pipelined rate 0.0 lost experiments");
    // Zero-rate pipelined chaos == fault-free pipelined run.
    let pclean = {
        let cfg = AlConfig {
            pipeline: PipelineConfig::Speculative,
            ..config()
        };
        run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).unwrap()
    };
    assert_eq!(pzero.history, pclean.history);
    assert_eq!(pzero.final_train, pclean.final_train);
    assert!(
        !pheavy.lost.is_empty(),
        "pipelined rate 0.3 lost nothing — seed drift?"
    );
    let plost_cost: f64 = pheavy.lost.iter().map(|l| l.cost).sum();
    assert!(plost_cost > 0.0, "lost speculated batches not charged");

    // Telemetry on: same numerics, and every loss visible in the trace.
    let trace = std::env::temp_dir().join(format!("alperf_chaos_{}.jsonl", std::process::id()));
    alperf_obs::sink::install_jsonl(&trace).unwrap();
    alperf_obs::set_enabled(true);
    let degraded_before = alperf_obs::counter(alperf_obs::names::AL_DEGRADED_ITERATION).get();
    let lost_spec_before =
        alperf_obs::counter(alperf_obs::names::AL_PIPELINE_LOST_SPECULATION).get();
    let reconciles_before = alperf_obs::counter(alperf_obs::names::AL_PIPELINE_RECONCILES).get();
    let on = run_chaos(0.3);
    let sparse_on = run_chaos_sparse(0.1);
    let pipe_on = run_chaos_pipelined(0.3);
    alperf_obs::set_enabled(false);
    alperf_obs::sink::uninstall();

    // Pipelined runner obeys the obs-determinism contract under faults...
    assert_eq!(
        pipe_on.history, pheavy.history,
        "telemetry changed pipelined numerics under faults"
    );
    assert_eq!(
        pipe_on.lost, pheavy.lost,
        "telemetry changed the pipelined lost list"
    );
    // ...every lost speculation is counted, and every round reconciled.
    assert_eq!(
        alperf_obs::counter(alperf_obs::names::AL_PIPELINE_LOST_SPECULATION).get()
            - lost_spec_before,
        pheavy.lost.len() as u64,
        "lost-speculation counter did not advance"
    );
    assert_eq!(
        alperf_obs::counter(alperf_obs::names::AL_PIPELINE_RECONCILES).get() - reconciles_before,
        (pheavy.history.len() + pheavy.lost.len()) as u64,
        "every pipelined round must reconcile exactly once"
    );

    // Approximate tier obeys the same obs-determinism contract under faults.
    assert_eq!(
        sparse_on.history, sparse_off.history,
        "telemetry changed sparse-tier numerics under faults"
    );
    assert_eq!(
        sparse_on.lost, sparse_off.lost,
        "telemetry changed the sparse-tier lost list"
    );

    assert_eq!(on.history, heavy.history, "telemetry changed the numerics");
    assert_eq!(on.lost, heavy.lost, "telemetry changed the lost list");
    let text = std::fs::read_to_string(&trace).unwrap();
    std::fs::remove_file(&trace).ok();
    let degraded_records = text
        .lines()
        .filter(|l| l.contains("\"al.degraded_iteration\"") && l.contains("\"record\""))
        .count();
    assert_eq!(
        degraded_records,
        heavy.lost.len() + pheavy.lost.len(),
        "each lost experiment (serial and pipelined) must appear as an \
         al.degraded_iteration record"
    );
    let lost_spec_records = text
        .lines()
        .filter(|l| l.contains("\"al.pipeline.lost_speculation\"") && l.contains("\"record\""))
        .count();
    assert_eq!(
        lost_spec_records,
        pheavy.lost.len(),
        "each lost speculated batch must appear as an al.pipeline.lost_speculation record"
    );
    assert!(
        text.lines().any(|l| l.contains("\"al.iteration\"")),
        "trace has no al.iteration records"
    );
    assert_eq!(
        alperf_obs::counter(alperf_obs::names::AL_DEGRADED_ITERATION).get() - degraded_before,
        (heavy.lost.len() + pheavy.lost.len()) as u64,
        "degraded-iteration counter did not advance"
    );
}
