//! Property-based tests for the Active-Learning layer: loop invariants
//! under random datasets and partitions, tradeoff-curve consistency, and
//! acquisition determinism.

use alperf_al::runner::{run_al, AlConfig};
use alperf_al::strategy::{CostEfficiency, RandomSampling, VarianceReduction};
use alperf_al::tradeoff;
use alperf_data::partition::Partition;
use alperf_gp::kernel::SquaredExponential;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::GprConfig;
use alperf_linalg::matrix::Matrix;
use proptest::prelude::*;

fn problem(ys: &[f64]) -> (Matrix, Vec<f64>, Vec<f64>) {
    let n = ys.len();
    let x = Matrix::from_fn(n, 1, |i, _| i as f64 * 6.0 / n as f64);
    let cost: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64).collect();
    (x, ys.to_vec(), cost)
}

fn config(seed: u64, iters: usize) -> AlConfig {
    let gpr = GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::recommended())
        .with_restarts(1)
        .with_seed(seed);
    AlConfig {
        max_iters: iters,
        seed,
        ..AlConfig::new(gpr)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The AL loop maintains its structural invariants on arbitrary data:
    /// iteration count bounded by pool, rows never selected twice, cost
    /// strictly increasing, metrics finite, training set = initial + picks.
    #[test]
    fn al_loop_invariants(
        ys in prop::collection::vec(-3.0..3.0f64, 20..50),
        seed in 0u64..200,
    ) {
        let (x, y, cost) = problem(&ys);
        let n = y.len();
        let part = Partition::paper_default(n, seed);
        let run = run_al(&x, &y, &cost, &part, &mut RandomSampling, &config(seed, 12))
            .expect("AL run");
        prop_assert!(run.history.len() <= part.active.len().min(12));
        let rows: Vec<usize> = run.history.iter().map(|r| r.chosen_row).collect();
        let set: std::collections::BTreeSet<_> = rows.iter().collect();
        prop_assert_eq!(set.len(), rows.len(), "row selected twice");
        for r in &rows {
            prop_assert!(part.active.contains(r), "selected row not from the pool");
        }
        let mut prev = 0.0;
        for rec in &run.history {
            prop_assert!(rec.cumulative_cost > prev);
            prev = rec.cumulative_cost;
            prop_assert!(rec.rmse.is_finite() && rec.rmse >= 0.0);
            prop_assert!(rec.amsd.is_finite() && rec.amsd >= 0.0);
            prop_assert!(rec.sigma_at_chosen.is_finite() && rec.sigma_at_chosen >= 0.0);
        }
        prop_assert_eq!(run.final_train.len(), part.initial.len() + run.history.len());
    }

    /// Variance Reduction always selects the pool max of the predictive SD:
    /// sigma_at_chosen >= AMSD at every iteration.
    #[test]
    fn vr_selects_at_least_average_uncertainty(
        ys in prop::collection::vec(-2.0..2.0f64, 25..40),
        seed in 0u64..100,
    ) {
        let (x, y, cost) = problem(&ys);
        let part = Partition::paper_default(y.len(), seed);
        let run = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &config(seed, 10))
            .expect("AL run");
        for rec in &run.history {
            prop_assert!(
                rec.sigma_at_chosen >= rec.amsd - 1e-12,
                "max {} below mean {}",
                rec.sigma_at_chosen,
                rec.amsd
            );
        }
    }

    /// Cost Efficiency's cumulative cost never exceeds Variance Reduction's
    /// worst case: it is bounded by (number of iterations) x (max row cost),
    /// and per-run it is reproducible.
    #[test]
    fn ce_reproducible_and_bounded(
        ys in prop::collection::vec(-2.0..2.0f64, 25..40),
        seed in 0u64..100,
    ) {
        let (x, y, cost) = problem(&ys);
        let part = Partition::paper_default(y.len(), seed);
        let a = run_al(&x, &y, &cost, &part, &mut CostEfficiency, &config(seed, 10)).expect("AL");
        let b = run_al(&x, &y, &cost, &part, &mut CostEfficiency, &config(seed, 10)).expect("AL");
        prop_assert_eq!(&a.history, &b.history);
        let max_cost = cost.iter().cloned().fold(0.0f64, f64::max);
        let init_cost: f64 = part.initial.iter().map(|&i| cost[i]).sum();
        let bound = init_cost + a.history.len() as f64 * max_cost;
        prop_assert!(a.history.last().map(|r| r.cumulative_cost <= bound + 1e-9).unwrap_or(true));
    }

    /// Tradeoff averaging: the averaged curve at the final grid point equals
    /// the mean of the runs' final RMSEs (every run has spent everything).
    #[test]
    fn tradeoff_curve_endpoint_is_mean_final_rmse(
        ys in prop::collection::vec(-2.0..2.0f64, 25..35),
        seeds in prop::collection::vec(0u64..50, 2..4),
    ) {
        let (x, y, cost) = problem(&ys);
        let runs: Vec<_> = seeds
            .iter()
            .map(|&s| {
                let part = Partition::paper_default(y.len(), s);
                run_al(&x, &y, &cost, &part, &mut RandomSampling, &config(s, 8)).expect("AL")
            })
            .collect();
        prop_assume!(runs.iter().all(|r| !r.history.is_empty()));
        let curve = tradeoff::average_curve(&runs, 30);
        let last = *curve.rmse.last().expect("non-empty grid");
        let mean_final: f64 = runs
            .iter()
            .map(|r| r.history.last().expect("non-empty").rmse)
            .sum::<f64>() / runs.len() as f64;
        prop_assert!((last - mean_final).abs() <= 1e-9 * (1.0 + mean_final));
    }
}
