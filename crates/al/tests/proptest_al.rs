//! Property-based tests for the Active-Learning layer: loop invariants
//! under random datasets and partitions, tradeoff-curve consistency, and
//! acquisition determinism.

use alperf_al::runner::{run_al, AlConfig, PipelineConfig};
use alperf_al::strategy::{CostEfficiency, RandomSampling, Strategy, VarianceReduction};
use alperf_al::tradeoff;
use alperf_data::partition::Partition;
use alperf_gp::kernel::SquaredExponential;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::{FitTier, GprConfig};
use alperf_linalg::matrix::Matrix;
use alperf_linalg::threads::with_threads;
use proptest::prelude::*;

fn problem(ys: &[f64]) -> (Matrix, Vec<f64>, Vec<f64>) {
    let n = ys.len();
    let x = Matrix::from_fn(n, 1, |i, _| i as f64 * 6.0 / n as f64);
    let cost: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64).collect();
    (x, ys.to_vec(), cost)
}

fn config(seed: u64, iters: usize) -> AlConfig {
    let gpr = GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::recommended())
        .with_restarts(1)
        .with_seed(seed);
    AlConfig {
        max_iters: iters,
        seed,
        ..AlConfig::new(gpr)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The AL loop maintains its structural invariants on arbitrary data:
    /// iteration count bounded by pool, rows never selected twice, cost
    /// strictly increasing, metrics finite, training set = initial + picks.
    #[test]
    fn al_loop_invariants(
        ys in prop::collection::vec(-3.0..3.0f64, 20..50),
        seed in 0u64..200,
    ) {
        let (x, y, cost) = problem(&ys);
        let n = y.len();
        let part = Partition::paper_default(n, seed);
        let run = run_al(&x, &y, &cost, &part, &mut RandomSampling, &config(seed, 12))
            .expect("AL run");
        prop_assert!(run.history.len() <= part.active.len().min(12));
        let rows: Vec<usize> = run.history.iter().map(|r| r.chosen_row).collect();
        let set: std::collections::BTreeSet<_> = rows.iter().collect();
        prop_assert_eq!(set.len(), rows.len(), "row selected twice");
        for r in &rows {
            prop_assert!(part.active.contains(r), "selected row not from the pool");
        }
        let mut prev = 0.0;
        for rec in &run.history {
            prop_assert!(rec.cumulative_cost > prev);
            prev = rec.cumulative_cost;
            prop_assert!(rec.rmse.is_finite() && rec.rmse >= 0.0);
            prop_assert!(rec.amsd.is_finite() && rec.amsd >= 0.0);
            prop_assert!(rec.sigma_at_chosen.is_finite() && rec.sigma_at_chosen >= 0.0);
        }
        prop_assert_eq!(run.final_train.len(), part.initial.len() + run.history.len());
    }

    /// Variance Reduction always selects the pool max of the predictive SD:
    /// sigma_at_chosen >= AMSD at every iteration.
    #[test]
    fn vr_selects_at_least_average_uncertainty(
        ys in prop::collection::vec(-2.0..2.0f64, 25..40),
        seed in 0u64..100,
    ) {
        let (x, y, cost) = problem(&ys);
        let part = Partition::paper_default(y.len(), seed);
        let run = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &config(seed, 10))
            .expect("AL run");
        for rec in &run.history {
            prop_assert!(
                rec.sigma_at_chosen >= rec.amsd - 1e-12,
                "max {} below mean {}",
                rec.sigma_at_chosen,
                rec.amsd
            );
        }
    }

    /// Cost Efficiency's cumulative cost never exceeds Variance Reduction's
    /// worst case: it is bounded by (number of iterations) x (max row cost),
    /// and per-run it is reproducible.
    #[test]
    fn ce_reproducible_and_bounded(
        ys in prop::collection::vec(-2.0..2.0f64, 25..40),
        seed in 0u64..100,
    ) {
        let (x, y, cost) = problem(&ys);
        let part = Partition::paper_default(y.len(), seed);
        let a = run_al(&x, &y, &cost, &part, &mut CostEfficiency, &config(seed, 10)).expect("AL");
        let b = run_al(&x, &y, &cost, &part, &mut CostEfficiency, &config(seed, 10)).expect("AL");
        prop_assert_eq!(&a.history, &b.history);
        let max_cost = cost.iter().cloned().fold(0.0f64, f64::max);
        let init_cost: f64 = part.initial.iter().map(|&i| cost[i]).sum();
        let bound = init_cost + a.history.len() as f64 * max_cost;
        prop_assert!(a.history.last().map(|r| r.cumulative_cost <= bound + 1e-9).unwrap_or(true));
    }

    /// Tradeoff averaging: the averaged curve at the final grid point equals
    /// the mean of the runs' final RMSEs (every run has spent everything).
    #[test]
    fn tradeoff_curve_endpoint_is_mean_final_rmse(
        ys in prop::collection::vec(-2.0..2.0f64, 25..35),
        seeds in prop::collection::vec(0u64..50, 2..4),
    ) {
        let (x, y, cost) = problem(&ys);
        let runs: Vec<_> = seeds
            .iter()
            .map(|&s| {
                let part = Partition::paper_default(y.len(), s);
                run_al(&x, &y, &cost, &part, &mut RandomSampling, &config(s, 8)).expect("AL")
            })
            .collect();
        prop_assume!(runs.iter().all(|r| !r.history.is_empty()));
        let curve = tradeoff::average_curve(&runs, 30);
        let last = *curve.rmse.last().expect("non-empty grid");
        let mean_final: f64 = runs
            .iter()
            .map(|r| r.history.last().expect("non-empty").rmse)
            .sum::<f64>() / runs.len() as f64;
        prop_assert!((last - mean_final).abs() <= 1e-9 * (1.0 + mean_final));
    }

    /// Pipelining contract, pt. 1: `PipelineConfig::Off` (the default) is
    /// bit-identical to a config that never mentions the field, and the
    /// speculative runner is itself deterministic run to run.
    /// Pt. 2: depth-1 staleness degrades accuracy *boundedly* — the
    /// speculative run measures the same number of experiments and its
    /// final RMSE stays within a loose band of the serial loop's.
    #[test]
    fn pipelined_campaign_deterministic_and_near_serial(
        ys in prop::collection::vec(-2.0..2.0f64, 25..40),
        seed in 0u64..100,
    ) {
        let (x, y, cost) = problem(&ys);
        let part = Partition::paper_default(y.len(), seed);
        let serial = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &config(seed, 10))
            .expect("serial AL");
        let mut cfg_off = config(seed, 10);
        cfg_off.pipeline = PipelineConfig::Off;
        let off = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg_off).expect("AL");
        prop_assert_eq!(&off.history, &serial.history, "explicit Off diverged from default");
        let mut cfg_spec = config(seed, 10);
        cfg_spec.pipeline = PipelineConfig::Speculative;
        let spec_a = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg_spec).expect("AL");
        let spec_b = run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg_spec).expect("AL");
        prop_assert_eq!(&spec_a.history, &spec_b.history, "speculative run not reproducible");
        prop_assert_eq!(spec_a.history.len(), serial.history.len());
        let rows: Vec<usize> = spec_a.history.iter().map(|r| r.chosen_row).collect();
        let set: std::collections::BTreeSet<_> = rows.iter().collect();
        prop_assert_eq!(set.len(), rows.len(), "speculative runner selected a row twice");
        if let (Some(s), Some(p)) = (serial.history.last(), spec_a.history.last()) {
            prop_assert!(p.rmse.is_finite() && p.rmse >= 0.0);
            prop_assert!(
                (p.rmse - s.rmse).abs() <= 0.5 + 0.5 * s.rmse,
                "speculative final RMSE {} too far from serial {}",
                p.rmse,
                s.rmse
            );
        }
    }
}

proptest! {
    // Campaigns below run a 340-row pool (past the 256-candidate parallel
    // scoring threshold) once per width and tier — fewer cases keep the
    // suite fast.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Parallel pool scoring is an *oracle-checked* optimization: a whole
    /// campaign — fit, pool prediction, acquisition scoring, selection —
    /// replayed at 2/4/8 rayon workers is bit-identical to the 1-worker
    /// run, for both acquisition strategies and both surrogate tiers.
    #[test]
    fn campaign_bit_identical_across_thread_widths_and_tiers(
        seed in 0u64..50,
        phase in 0.0..3.0f64,
    ) {
        let n = 340;
        let x = Matrix::from_fn(n, 1, |i, _| i as f64 * 8.0 / n as f64);
        let y: Vec<f64> = (0..n)
            .map(|i| ((i as f64 * 8.0 / n as f64) + phase).sin() * 2.0)
            .collect();
        let cost: Vec<f64> = (0..n).map(|i| 0.5 + (i % 5) as f64).collect();
        let part = Partition::random(n, 4, 0.9, seed);
        for tier in [FitTier::Exact, FitTier::Approximate] {
            let mut vr = VarianceReduction;
            let mut ce = CostEfficiency;
            let strategies: [&mut dyn Strategy; 2] = [&mut vr, &mut ce];
            for strategy in strategies {
                let mk = || {
                    let gpr = GprConfig::new(Box::new(SquaredExponential::unit()))
                        .with_noise_floor(NoiseFloor::Fixed(0.05))
                        .with_restarts(1)
                        .with_seed(seed)
                        .with_tier(tier);
                    AlConfig { max_iters: 6, seed, ..AlConfig::new(gpr) }
                };
                let base = with_threads(1, || {
                    run_al(&x, &y, &cost, &part, &mut *strategy, &mk()).expect("AL")
                });
                prop_assert!(!base.history.is_empty());
                for t in [2usize, 4, 8] {
                    let run = with_threads(t, || {
                        run_al(&x, &y, &cost, &part, &mut *strategy, &mk()).expect("AL")
                    });
                    prop_assert_eq!(
                        &run.history,
                        &base.history,
                        "{} tier {:?} diverged at {} workers",
                        strategy.name(),
                        tier,
                        t
                    );
                }
            }
        }
    }
}
