//! Determinism guard: telemetry must be strictly observational.
//!
//! Runs the same small AL experiment with telemetry off and then fully on
//! (global switch + JSONL trace sink + labeled metric families + the
//! stack-sampling profiler + the streaming aggregator + the tsdb
//! scraper + the alerting rules engine + the black-box flight
//! recorder), same seed, and requires the *bit-identical* histories —
//! RMSE/AMSD/sigma_f traces, selected-candidate sequence, costs, LML,
//! noise — via `IterationRecord`'s `PartialEq`.
//! This is the contract that lets instrumentation live inside the hot
//! numeric paths: a telemetry-on run may only be slower, never different.
//!
//! Lives in its own integration-test binary because it flips the global
//! telemetry switch; unit tests in the same process would race it.

use alperf_al::runner::{run_al, AlConfig, AlRun, PipelineConfig};
use alperf_al::strategy::VarianceReduction;
use alperf_data::partition::Partition;
use alperf_gp::kernel::SquaredExponential;
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::{ApproxConfig, FitTier, GprConfig};
use alperf_linalg::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(n: usize, seed: u64) -> (Matrix, Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<f64> = (0..n).map(|i| i as f64 * 8.0 / n as f64).collect();
    let y: Vec<f64> = xs
        .iter()
        .map(|v| v.sin() * 2.0 + rng.gen_range(-0.15..0.15))
        .collect();
    let cost: Vec<f64> = xs.iter().map(|v| 1.0 + v * v).collect();
    (Matrix::from_vec(n, 1, xs).unwrap(), y, cost)
}

fn run_once() -> AlRun {
    let (x, y, cost) = dataset(40, 11);
    let part = Partition::random(40, 2, 0.8, 5);
    let gpr = GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::Fixed(0.05))
        .with_restarts(2)
        .with_seed(7);
    let cfg = AlConfig {
        max_iters: 12,
        seed: 3,
        ..AlConfig::new(gpr)
    };
    run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).unwrap()
}

/// Same campaign on the approximate (sparse) tier: low-rank fits must be
/// just as indifferent to telemetry as the exact path.
fn run_once_sparse() -> AlRun {
    let (x, y, cost) = dataset(40, 11);
    let part = Partition::random(40, 2, 0.8, 5);
    let approx = ApproxConfig {
        max_rank: 10,
        hyper_subsample: 16,
        gate_max_n: 0, // no exact-refit gate: keep every iteration sparse
        ..ApproxConfig::default()
    };
    let gpr = GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::Fixed(0.05))
        .with_restarts(2)
        .with_seed(7)
        .with_tier(FitTier::Approximate)
        .with_approx(approx);
    let cfg = AlConfig {
        max_iters: 12,
        seed: 3,
        ..AlConfig::new(gpr)
    };
    run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).unwrap()
}

/// Same campaign through the speculative pipelined runner: overlap
/// timing is read from the clock only when telemetry is on, so on/off
/// bit-identity is the proof the clock never leaks into the numerics.
fn run_once_pipelined() -> AlRun {
    let (x, y, cost) = dataset(40, 11);
    let part = Partition::random(40, 2, 0.8, 5);
    let gpr = GprConfig::new(Box::new(SquaredExponential::unit()))
        .with_noise_floor(NoiseFloor::Fixed(0.05))
        .with_restarts(2)
        .with_seed(7);
    let cfg = AlConfig {
        max_iters: 12,
        seed: 3,
        pipeline: PipelineConfig::Speculative,
        ..AlConfig::new(gpr)
    };
    run_al(&x, &y, &cost, &part, &mut VarianceReduction, &cfg).unwrap()
}

// One #[test] only: the global telemetry switch is process-wide, and the
// default multi-threaded test runner would race two tests flipping it.
#[test]
fn telemetry_on_is_bit_identical_to_telemetry_off() {
    // Baseline: telemetry fully off.
    alperf_obs::set_enabled(false);
    let off = run_once();
    let off_sparse = run_once_sparse();
    let off_pipelined = run_once_pipelined();

    // Telemetry fully on: global switch, JSONL trace, metrics registry —
    // plus the full live-telemetry stack (cooperative stack sampler at an
    // aggressive rate and the streaming aggregator), which must be just
    // as strictly observational as the passive sinks.
    let trace = std::env::temp_dir().join(format!(
        "alperf_obs_determinism_{}.jsonl",
        std::process::id()
    ));
    alperf_obs::sink::install_jsonl(&trace).unwrap();
    alperf_obs::set_enabled(true);
    let sampler = alperf_obs::profiler::start(500.0);
    let aggregator = alperf_obs::aggregate::install(alperf_obs::aggregate::DEFAULT_WINDOW_NS);
    // The retentive stack too: scraper feeding the embedded tsdb, the
    // default alerting rules evaluated after every scrape, and the
    // black-box recorder mirroring every span/record into its rings.
    // All of it must be as strictly observational as the passive sinks.
    let tsdb = alperf_obs::tsdb::install(alperf_obs::TsdbConfig::default());
    let scraper =
        alperf_obs::tsdb::start_scraper(tsdb.clone(), std::time::Duration::from_millis(20));
    let engine = alperf_obs::alerts::install(alperf_obs::alerts::default_rules());
    alperf_obs::blackbox::arm(alperf_obs::blackbox::DEFAULT_CAPACITY);
    let campaign_iters_before = alperf_obs::counter_vec(
        alperf_obs::names::AL_CAMPAIGN_ITERATIONS,
        &[
            alperf_obs::names::LABEL_CAMPAIGN,
            alperf_obs::names::LABEL_STRATEGY,
        ],
    )
    .snapshot()
    .iter()
    .map(|(_, v)| v)
    .sum::<u64>();
    let on = run_once();
    // Second telemetry-on run: run ids differ, numerics must not.
    let on2 = run_once();
    let on_sparse = run_once_sparse();
    let stale_before = alperf_obs::counter(alperf_obs::names::AL_PIPELINE_STALE_SELECTS).get();
    let reconciles_before = alperf_obs::counter(alperf_obs::names::AL_PIPELINE_RECONCILES).get();
    let on_pipelined = run_once_pipelined();
    let agg = aggregator.snapshot();
    let tsdb_stats = tsdb.stats();
    let evaluations = engine.evaluations();
    let blackbox_events = alperf_obs::blackbox::snapshot().len();
    scraper.stop();
    sampler.stop();
    alperf_obs::blackbox::disarm();
    alperf_obs::alerts::uninstall();
    alperf_obs::tsdb::uninstall();
    alperf_obs::aggregate::uninstall();
    alperf_obs::set_enabled(false);
    alperf_obs::sink::uninstall();

    // Bit-identical, not approximately equal: PartialEq on f64 fields.
    assert_eq!(off.history, on.history);
    assert_eq!(off.final_train, on.final_train);
    let off_rows: Vec<usize> = off.history.iter().map(|r| r.chosen_row).collect();
    let on_rows: Vec<usize> = on.history.iter().map(|r| r.chosen_row).collect();
    assert_eq!(off_rows, on_rows, "selected-candidate sequence diverged");

    // The telemetry-on run actually produced telemetry.
    let text = std::fs::read_to_string(&trace).unwrap();
    std::fs::remove_file(&trace).ok();
    assert!(text.lines().count() > off.history.len());
    assert!(
        text.lines().any(|l| l.contains("\"al.iteration\"")),
        "trace has no al.iteration records"
    );
    assert!(
        alperf_obs::counter("al.iterations").get() >= on.history.len() as u64,
        "iteration counter did not advance"
    );
    assert_eq!(on.history, on2.history, "telemetry-on runs diverged");

    // Approximate tier: same contract, and the trace carries the sparse-fit
    // spans plus tier-tagged iteration records.
    assert_eq!(
        off_sparse.history, on_sparse.history,
        "sparse tier diverged"
    );
    assert_eq!(off_sparse.final_train, on_sparse.final_train);
    assert!(
        text.contains("\"gp.sparse_fit\""),
        "trace has no gp.sparse_fit spans"
    );
    assert!(
        text.contains("\"tier\":\"fitc\"") || text.contains("\"tier\": \"fitc\""),
        "trace has no fitc-tier iteration records"
    );

    // Pipelined runner: same contract — telemetry (and the monotonic
    // clock reads it gates) must not perturb the speculative schedule.
    assert_eq!(
        off_pipelined.history, on_pipelined.history,
        "pipelined runner diverged under telemetry"
    );
    assert_eq!(off_pipelined.final_train, on_pipelined.final_train);
    // The speculative run left its fingerprints in the telemetry: a
    // pipeline-tagged run start, stale selections, and one reconcile per
    // measured iteration.
    assert!(
        text.contains("\"pipeline\":\"speculative\"")
            || text.contains("\"pipeline\": \"speculative\""),
        "trace has no speculative-pipeline run-start record"
    );
    let stale = alperf_obs::counter(alperf_obs::names::AL_PIPELINE_STALE_SELECTS).get();
    assert!(
        stale > stale_before,
        "stale-selection counter did not advance"
    );
    assert_eq!(
        alperf_obs::counter(alperf_obs::names::AL_PIPELINE_RECONCILES).get() - reconciles_before,
        on_pipelined.history.len() as u64,
        "one reconcile per measured pipelined iteration"
    );

    // The live-telemetry stack was really running, not just enabled:
    // labeled per-campaign counters advanced (one series per run id, all
    // tagged with the strategy), and the aggregator tracked the runs.
    let campaign_iters = alperf_obs::counter_vec(
        alperf_obs::names::AL_CAMPAIGN_ITERATIONS,
        &[
            alperf_obs::names::LABEL_CAMPAIGN,
            alperf_obs::names::LABEL_STRATEGY,
        ],
    )
    .snapshot();
    let labeled_total: u64 = campaign_iters.iter().map(|(_, v)| v).sum();
    let expected = (on.history.len()
        + on2.history.len()
        + on_sparse.history.len()
        + on_pipelined.history.len()) as u64;
    assert!(
        labeled_total - campaign_iters_before >= expected,
        "labeled campaign counters advanced by {} (< {expected})",
        labeled_total - campaign_iters_before
    );
    assert!(
        campaign_iters
            .iter()
            .all(|(values, _)| values[1] == "variance_reduction"),
        "campaign series not tagged with the strategy label"
    );
    assert!(
        !agg.campaigns.is_empty(),
        "aggregator saw no campaigns from the telemetry-on runs"
    );
    // The sampler observed the telemetry-on runs without perturbing them
    // (the bit-identity assertions above ran with it armed).
    assert!(
        alperf_obs::counter(alperf_obs::names::OBS_PROFILER_SAMPLES).get() > 0,
        "stack sampler took no samples during the telemetry-on runs"
    );
    assert!(
        text.lines().any(|l| l.contains("\"t\":\"sample\"")),
        "trace has no profiler sample records"
    );

    // The retentive stack was really running too (the bit-identity
    // assertions above ran with all of it armed): the scraper retained
    // series in the tsdb, the alert engine evaluated its rules, and the
    // flight recorder captured events.
    assert!(
        tsdb_stats.scrapes > 0 && tsdb_stats.series > 0,
        "tsdb scraper retained nothing (scrapes {}, series {})",
        tsdb_stats.scrapes,
        tsdb_stats.series
    );
    assert!(
        evaluations > 0,
        "alert engine never evaluated during the telemetry-on runs"
    );
    assert!(
        blackbox_events > 0,
        "black-box recorder captured no events during the telemetry-on runs"
    );
}
