//! Property-based tests for the cluster simulator: scheduler conservation
//! laws, power-trace integration bounds, and the performance model's
//! physical sanity over random job parameters.

use alperf_cluster::job::JobRequest;
use alperf_cluster::power::{PowerSample, PowerSampler};
use alperf_cluster::scheduler::schedule_batch;
use alperf_hpgmg::model::PerfModel;
use alperf_hpgmg::operator::OperatorKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_request() -> impl Strategy<Value = JobRequest> {
    (
        0usize..3,
        1e3..1e9f64,
        prop::sample::select(vec![1usize, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128]),
        prop::sample::select(vec![1.2f64, 1.5, 1.8, 2.1, 2.4]),
        0usize..3,
    )
        .prop_map(|(op, size, np, freq, repeat)| JobRequest {
            op: OperatorKind::all()[op],
            size,
            np,
            freq,
            repeat,
        })
}

proptest! {
    /// The scheduler never loses a job, never oversubscribes nodes, and
    /// produces a makespan between the longest job and the serial sum.
    #[test]
    fn scheduler_conservation(
        reqs in prop::collection::vec(any_request(), 1..25),
        runtimes in prop::collection::vec(0.1..100.0f64, 25),
    ) {
        let model = PerfModel::calibrated();
        let rts = &runtimes[..reqs.len()];
        let s = schedule_batch(&model, &reqs, rts);
        prop_assert_eq!(s.placements.len(), reqs.len());
        // Makespan bounds.
        let longest = rts.iter().cloned().fold(0.0f64, f64::max);
        let serial: f64 = rts.iter().sum();
        prop_assert!(s.makespan >= longest - 1e-9);
        prop_assert!(s.makespan <= serial + 1e-9);
        // No oversubscription: at every job start, count overlapping jobs'
        // nodes.
        for (i, &(start_i, _)) in s.placements.iter().enumerate() {
            let mut used = 0usize;
            for (j, &(start_j, nodes_j)) in s.placements.iter().enumerate() {
                let end_j = start_j + rts[j];
                if start_j <= start_i + 1e-12 && start_i < end_j - 1e-12 {
                    used += nodes_j;
                }
            }
            prop_assert!(
                used <= model.machine.nodes,
                "job {i}: {used} nodes in use at t={start_i}"
            );
        }
    }

    /// Energy integration of a trace is bounded by runtime x [min, max]
    /// observed power.
    #[test]
    fn integration_bounded_by_power_extremes(
        watts in prop::collection::vec(50.0..800.0f64, 10..40),
        runtime_pad in 0.1..5.0f64,
    ) {
        let sampler = PowerSampler::default();
        let trace: Vec<PowerSample> = watts
            .iter()
            .enumerate()
            .map(|(i, &w)| PowerSample { t: i as f64 * 2.0, watts: w })
            .collect();
        let runtime = (trace.len() - 1) as f64 * 2.0 + runtime_pad;
        prop_assume!(sampler.trace_passes(runtime, trace.len()));
        let e = sampler.integrate(runtime, &trace).unwrap();
        let pmin = watts.iter().cloned().fold(f64::INFINITY, f64::min);
        let pmax = watts.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(e >= pmin * runtime - 1e-6);
        prop_assert!(e <= pmax * runtime + 1e-6);
    }

    /// The performance model is physically sane for any job in the Table I
    /// box: positive runtime, monotone in size, non-increasing in frequency,
    /// and oversubscription never speeds things up.
    #[test]
    fn perf_model_sanity(req in any_request()) {
        let m = PerfModel::calibrated();
        let t = m.runtime_mean(req.op, req.size, req.np, req.freq);
        prop_assert!(t > 0.0 && t.is_finite());
        // Monotone in size.
        let t_bigger = m.runtime_mean(req.op, req.size * 2.0, req.np, req.freq);
        prop_assert!(t_bigger > t);
        // Non-increasing in frequency.
        if req.freq < 2.4 {
            let t_faster = m.runtime_mean(req.op, req.size, req.np, 2.4);
            prop_assert!(t_faster <= t + 1e-12);
        }
        // Energy consistent with power x time.
        let e = m.energy_mean(req.op, req.size, req.np, req.freq);
        let p = m.power_mean(req.np, req.freq);
        prop_assert!((e - p * t).abs() <= 1e-9 * e.max(1.0));
    }

    /// Sampled runtimes are strictly positive and concentrate near the mean.
    #[test]
    fn sampled_runtime_near_mean(req in any_request(), seed in 0u64..500) {
        let m = PerfModel::calibrated();
        let mut rng = StdRng::seed_from_u64(seed);
        let mean = m.runtime_mean(req.op, req.size, req.np, req.freq);
        let s = m.sample_runtime(req.op, req.size, req.np, req.freq, &mut rng);
        prop_assert!(s > 0.0);
        // 3% lognormal noise: 6-sigma band.
        prop_assert!(s > mean * 0.8 && s < mean * 1.25, "s={s} mean={mean}");
    }

    /// Job seeds are collision-free across the factor box for distinct
    /// requests (probabilistic — checks injectivity on the sampled pair).
    #[test]
    fn job_seeds_differ(a in any_request(), b in any_request()) {
        prop_assume!(a != b);
        prop_assert_ne!(a.seed(1), b.seed(1));
    }
}
