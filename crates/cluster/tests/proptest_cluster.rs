//! Property-based tests for the cluster simulator: scheduler conservation
//! laws, power-trace integration bounds, the performance model's
//! physical sanity over random job parameters, and chaos determinism —
//! fault/retry outcomes are bit-identical across worker counts and queue
//! orders for any fault-plan seed.

use alperf_cluster::executor::{measure_all, JobOutcome};
use alperf_cluster::fault::{Fault, FaultPlan, RetryPolicy};
use alperf_cluster::job::JobRequest;
use alperf_cluster::power::{PowerSample, PowerSampler};
use alperf_cluster::scheduler::schedule_batch;
use alperf_hpgmg::model::PerfModel;
use alperf_hpgmg::operator::OperatorKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_request() -> impl Strategy<Value = JobRequest> {
    (
        0usize..3,
        1e3..1e9f64,
        prop::sample::select(vec![1usize, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128]),
        prop::sample::select(vec![1.2f64, 1.5, 1.8, 2.1, 2.4]),
        0usize..3,
    )
        .prop_map(|(op, size, np, freq, repeat)| JobRequest {
            op: OperatorKind::all()[op],
            size,
            np,
            freq,
            repeat,
        })
}

proptest! {
    /// The scheduler never loses a job, never oversubscribes nodes, and
    /// produces a makespan between the longest job and the serial sum.
    #[test]
    fn scheduler_conservation(
        reqs in prop::collection::vec(any_request(), 1..25),
        runtimes in prop::collection::vec(0.1..100.0f64, 25),
    ) {
        let model = PerfModel::calibrated();
        let rts = &runtimes[..reqs.len()];
        let s = schedule_batch(&model, &reqs, rts);
        prop_assert_eq!(s.placements.len(), reqs.len());
        // Makespan bounds.
        let longest = rts.iter().cloned().fold(0.0f64, f64::max);
        let serial: f64 = rts.iter().sum();
        prop_assert!(s.makespan >= longest - 1e-9);
        prop_assert!(s.makespan <= serial + 1e-9);
        // No oversubscription: at every job start, count overlapping jobs'
        // nodes.
        for (i, &(start_i, _)) in s.placements.iter().enumerate() {
            let mut used = 0usize;
            for (j, &(start_j, nodes_j)) in s.placements.iter().enumerate() {
                let end_j = start_j + rts[j];
                if start_j <= start_i + 1e-12 && start_i < end_j - 1e-12 {
                    used += nodes_j;
                }
            }
            prop_assert!(
                used <= model.machine.nodes,
                "job {i}: {used} nodes in use at t={start_i}"
            );
        }
    }

    /// Energy integration of a trace is bounded by runtime x [min, max]
    /// observed power.
    #[test]
    fn integration_bounded_by_power_extremes(
        watts in prop::collection::vec(50.0..800.0f64, 10..40),
        runtime_pad in 0.1..5.0f64,
    ) {
        let sampler = PowerSampler::default();
        let trace: Vec<PowerSample> = watts
            .iter()
            .enumerate()
            .map(|(i, &w)| PowerSample { t: i as f64 * 2.0, watts: w })
            .collect();
        let runtime = (trace.len() - 1) as f64 * 2.0 + runtime_pad;
        prop_assume!(sampler.trace_passes(runtime, trace.len()));
        let e = sampler.integrate(runtime, &trace).unwrap();
        let pmin = watts.iter().cloned().fold(f64::INFINITY, f64::min);
        let pmax = watts.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(e >= pmin * runtime - 1e-6);
        prop_assert!(e <= pmax * runtime + 1e-6);
    }

    /// The performance model is physically sane for any job in the Table I
    /// box: positive runtime, monotone in size, non-increasing in frequency,
    /// and oversubscription never speeds things up.
    #[test]
    fn perf_model_sanity(req in any_request()) {
        let m = PerfModel::calibrated();
        let t = m.runtime_mean(req.op, req.size, req.np, req.freq);
        prop_assert!(t > 0.0 && t.is_finite());
        // Monotone in size.
        let t_bigger = m.runtime_mean(req.op, req.size * 2.0, req.np, req.freq);
        prop_assert!(t_bigger > t);
        // Non-increasing in frequency.
        if req.freq < 2.4 {
            let t_faster = m.runtime_mean(req.op, req.size, req.np, 2.4);
            prop_assert!(t_faster <= t + 1e-12);
        }
        // Energy consistent with power x time.
        let e = m.energy_mean(req.op, req.size, req.np, req.freq);
        let p = m.power_mean(req.np, req.freq);
        prop_assert!((e - p * t).abs() <= 1e-9 * e.max(1.0));
    }

    /// Sampled runtimes are strictly positive and concentrate near the mean.
    #[test]
    fn sampled_runtime_near_mean(req in any_request(), seed in 0u64..500) {
        let m = PerfModel::calibrated();
        let mut rng = StdRng::seed_from_u64(seed);
        let mean = m.runtime_mean(req.op, req.size, req.np, req.freq);
        let s = m.sample_runtime(req.op, req.size, req.np, req.freq, &mut rng);
        prop_assert!(s > 0.0);
        // 3% lognormal noise: 6-sigma band.
        prop_assert!(s > mean * 0.8 && s < mean * 1.25, "s={s} mean={mean}");
    }

    /// Job seeds are collision-free across the factor box for distinct
    /// requests (probabilistic — checks injectivity on the sampled pair).
    #[test]
    fn job_seeds_differ(a in any_request(), b in any_request()) {
        prop_assume!(a != b);
        prop_assert_ne!(a.seed(1), b.seed(1));
    }
}

/// Jobs small enough that measuring a batch stays cheap (trace sampling is
/// O(runtime), and the big end of the Table I box runs for minutes).
fn small_request() -> impl Strategy<Value = JobRequest> {
    (
        0usize..3,
        1e3..1e6f64,
        prop::sample::select(vec![1usize, 8, 16, 32, 64]),
        prop::sample::select(vec![1.2f64, 1.8, 2.4]),
        0usize..3,
    )
        .prop_map(|(op, size, np, freq, repeat)| JobRequest {
            op: OperatorKind::all()[op],
            size,
            np,
            freq,
            repeat,
        })
}

/// A `JobOutcome` stripped of its batch index: the per-job payload that
/// must be invariant under queue reordering.
type NormalizedOutcome = (
    Option<(u64, u64, Vec<PowerSample>)>,
    Option<Fault>,
    u32,
    u64,
);

fn normalize(o: &JobOutcome) -> NormalizedOutcome {
    match o {
        JobOutcome::Ok {
            measurement,
            attempts,
            backoff_ns,
        } => (
            Some((
                measurement.runtime.to_bits(),
                measurement.memory_per_node.to_bits(),
                measurement.trace.clone(),
            )),
            None,
            *attempts,
            *backoff_ns,
        ),
        JobOutcome::Failed {
            attempts,
            fault,
            backoff_ns,
            ..
        } => (None, Some(*fault), *attempts, *backoff_ns),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Chaos determinism: for ANY fault-plan seed and failure rate, the
    /// `JobOutcome` vector is bit-identical across worker counts {1, 2, 8},
    /// and per-job outcomes are invariant under queue reordering (faults
    /// and backoffs derive from job identity, never from shared state) —
    /// the fault-injection mirror of the obs on/off determinism test.
    #[test]
    fn chaos_outcomes_deterministic_across_workers_and_order(
        reqs in prop::collection::vec(small_request(), 1..12),
        plan_seed in 0u64..1000,
        rate in 0.0..1.001f64,
        campaign_seed in 0u64..50,
    ) {
        let model = PerfModel::calibrated();
        let sampler = PowerSampler::default();
        let plan = FaultPlan::new(plan_seed, rate);
        let retry = RetryPolicy::default();
        let base = measure_all(&model, &sampler, &reqs, campaign_seed, 1, Some(&plan), &retry)
            .expect("executor infrastructure must not fail");
        prop_assert_eq!(base.len(), reqs.len());
        for workers in [2usize, 8] {
            let out = measure_all(&model, &sampler, &reqs, campaign_seed, workers, Some(&plan), &retry)
                .expect("executor infrastructure must not fail");
            prop_assert_eq!(&out, &base, "worker count {} changed outcomes", workers);
        }
        // Queue-order invariance: run the same jobs reversed; outcome i of
        // the base run must equal outcome n-1-i of the reversed run, up to
        // the batch index.
        let rev: Vec<JobRequest> = reqs.iter().rev().copied().collect();
        let out_rev = measure_all(&model, &sampler, &rev, campaign_seed, 4, Some(&plan), &retry)
            .expect("executor infrastructure must not fail");
        let a: Vec<NormalizedOutcome> = base.iter().map(normalize).collect();
        let mut b: Vec<NormalizedOutcome> = out_rev.iter().map(normalize).collect();
        b.reverse();
        prop_assert_eq!(a, b, "queue order changed per-job outcomes");
    }
}
