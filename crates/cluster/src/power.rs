//! IPMI-style power traces: sparse, noisy, gappy sampling of the cluster's
//! instantaneous power draw, and numerical integration into per-job energy.
//!
//! The paper "collect[s] power traces with frequent recordings of the
//! instantaneous power draw (in Watts) from the on-board IPMI sensors and
//! infer[s] per-job energy consumption estimates (in Joules) using the
//! recorded timestamps", then excludes "jobs with insufficient number of
//! corresponding power draw records (less than 10 for 60 seconds of
//! computation)" — both reproduced here. The surviving energy estimates
//! carry integration error on top of sensor noise, which is why the Power
//! dataset is visibly noisier than the Performance dataset (paper Fig. 1).

use rand::Rng;

/// One power reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Seconds since job start.
    pub t: f64,
    /// Instantaneous cluster power, Watts.
    pub watts: f64,
}

/// Sampler configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSampler {
    /// Nominal sampling interval, seconds.
    pub interval_s: f64,
    /// Probability that a scheduled sample is actually recorded (gaps!).
    pub keep_probability: f64,
    /// Relative sensor noise (1-sigma) on each reading.
    pub sensor_noise: f64,
    /// Per-job power-level noise (1-sigma, lognormal): machine-to-machine
    /// and thermal variation that shifts a whole job's draw. This is the
    /// dominant reason the paper's Power dataset is "much" noisier than
    /// its Performance dataset (Fig. 1) — it does not average out over a
    /// trace the way per-sample sensor noise does.
    pub job_level_noise: f64,
    /// Minimum record rate to keep a job: samples per 60 s of computation
    /// (the paper's threshold is 10).
    pub min_samples_per_minute: f64,
}

impl Default for PowerSampler {
    fn default() -> Self {
        PowerSampler {
            interval_s: 1.0,
            keep_probability: 0.8,
            sensor_noise: 0.04,
            job_level_noise: 0.08,
            min_samples_per_minute: 10.0,
        }
    }
}

impl PowerSampler {
    /// Sample a trace for a job of duration `runtime` seconds whose true
    /// mean cluster power is `mean_watts`. The power signal wanders slowly
    /// around the mean (multigrid phases alternate compute- and
    /// memory-bound work) plus white sensor noise.
    pub fn sample_trace(
        &self,
        runtime: f64,
        mean_watts: f64,
        rng: &mut impl Rng,
    ) -> Vec<PowerSample> {
        let mut out = Vec::new();
        if runtime <= 0.0 {
            return out;
        }
        // Whole-job power offset (thermal / machine-to-machine variation).
        let mean_watts =
            mean_watts * alperf_hpgmg::model::lognormal_factor(self.job_level_noise, rng);
        // First sample lands uniformly inside the first interval (the
        // sampler daemon is not synchronized with job starts).
        let mut t = rng.gen_range(0.0..self.interval_s);
        while t < runtime {
            if rng.gen_range(0.0..1.0) < self.keep_probability {
                // Slow wander: +/-3% sinusoidal phase drift; white noise on top.
                let phase = 0.03 * (t * 0.21).sin();
                let noise = self.sensor_noise * alperf_hpgmg::model::standard_normal(rng);
                out.push(PowerSample {
                    t,
                    watts: mean_watts * (1.0 + phase + noise),
                });
            }
            t += self.interval_s;
        }
        out
    }

    /// The paper's record filter: a trace needs at least
    /// `min_samples_per_minute` records per 60 s of computation *and* an
    /// absolute floor of that many records in total ("less than 10 for 60
    /// seconds of computation" excludes short jobs that cannot accumulate
    /// 10 records at all — which is why the paper's Power dataset contains
    /// only long-running jobs and its minimum Energy is ~6.4e3 J).
    pub fn trace_passes(&self, runtime: f64, n_samples: usize) -> bool {
        if (n_samples as f64) < self.min_samples_per_minute {
            return false;
        }
        let required = self.min_samples_per_minute * runtime / 60.0;
        n_samples as f64 >= required
    }

    /// Integrate a trace into Joules over `[0, runtime]`: trapezoid rule
    /// between samples, with the first/last sample value extended to the
    /// job boundaries (the standard treatment for sparse IPMI traces).
    ///
    /// Returns `None` if the trace fails [`PowerSampler::trace_passes`].
    pub fn integrate(&self, runtime: f64, trace: &[PowerSample]) -> Option<f64> {
        // Explicit empty guard: with `min_samples_per_minute == 0` the rate
        // filter lets an empty trace through (fault injection produces
        // exactly these — an IPMI dropout on a permissive sampler).
        if trace.is_empty() || !self.trace_passes(runtime, trace.len()) {
            return None;
        }
        let mut joules = 0.0;
        // Leading edge: extend first sample back to t = 0.
        joules += trace[0].watts * trace[0].t.max(0.0);
        for w in trace.windows(2) {
            let dt = w[1].t - w[0].t;
            joules += 0.5 * (w[0].watts + w[1].watts) * dt;
        }
        // Trailing edge: extend last sample to t = runtime.
        let last = trace.last().expect("non-empty checked above");
        joules += last.watts * (runtime - last.t).max(0.0);
        Some(joules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_power_integrates_to_p_times_t() {
        let s = PowerSampler {
            keep_probability: 1.0,
            sensor_noise: 0.0,
            job_level_noise: 0.0,
            ..Default::default()
        };
        // Hand-built noise-free trace.
        let trace: Vec<PowerSample> = (0..20)
            .map(|i| PowerSample {
                t: 1.0 + 3.0 * i as f64,
                watts: 200.0,
            })
            .collect();
        let runtime = 60.0;
        let e = s.integrate(runtime, &trace).unwrap();
        assert!((e - 200.0 * 60.0).abs() < 1e-9, "e = {e}");
    }

    #[test]
    fn filter_rejects_sparse_traces() {
        let s = PowerSampler::default();
        // 60 s of computation needs >= 10 samples.
        assert!(s.trace_passes(60.0, 10));
        assert!(!s.trace_passes(60.0, 9));
        // Long jobs need proportionally more.
        assert!(!s.trace_passes(120.0, 15));
        assert!(s.trace_passes(120.0, 20));
        // Short jobs still need the absolute floor of 10 records.
        assert!(!s.trace_passes(12.0, 9));
        assert!(s.trace_passes(12.0, 10));
        assert!(!s.trace_passes(1.0, 1));
        assert!(!s.trace_passes(0.5, 0));
    }

    #[test]
    fn integrate_returns_none_below_threshold() {
        let s = PowerSampler::default();
        let sparse: Vec<PowerSample> = (0..5)
            .map(|i| PowerSample {
                t: i as f64 * 100.0,
                watts: 100.0,
            })
            .collect();
        // 600 s job with 5 samples: rate far below 10/min.
        assert_eq!(s.integrate(600.0, &sparse), None);
        // A dense 12-sample trace on a 60 s job passes.
        let dense: Vec<PowerSample> = (0..12)
            .map(|i| PowerSample {
                t: i as f64 * 5.0,
                watts: 100.0,
            })
            .collect();
        assert!(s.integrate(60.0, &dense).is_some());
    }

    #[test]
    fn sampled_trace_covers_job_and_respects_gaps() {
        let s = PowerSampler {
            job_level_noise: 0.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let runtime = 300.0;
        let trace = s.sample_trace(runtime, 250.0, &mut rng);
        // Expected samples: 300 scheduled * 0.8 kept ~ 240.
        assert!(trace.len() > 200 && trace.len() < 280, "{}", trace.len());
        assert!(trace.iter().all(|p| p.t >= 0.0 && p.t < runtime));
        // Strictly increasing timestamps.
        assert!(trace.windows(2).all(|w| w[1].t > w[0].t));
        // Watts near the mean.
        let avg = trace.iter().map(|p| p.watts).sum::<f64>() / trace.len() as f64;
        assert!((avg - 250.0).abs() / 250.0 < 0.05, "avg {avg}");
    }

    #[test]
    fn energy_estimate_close_to_truth_for_long_jobs() {
        // Job-level noise off: this test isolates integration accuracy.
        let s = PowerSampler {
            job_level_noise: 0.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let runtime = 200.0;
        let mean_watts = 300.0;
        let mut errs = Vec::new();
        for _ in 0..50 {
            let trace = s.sample_trace(runtime, mean_watts, &mut rng);
            if let Some(e) = s.integrate(runtime, &trace) {
                errs.push((e - mean_watts * runtime).abs() / (mean_watts * runtime));
            }
        }
        assert!(!errs.is_empty());
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean_err < 0.03, "mean relative error {mean_err}");
    }

    #[test]
    fn short_jobs_usually_dropped() {
        let s = PowerSampler::default();
        let mut rng = StdRng::seed_from_u64(5);
        let mut kept = 0;
        for _ in 0..100 {
            let trace = s.sample_trace(2.0, 250.0, &mut rng);
            if s.integrate(2.0, &trace).is_some() {
                kept += 1;
            }
        }
        // 2 s jobs get at most one scheduled sample: essentially all dropped.
        assert!(kept < 10, "kept {kept}");
    }

    #[test]
    fn zero_runtime_trace_is_empty() {
        let s = PowerSampler::default();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(s.sample_trace(0.0, 100.0, &mut rng).is_empty());
    }

    #[test]
    fn empty_trace_never_panics_even_with_permissive_filter() {
        // min_samples_per_minute = 0 disables the rate filter; an injected
        // IPMI dropout then hands integrate() an empty trace.
        let s = PowerSampler {
            min_samples_per_minute: 0.0,
            ..Default::default()
        };
        assert_eq!(s.integrate(60.0, &[]), None);
    }
}
