//! End-to-end measurement campaign: workload -> scheduler -> measurements
//! -> the paper's two datasets.
//!
//! [`Campaign::run`] reproduces the full data-collection pipeline of
//! Section IV and produces:
//!
//! * the **Performance dataset** (every completed job; response: Runtime),
//!   ~3246 jobs with the default spec;
//! * the **Power dataset** (jobs whose IPMI trace passed the record-rate
//!   filter; responses: Runtime and Energy), ~640 jobs.
//!
//! Both come back as [`alperf_data::DataSet`]s with the Table I columns:
//! `Operator` (categorical), `Global Problem Size`, `NP`, `CPU Frequency`.

use crate::executor::{self, ExecError, JobOutcome};
use crate::fault::{FaultPlan, RetryPolicy};
use crate::job::{FailedJob, JobRecord, JobRequest};
use crate::power::PowerSampler;
use crate::scheduler::{self, ScheduleError};
use crate::workload::{self, WorkloadSpec};
use alperf_data::dataset::{DataSet, DataSetError};
use alperf_hpgmg::model::PerfModel;
use alperf_obs::{names, Value};

/// Column names used in the generated datasets (Table I's variables).
pub const COL_OPERATOR: &str = "Operator";
/// Column name for the problem size.
pub const COL_SIZE: &str = "Global Problem Size";
/// Column name for the rank count.
pub const COL_NP: &str = "NP";
/// Column name for the CPU frequency.
pub const COL_FREQ: &str = "CPU Frequency";
/// Response name for runtime in seconds.
pub const RESP_RUNTIME: &str = "Runtime";
/// Response name for energy in Joules.
pub const RESP_ENERGY: &str = "Energy";
/// Response name for peak per-node memory in bytes.
pub const RESP_MEMORY: &str = "Memory";

/// A full measurement campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The workload design.
    pub spec: WorkloadSpec,
    /// The machine/performance model.
    pub model: PerfModel,
    /// The IPMI sampler configuration.
    pub sampler: PowerSampler,
    /// Worker threads for the measurement executor.
    pub workers: usize,
    /// Retry policy for faulted jobs.
    pub retry: RetryPolicy,
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign {
            spec: WorkloadSpec::default(),
            model: PerfModel::calibrated(),
            sampler: PowerSampler::default(),
            workers: 8,
            retry: RetryPolicy::default(),
        }
    }
}

/// Anything that can abort a campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// Dataset assembly failed.
    Data(DataSetError),
    /// The measurement executor failed at the infrastructure level
    /// (per-job faults are data, not errors — see [`CampaignOutput::failures`]).
    Exec(ExecError),
    /// The scheduler rejected the batch.
    Schedule(ScheduleError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Data(e) => write!(f, "dataset assembly: {e:?}"),
            CampaignError::Exec(e) => write!(f, "executor: {e}"),
            CampaignError::Schedule(e) => write!(f, "scheduler: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<DataSetError> for CampaignError {
    fn from(e: DataSetError) -> Self {
        CampaignError::Data(e)
    }
}

impl From<ExecError> for CampaignError {
    fn from(e: ExecError) -> Self {
        CampaignError::Exec(e)
    }
}

impl From<ScheduleError> for CampaignError {
    fn from(e: ScheduleError) -> Self {
        CampaignError::Schedule(e)
    }
}

/// Everything a campaign produces.
#[derive(Debug, Clone)]
pub struct CampaignOutput {
    /// Accounting records for every completed job.
    pub records: Vec<JobRecord>,
    /// Jobs that exhausted their retry budget, with the compute cost they
    /// burned (charged against the budget — nothing vanishes silently).
    pub failures: Vec<FailedJob>,
    /// The Performance dataset (response: Runtime).
    pub performance: DataSet,
    /// The Power dataset (responses: Runtime, Energy).
    pub power: DataSet,
    /// Scheduler makespan of the whole campaign, seconds.
    pub makespan: f64,
}

impl Campaign {
    /// The fault plan this campaign injects: seeded from the workload seed
    /// (on an independent stream from measurement noise) at the spec's
    /// `failure_rate`. A rate of zero yields a plan that never fires.
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan::new(self.spec.seed ^ 0xfa17_9a71, self.spec.failure_rate)
    }

    /// Run the whole pipeline.
    ///
    /// ```no_run
    /// let out = alperf_cluster::Campaign::default().run().unwrap();
    /// println!("{} performance jobs, {} with energy estimates ({} failed)",
    ///          out.performance.n_rows(), out.power.n_rows(), out.failures.len());
    /// ```
    ///
    /// Jobs fault according to [`Campaign::fault_plan`]; fatal faults are
    /// retried under [`Campaign::retry`], and jobs that exhaust their
    /// budget land in [`CampaignOutput::failures`] with the compute cost
    /// they burned — the paper charges failed experiments, so nothing is
    /// silently dropped anymore.
    ///
    /// # Errors
    /// Propagates dataset-assembly, executor-infrastructure, and
    /// scheduler-rejection errors. Per-job faults are *not* errors.
    pub fn run(&self) -> Result<CampaignOutput, CampaignError> {
        let requests = workload::build_requests(&self.spec, &self.model);
        let plan = self.fault_plan();
        // One record per campaign with every parameter needed to replay
        // the exact fault/retry behaviour (consumed by `chaos_replay`).
        alperf_obs::record(
            names::CLUSTER_FAULT_PLAN,
            &[
                ("plan_seed", Value::U64(plan.seed)),
                ("failure_rate", Value::F64(plan.failure_rate)),
                ("permanent_fraction", Value::F64(plan.permanent_fraction)),
                (
                    "second_attempt_fraction",
                    Value::F64(plan.second_attempt_fraction),
                ),
                ("campaign_seed", Value::U64(self.spec.seed)),
                (
                    "focus_size_levels",
                    Value::U64(self.spec.focus_size_levels as u64),
                ),
                (
                    "default_size_levels",
                    Value::U64(self.spec.default_size_levels as u64),
                ),
                ("repeats", Value::U64(self.spec.repeats as u64)),
                ("workers", Value::U64(self.workers as u64)),
                ("max_attempts", Value::U64(self.retry.max_attempts as u64)),
                ("base_backoff_ns", Value::U64(self.retry.base_backoff_ns)),
                ("multiplier", Value::F64(self.retry.multiplier)),
                ("max_backoff_ns", Value::U64(self.retry.max_backoff_ns)),
                ("jitter", Value::F64(self.retry.jitter)),
                ("n_jobs", Value::U64(requests.len() as u64)),
            ],
        );
        // Measure runtimes + traces (concurrently, deterministically),
        // injecting faults and retrying at the executor boundary.
        let outcomes = executor::measure_all(
            &self.model,
            &self.sampler,
            &requests,
            self.spec.seed,
            self.workers,
            Some(&plan),
            &self.retry,
        )?;
        // Partition: completed jobs proceed to scheduling; failures are
        // charged the compute their attempts burned (the model's expected
        // runtime per attempt — the noisy measurement never materialized).
        let mut survivors: Vec<JobRequest> = Vec::new();
        let mut measurements = Vec::new();
        let mut attempts_per_job = Vec::new();
        let mut failures: Vec<FailedJob> = Vec::new();
        for (req, outcome) in requests.iter().zip(outcomes) {
            match outcome {
                JobOutcome::Ok {
                    measurement,
                    attempts,
                    ..
                } => {
                    survivors.push(*req);
                    measurements.push(measurement);
                    attempts_per_job.push(attempts);
                }
                JobOutcome::Failed {
                    attempts, fault, ..
                } => {
                    let charged_cost = if fault.kind.charges_compute() {
                        attempts as f64
                            * self.model.runtime_mean(req.op, req.size, req.np, req.freq)
                            * req.np as f64
                    } else {
                        0.0
                    };
                    failures.push(FailedJob {
                        request: *req,
                        attempts,
                        fault,
                        charged_cost,
                    });
                }
            }
        }
        // Schedule the completed batch for realistic start times / makespan.
        let runtimes: Vec<f64> = measurements.iter().map(|m| m.runtime).collect();
        let sched = scheduler::try_schedule_batch(&self.model, &survivors, &runtimes)?;
        // Assemble records with energy integration.
        let records: Vec<JobRecord> = survivors
            .iter()
            .zip(&measurements)
            .zip(&attempts_per_job)
            .zip(&sched.placements)
            .map(|(((req, m), &attempts), &(start, nodes))| {
                let energy = self.sampler.integrate(m.runtime, &m.trace);
                JobRecord {
                    request: *req,
                    submit_time: 0.0,
                    start_time: start,
                    runtime: m.runtime,
                    nodes,
                    energy,
                    memory_per_node: m.memory_per_node,
                    power_samples: m.trace.len(),
                    attempts,
                }
            })
            .collect();
        let performance = records_to_performance_dataset(&records)?;
        let power = records_to_power_dataset(&records)?;
        Ok(CampaignOutput {
            records,
            failures,
            performance,
            power,
            makespan: sched.makespan,
        })
    }
}

fn push_variables(data: &mut DataSet, records: &[&JobRecord]) -> Result<(), DataSetError> {
    let ops: Vec<&str> = records.iter().map(|r| r.request.op.name()).collect();
    data.add_categorical_variable(COL_OPERATOR, &ops)?;
    data.add_numeric_variable(COL_SIZE, records.iter().map(|r| r.request.size).collect())?;
    data.add_numeric_variable(
        COL_NP,
        records.iter().map(|r| r.request.np as f64).collect(),
    )?;
    data.add_numeric_variable(COL_FREQ, records.iter().map(|r| r.request.freq).collect())?;
    Ok(())
}

/// Build the Performance dataset (all records; response: Runtime).
pub fn records_to_performance_dataset(records: &[JobRecord]) -> Result<DataSet, DataSetError> {
    let refs: Vec<&JobRecord> = records.iter().collect();
    let mut data = DataSet::new();
    push_variables(&mut data, &refs)?;
    data.add_response(RESP_RUNTIME, refs.iter().map(|r| r.runtime).collect())?;
    data.add_response(
        RESP_MEMORY,
        refs.iter().map(|r| r.memory_per_node).collect(),
    )?;
    Ok(data)
}

/// Build the Power dataset (records with surviving energy estimates;
/// responses: Runtime and Energy).
pub fn records_to_power_dataset(records: &[JobRecord]) -> Result<DataSet, DataSetError> {
    let refs: Vec<&JobRecord> = records.iter().filter(|r| r.energy.is_some()).collect();
    let mut data = DataSet::new();
    if refs.is_empty() {
        return Ok(data);
    }
    push_variables(&mut data, &refs)?;
    data.add_response(RESP_RUNTIME, refs.iter().map(|r| r.runtime).collect())?;
    data.add_response(
        RESP_ENERGY,
        refs.iter().map(|r| r.energy.expect("filtered")).collect(),
    )?;
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_linalg::stats;

    /// A smaller campaign for fast tests.
    fn small() -> Campaign {
        Campaign {
            spec: WorkloadSpec {
                focus_size_levels: 8,
                default_size_levels: 3,
                ..Default::default()
            },
            workers: 4,
            ..Default::default()
        }
    }

    #[test]
    fn pipeline_produces_consistent_datasets() {
        let out = small().run().unwrap();
        assert!(!out.records.is_empty());
        assert_eq!(out.performance.n_rows(), out.records.len());
        let with_energy = out.records.iter().filter(|r| r.energy.is_some()).count();
        assert_eq!(out.power.n_rows(), with_energy);
        assert!(with_energy > 0, "no jobs survived the power filter");
        assert!(
            with_energy < out.records.len(),
            "power filter dropped nothing"
        );
        assert!(out.makespan > 0.0);
    }

    #[test]
    fn power_dataset_noisier_than_performance() {
        // The paper's Fig. 1 observation: per-setting relative spread of
        // Energy exceeds that of Runtime. Compare average relative std over
        // repeated settings.
        let out = small().run().unwrap();
        let vars = [COL_OPERATOR, COL_SIZE, COL_NP, COL_FREQ];
        let rel_spread = |d: &DataSet, resp: &str| -> f64 {
            let groups = d.group_by_settings(&vars).unwrap();
            let col = d.response(resp).unwrap();
            let mut acc = Vec::new();
            for (_, rows) in groups.iter().filter(|(_, r)| r.len() >= 2) {
                let vals: Vec<f64> = rows.iter().map(|&i| col[i]).collect();
                acc.push(stats::std_dev(&vals) / stats::mean(&vals).abs().max(1e-300));
            }
            stats::mean(&acc)
        };
        let perf_spread = rel_spread(&out.performance, RESP_RUNTIME);
        let energy_spread = rel_spread(&out.power, RESP_ENERGY);
        assert!(
            energy_spread > perf_spread,
            "energy {energy_spread} !> runtime {perf_spread}"
        );
    }

    #[test]
    fn runtime_range_matches_table1() {
        let out = Campaign::default().run().unwrap();
        let rt = out.performance.response(RESP_RUNTIME).unwrap();
        let lo = stats::min(rt).unwrap();
        let hi = stats::max(rt).unwrap();
        // Table I: 0.005 – 458.436 s. Same orders of magnitude.
        assert!(lo > 0.002 && lo < 0.02, "min runtime {lo}");
        assert!(hi > 300.0 && hi < 600.0, "max runtime {hi}");
    }

    #[test]
    fn energy_range_matches_table1() {
        let out = Campaign::default().run().unwrap();
        let en = out.power.response(RESP_ENERGY).unwrap();
        let lo = stats::min(en).unwrap();
        let hi = stats::max(en).unwrap();
        // Table I: 6.4e3 – 1.1e5 J. Same orders of magnitude.
        assert!(lo > 1e3 && lo < 2e4, "min energy {lo}");
        assert!(hi > 4e4 && hi < 4e5, "max energy {hi}");
    }

    #[test]
    fn dataset_sizes_match_paper_scale() {
        let out = Campaign::default().run().unwrap();
        let n_perf = out.performance.n_rows();
        let n_power = out.power.n_rows();
        // Paper: 3246 and 640.
        assert!((2500..=4000).contains(&n_perf), "performance: {n_perf}");
        assert!((280..=1100).contains(&n_power), "power: {n_power}");
        assert!(n_power < n_perf / 2, "power should be a small subset");
    }

    #[test]
    fn performance_dataset_has_memory_response() {
        let out = small().run().unwrap();
        let mem = out.performance.response(RESP_MEMORY).unwrap();
        assert_eq!(mem.len(), out.performance.n_rows());
        // Plausible per-node footprints: above the 120 MB per-rank base,
        // below the 128 GB node RAM.
        assert!(mem.iter().all(|&m| m > 1e8 && m < 128e9));
        // Larger problems use more memory: compare the extremes.
        let sizes = &out.performance.variable(COL_SIZE).unwrap().values;
        let (mut small_mem, mut big_mem) = (f64::INFINITY, 0.0f64);
        for (s, m) in sizes.iter().zip(mem) {
            if *s < 1e4 {
                small_mem = small_mem.min(*m);
            }
            if *s > 1e8 {
                big_mem = big_mem.max(*m);
            }
        }
        assert!(big_mem > 10.0 * small_mem, "{small_mem} vs {big_mem}");
    }

    #[test]
    fn deterministic_output() {
        let a = small().run().unwrap();
        let b = small().run().unwrap();
        assert_eq!(a.performance.n_rows(), b.performance.n_rows());
        assert_eq!(
            a.performance.response(RESP_RUNTIME).unwrap(),
            b.performance.response(RESP_RUNTIME).unwrap()
        );
        assert_eq!(
            a.power.response(RESP_ENERGY).unwrap(),
            b.power.response(RESP_ENERGY).unwrap()
        );
    }

    #[test]
    fn empty_records_make_empty_power_dataset() {
        let d = records_to_power_dataset(&[]).unwrap();
        assert_eq!(d.n_rows(), 0);
    }

    #[test]
    fn failures_are_accounted_not_dropped() {
        let c = Campaign {
            spec: WorkloadSpec {
                focus_size_levels: 8,
                default_size_levels: 3,
                failure_rate: 0.3,
                ..Default::default()
            },
            workers: 4,
            ..Default::default()
        };
        let out = c.run().unwrap();
        let n_requests = crate::workload::build_requests(&c.spec, &c.model).len();
        // Every submitted job is either a record or a failure.
        assert_eq!(out.records.len() + out.failures.len(), n_requests);
        assert!(!out.failures.is_empty(), "rate 0.3 must fail some jobs");
        // Failures carry fatal faults and non-negative charged cost;
        // anything that burned compute charges a positive cost.
        for f in &out.failures {
            assert!(f.fault.kind.is_fatal());
            assert!(f.attempts >= 1);
            if f.fault.kind.charges_compute() {
                assert!(f.charged_cost > 0.0, "{:?}", f.fault.kind);
            } else {
                assert_eq!(f.charged_cost, 0.0);
            }
        }
        // Retried-then-recovered jobs surface in the records.
        assert!(out.records.iter().any(|r| r.attempts > 1));
        // And the budget totals include the failed-run cost.
        let machine = alperf_hpgmg::model::MachineSpec::cloudlab_wisconsin();
        let stats =
            crate::accounting::queue_stats_with_failures(&out.records, &out.failures, &machine);
        assert_eq!(stats.n_failed, out.failures.len());
        assert!(stats.failed_cost > 0.0);
        let completed: f64 = out.records.iter().map(|r| r.cost()).sum();
        assert!((stats.total_cost - completed - stats.failed_cost).abs() < 1e-9);
    }

    #[test]
    fn chaos_campaign_identical_across_worker_counts() {
        let mk = |workers: usize| Campaign {
            spec: WorkloadSpec {
                focus_size_levels: 6,
                default_size_levels: 2,
                failure_rate: 0.3,
                ..Default::default()
            },
            workers,
            ..Default::default()
        };
        let base = mk(1).run().unwrap();
        for workers in [2, 8] {
            let out = mk(workers).run().unwrap();
            assert_eq!(out.records, base.records, "workers={workers}");
            assert_eq!(out.failures, base.failures, "workers={workers}");
            assert_eq!(out.makespan, base.makespan, "workers={workers}");
        }
    }

    #[test]
    fn zero_failure_rate_fails_nothing() {
        let c = Campaign {
            spec: WorkloadSpec {
                focus_size_levels: 4,
                default_size_levels: 2,
                failure_rate: 0.0,
                ..Default::default()
            },
            workers: 2,
            ..Default::default()
        };
        let out = c.run().unwrap();
        assert!(out.failures.is_empty());
        assert!(out.records.iter().all(|r| r.attempts == 1));
    }
}
