//! Job requests and accounting records — the simulator's SLURM accounting
//! database.

use alperf_hpgmg::operator::OperatorKind;

/// A job submission: one HPGMG-FE run with fixed factor levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRequest {
    /// Elliptic operator (the paper's `Operator` factor).
    pub op: OperatorKind,
    /// Global Problem Size (unknowns).
    pub size: f64,
    /// MPI rank count (`NP`).
    pub np: usize,
    /// CPU frequency in GHz.
    pub freq: f64,
    /// Repeat index (0-based) of this configuration.
    pub repeat: usize,
}

impl JobRequest {
    /// Deterministic per-job RNG seed derived from the job's identity, so
    /// measurement noise is reproducible regardless of execution order.
    pub fn seed(&self, campaign_seed: u64) -> u64 {
        // FNV-1a over the identifying fields.
        let mut h = 0xcbf29ce484222325u64 ^ campaign_seed;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(match self.op {
            OperatorKind::Poisson1 => 1,
            OperatorKind::Poisson2 => 2,
            OperatorKind::Poisson2Affine => 3,
        });
        mix(self.size.to_bits());
        mix(self.np as u64);
        mix(self.freq.to_bits());
        mix(self.repeat as u64);
        h
    }
}

/// Completed-job accounting record (the simulator's `sacct` row).
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The request that produced this record.
    pub request: JobRequest,
    /// Simulation time the job was submitted, seconds.
    pub submit_time: f64,
    /// Simulation time the job started, seconds.
    pub start_time: f64,
    /// Measured (noisy) runtime, seconds.
    pub runtime: f64,
    /// Nodes allocated.
    pub nodes: usize,
    /// Energy estimate from the integrated power trace, Joules; `None` when
    /// the trace failed the sample-count filter.
    pub energy: Option<f64>,
    /// Peak per-node memory, bytes (SLURM MaxRSS analogue).
    pub memory_per_node: f64,
    /// Number of power-trace samples that survived gap injection.
    pub power_samples: usize,
    /// Execution attempts consumed (1 = first try succeeded; >1 means
    /// transient faults were retried away).
    pub attempts: u32,
}

impl JobRecord {
    /// Job end time, seconds.
    pub fn end_time(&self) -> f64 {
        self.start_time + self.runtime
    }

    /// Queue wait time, seconds.
    pub fn wait_time(&self) -> f64 {
        self.start_time - self.submit_time
    }

    /// The paper's cumulative-cost unit: compute seconds x cores
    /// ("total compute time in seconds * number of cores", Section V-B4).
    pub fn cost(&self) -> f64 {
        self.runtime * self.request.np as f64
    }
}

/// A job that exhausted its retry budget — the accounting trace of a
/// failed experiment. The paper charges failed runs against the
/// measurement budget, so the record keeps the compute cost the failure
/// consumed before giving up.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedJob {
    /// The request that failed.
    pub request: JobRequest,
    /// Execution attempts consumed.
    pub attempts: u32,
    /// The fault observed on the final attempt.
    pub fault: crate::fault::Fault,
    /// Compute cost charged for the failed attempts (core-seconds); zero
    /// for faults that never consumed compute (scheduler rejects).
    pub charged_cost: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> JobRequest {
        JobRequest {
            op: OperatorKind::Poisson1,
            size: 1e6,
            np: 32,
            freq: 2.4,
            repeat: 0,
        }
    }

    #[test]
    fn seed_is_deterministic_and_identity_sensitive() {
        let a = req();
        assert_eq!(a.seed(7), a.seed(7));
        assert_ne!(a.seed(7), a.seed(8));
        let mut b = a;
        b.repeat = 1;
        assert_ne!(a.seed(7), b.seed(7));
        let mut c = a;
        c.np = 16;
        assert_ne!(a.seed(7), c.seed(7));
        let mut d = a;
        d.op = OperatorKind::Poisson2;
        assert_ne!(a.seed(7), d.seed(7));
    }

    #[test]
    fn record_derived_quantities() {
        let r = JobRecord {
            request: req(),
            submit_time: 10.0,
            start_time: 25.0,
            runtime: 100.0,
            nodes: 2,
            energy: Some(5e3),
            memory_per_node: 1e9,
            power_samples: 12,
            attempts: 1,
        };
        assert_eq!(r.end_time(), 125.0);
        assert_eq!(r.wait_time(), 15.0);
        assert_eq!(r.cost(), 3200.0);
    }
}
