//! Deterministic fault injection and retry/backoff policy.
//!
//! The paper's measurements come from a real 4-node testbed where jobs
//! genuinely fail: benchmarks crash, the IPMI power daemon drops or
//! corrupts trace records, SLURM rejects submissions, workers hang past
//! their time limit. The simulator makes that failure surface a
//! first-class, *testable* concern instead of a silent pre-scheduling
//! filter:
//!
//! * [`FaultPlan`] — a seeded plan that decides, as a **pure function of
//!   job identity and attempt number**, whether an execution attempt
//!   faults, with which [`FaultKind`], and whether the fault is
//!   [`Persistence::Transient`] (clears on retry) or
//!   [`Persistence::Permanent`] (every retry fails). Because the decision
//!   never touches a shared RNG stream, outcomes are bit-identical
//!   regardless of worker count or queue order — the same property the
//!   executor already guarantees for measurement noise.
//! * [`RetryPolicy`] — bounded exponential backoff with deterministic
//!   jitter. The simulator never sleeps: backoff durations are *simulated*
//!   nanoseconds, accounted per job and assertable to the nanosecond
//!   against a [`alperf_obs::FakeClock`] (see the tests below).
//! * [`apply_trace_fault`] — the power-boundary degradations: a dropout
//!   empties the IPMI trace, a corruption truncates it mid-job (the
//!   sampler daemon died), after which [`crate::power::PowerSampler::integrate`]
//!   degrades gracefully to `None` or a sparser estimate.
//!
//! The taxonomy splits into *fatal* kinds (crash / reject / timeout: the
//! attempt yields no measurement and is retried under the policy) and
//! *degrading* kinds (trace dropout / corruption: the job completes, only
//! its power trace suffers — exactly how the paper loses Energy labels
//! while keeping Runtime).

use crate::power::PowerSample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Failure taxonomy — the ways a testbed job goes wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The benchmark binary crashed (or panicked): no measurement.
    BenchmarkCrash,
    /// The scheduler rejected the submission: no compute was consumed.
    SchedulerReject,
    /// The job exceeded its time limit and was killed: compute was burned.
    WorkerTimeout,
    /// The IPMI power daemon recorded nothing: the job completes but its
    /// trace is empty (Energy is lost, Runtime survives).
    PowerTraceDropout,
    /// The IPMI daemon died mid-job: the trace is truncated (Energy may
    /// survive, degraded, or fall below the record-rate filter).
    PowerTraceCorruption,
}

impl FaultKind {
    /// All kinds, in taxonomy order.
    pub fn all() -> [FaultKind; 5] {
        [
            FaultKind::BenchmarkCrash,
            FaultKind::SchedulerReject,
            FaultKind::WorkerTimeout,
            FaultKind::PowerTraceDropout,
            FaultKind::PowerTraceCorruption,
        ]
    }

    /// Stable lowercase name (used in telemetry records and replay).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::BenchmarkCrash => "crash",
            FaultKind::SchedulerReject => "reject",
            FaultKind::WorkerTimeout => "timeout",
            FaultKind::PowerTraceDropout => "power_dropout",
            FaultKind::PowerTraceCorruption => "power_corrupt",
        }
    }

    /// Parse a [`FaultKind::name`] back (for trace replay).
    pub fn from_name(s: &str) -> Option<FaultKind> {
        FaultKind::all().into_iter().find(|k| k.name() == s)
    }

    /// Fatal kinds abort the attempt (no measurement, retried); degrading
    /// kinds only damage the power trace of an otherwise successful run.
    pub fn is_fatal(&self) -> bool {
        !matches!(
            self,
            FaultKind::PowerTraceDropout | FaultKind::PowerTraceCorruption
        )
    }

    /// Whether a failed attempt of this kind still consumed compute that
    /// must be charged against the experiment budget (the paper charges
    /// failed experiments; a scheduler reject never ran).
    pub fn charges_compute(&self) -> bool {
        !matches!(self, FaultKind::SchedulerReject)
    }
}

/// Whether a fault clears on retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Persistence {
    /// Clears after a bounded number of attempts — a retry can succeed.
    Transient,
    /// Every attempt fails (broken node, impossible configuration).
    Permanent,
}

/// One concrete fault: what went wrong and whether retrying can help.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Taxonomy entry.
    pub kind: FaultKind,
    /// Transient vs. permanent.
    pub persistence: Persistence,
}

impl Fault {
    /// The fault the executor synthesizes when the measurement code itself
    /// panics: a permanent benchmark crash (a deterministic panic would
    /// repeat on every retry, so none are attempted).
    pub fn from_panic() -> Fault {
        Fault {
            kind: FaultKind::BenchmarkCrash,
            persistence: Persistence::Permanent,
        }
    }
}

/// Deterministic avalanche hash of the plan seed, the job identity seed,
/// and a stream discriminator. This is the only entropy source in the
/// module: same inputs, same faults, on any thread in any order.
fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut h = 0x9e3779b97f4a7c15u64 ^ a;
    h = h.wrapping_mul(0x100000001b3);
    h ^= b;
    h = h.wrapping_mul(0x100000001b3);
    h ^= c;
    h = h.wrapping_mul(0x100000001b3);
    // splitmix64 finalizer for avalanche.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// A seeded, per-job-identity deterministic fault plan.
///
/// `fault_for(job_seed, attempt)` is a pure function: it derives a private
/// RNG from `(plan seed, job seed)`, decides once whether the job is
/// faulty at all, picks a kind from the taxonomy mix, and rolls
/// persistence. Transient fatal faults affect the first one or two
/// attempts and then clear; permanent faults affect every attempt;
/// degrading (power-boundary) faults fire exactly once, on the attempt
/// that completes.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Plan seed (independent of the campaign's measurement seed).
    pub seed: u64,
    /// Probability a job is faulty at all.
    pub failure_rate: f64,
    /// Among fatal faults, the fraction that are permanent.
    pub permanent_fraction: f64,
    /// Among transient fatal faults, the probability the fault also kills
    /// the *second* attempt (the rest clear after one retry).
    pub second_attempt_fraction: f64,
}

impl FaultPlan {
    /// A plan with the default taxonomy mix and persistence split.
    pub fn new(seed: u64, failure_rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            failure_rate,
            permanent_fraction: 0.3,
            second_attempt_fraction: 0.35,
        }
    }

    /// A plan that never faults (the zero element: `fault_for` is `None`
    /// for every job and attempt).
    pub fn none() -> FaultPlan {
        FaultPlan::new(0, 0.0)
    }

    /// The fault (if any) afflicting `attempt` (0-based) of the job whose
    /// identity seed is `job_seed` (see [`crate::job::JobRequest::seed`]).
    ///
    /// Pure and thread-independent: bit-identical for the same
    /// `(plan, job_seed, attempt)` triple everywhere.
    pub fn fault_for(&self, job_seed: u64, attempt: u32) -> Option<Fault> {
        if self.failure_rate <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(mix3(self.seed, job_seed, 0xfa01));
        if rng.gen_range(0.0..1.0) >= self.failure_rate {
            return None;
        }
        // Taxonomy mix: crash 30%, reject 15%, timeout 15%, dropout 25%,
        // corruption 15% (roughly the incident mix of a small academic
        // testbed: power-telemetry loss is common, hard job loss rarer).
        let kind = match rng.gen_range(0.0..1.0) {
            u if u < 0.30 => FaultKind::BenchmarkCrash,
            u if u < 0.45 => FaultKind::SchedulerReject,
            u if u < 0.60 => FaultKind::WorkerTimeout,
            u if u < 0.85 => FaultKind::PowerTraceDropout,
            _ => FaultKind::PowerTraceCorruption,
        };
        if !kind.is_fatal() {
            // Degrading faults hit the (single) completing attempt.
            return (attempt == 0).then_some(Fault {
                kind,
                persistence: Persistence::Transient,
            });
        }
        if rng.gen_range(0.0..1.0) < self.permanent_fraction {
            return Some(Fault {
                kind,
                persistence: Persistence::Permanent,
            });
        }
        let affected = if rng.gen_range(0.0..1.0) < self.second_attempt_fraction {
            2
        } else {
            1
        };
        (attempt < affected).then_some(Fault {
            kind,
            persistence: Persistence::Transient,
        })
    }
}

/// Bounded exponential backoff with deterministic jitter.
///
/// `backoff_ns(job_seed, retry)` is the simulated wait before retry number
/// `retry` (1-based): `base * multiplier^(retry-1)`, capped at
/// `max_backoff_ns`, then scaled by a jitter factor drawn uniformly from
/// `[1 - jitter, 1 + jitter)` using a hash of `(job_seed, retry)` — so the
/// schedule is exponential-with-jitter *and* reproducible. No wall-clock
/// is ever consulted: tests drive a [`alperf_obs::FakeClock`] by exactly
/// these durations.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum execution attempts per job (1 = no retries).
    pub max_attempts: u32,
    /// Base backoff before the first retry, simulated nanoseconds.
    pub base_backoff_ns: u64,
    /// Exponential growth factor between consecutive retries.
    pub multiplier: f64,
    /// Hard cap on a single backoff, simulated nanoseconds.
    pub max_backoff_ns: u64,
    /// Jitter half-width as a fraction of the capped backoff (0.2 means
    /// the realized wait is within ±20% of the nominal schedule).
    pub jitter: f64,
}

impl Default for RetryPolicy {
    /// 3 attempts, 100 ms base, doubling, 5 s cap, ±20% jitter.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ns: 100_000_000,
            multiplier: 2.0,
            max_backoff_ns: 5_000_000_000,
            jitter: 0.2,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (jobs get exactly one attempt).
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Simulated backoff before retry `retry` (1-based) of the job with
    /// identity seed `job_seed`. Deterministic; see the type docs for the
    /// formula.
    pub fn backoff_ns(&self, job_seed: u64, retry: u32) -> u64 {
        let exp =
            self.base_backoff_ns as f64 * self.multiplier.powi(retry.saturating_sub(1) as i32);
        let capped = exp.min(self.max_backoff_ns as f64);
        let mut rng = StdRng::seed_from_u64(mix3(0xbac0ff, job_seed, retry as u64));
        let factor = 1.0 + self.jitter * (rng.gen_range(0.0..2.0) - 1.0);
        (capped * factor).round() as u64
    }

    /// The full backoff schedule a job would traverse if every attempt
    /// failed: one entry per retry, `max_attempts - 1` entries total.
    pub fn schedule(&self, job_seed: u64) -> Vec<u64> {
        (1..self.max_attempts.max(1))
            .map(|r| self.backoff_ns(job_seed, r))
            .collect()
    }
}

/// Apply a power-boundary fault to a sampled IPMI trace, in place.
/// Deterministic in `(kind, job_seed)`; fatal kinds are a no-op (they
/// never produce a trace to damage).
pub fn apply_trace_fault(kind: FaultKind, trace: &mut Vec<PowerSample>, job_seed: u64) {
    match kind {
        FaultKind::PowerTraceDropout => trace.clear(),
        FaultKind::PowerTraceCorruption => {
            // The sampler daemon died partway through: keep a deterministic
            // 20–80% prefix of the samples.
            let mut rng = StdRng::seed_from_u64(mix3(0xc0bb, job_seed, 0));
            let frac = rng.gen_range(0.2..0.8);
            let keep = ((trace.len() as f64) * frac).floor() as usize;
            trace.truncate(keep);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_obs::{Clock, FakeClock};

    #[test]
    fn fault_for_is_deterministic_and_identity_local() {
        let plan = FaultPlan::new(7, 0.5);
        for job in 0..200u64 {
            for attempt in 0..4 {
                assert_eq!(
                    plan.fault_for(job, attempt),
                    plan.fault_for(job, attempt),
                    "job {job} attempt {attempt}"
                );
            }
        }
        // Different plan seeds produce different fault sets.
        let other = FaultPlan::new(8, 0.5);
        let a: Vec<bool> = (0..200u64)
            .map(|j| plan.fault_for(j, 0).is_some())
            .collect();
        let b: Vec<bool> = (0..200u64)
            .map(|j| other.fault_for(j, 0).is_some())
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn failure_rate_is_respected() {
        let plan = FaultPlan::new(3, 0.2);
        let n = 5000u64;
        let faulty = (0..n).filter(|&j| plan.fault_for(j, 0).is_some()).count();
        let rate = faulty as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.03, "observed rate {rate}");
        assert!(FaultPlan::none().fault_for(42, 0).is_none());
        // Rate 1.0 faults everything.
        let all = FaultPlan::new(3, 1.0);
        assert!((0..100u64).all(|j| all.fault_for(j, 0).is_some()));
    }

    #[test]
    fn transient_faults_clear_and_permanent_faults_do_not() {
        let plan = FaultPlan::new(11, 0.9);
        let mut saw_transient_clear = false;
        let mut saw_permanent = false;
        for job in 0..500u64 {
            let Some(f) = plan.fault_for(job, 0) else {
                continue;
            };
            if !f.kind.is_fatal() {
                // Degrading faults never afflict retries.
                assert!(plan.fault_for(job, 1).is_none());
                continue;
            }
            match f.persistence {
                Persistence::Permanent => {
                    saw_permanent = true;
                    for attempt in 1..6 {
                        assert_eq!(plan.fault_for(job, attempt), Some(f));
                    }
                }
                Persistence::Transient => {
                    // Clears within two attempts by construction.
                    if plan.fault_for(job, 1).is_none() || plan.fault_for(job, 2).is_none() {
                        saw_transient_clear = true;
                    }
                    assert!(plan.fault_for(job, 2).is_none());
                }
            }
        }
        assert!(saw_transient_clear, "no transient fault cleared");
        assert!(saw_permanent, "no permanent fault sampled");
    }

    #[test]
    fn taxonomy_covers_all_kinds_and_round_trips_names() {
        let plan = FaultPlan::new(5, 1.0);
        let mut seen = std::collections::HashSet::new();
        for job in 0..2000u64 {
            if let Some(f) = plan.fault_for(job, 0) {
                seen.insert(f.kind);
            }
        }
        assert_eq!(seen.len(), 5, "taxonomy mix missed a kind: {seen:?}");
        for kind in FaultKind::all() {
            assert_eq!(FaultKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(FaultKind::from_name("nonsense"), None);
    }

    #[test]
    fn backoff_schedule_is_exponential_with_jitter_under_fake_clock() {
        // The contract, verified to the nanosecond on a FakeClock with an
        // independent re-derivation of the formula: nominal
        // base * multiplier^(k-1) capped at max, jittered within ±jitter
        // by the documented (job_seed, retry) hash.
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff_ns: 100_000_000,
            multiplier: 2.0,
            max_backoff_ns: 1_000_000_000,
            jitter: 0.2,
        };
        let job_seed = 0xdead_beef;
        let clock = FakeClock::new();
        let schedule = policy.schedule(job_seed);
        assert_eq!(schedule.len(), 5);
        let mut expected_total = 0u64;
        for (i, &wait) in schedule.iter().enumerate() {
            let retry = (i + 1) as u32;
            // Independent expectation: formula recomputed from scratch.
            let nominal = (100_000_000f64 * 2f64.powi(i as i32)).min(1_000_000_000f64);
            let mut rng = StdRng::seed_from_u64(mix3(0xbac0ff, job_seed, retry as u64));
            let factor = 1.0 + 0.2 * (rng.gen_range(0.0..2.0) - 1.0);
            let expected = (nominal * factor).round() as u64;
            assert_eq!(wait, expected, "retry {retry}");
            // Jitter bounds around the capped nominal.
            assert!(wait as f64 >= nominal * 0.8 - 1.0 && wait as f64 <= nominal * 1.2 + 1.0);
            clock.advance(wait);
            expected_total += wait;
        }
        // The FakeClock accumulated exactly the schedule — zero wall-clock.
        assert_eq!(clock.now_ns(), expected_total);
        // Exponential growth up to the cap: retries 4 and 5 are both capped
        // (nominal 800ms then 1.6s -> 1s), so only jitter separates them.
        assert!(schedule[1] > schedule[0] && schedule[2] > schedule[1]);
        assert!(schedule[4] as f64 <= 1_000_000_000.0 * 1.2 + 1.0);
        // Deterministic: same seed, same schedule; different seed differs.
        assert_eq!(policy.schedule(job_seed), schedule);
        assert_ne!(policy.schedule(job_seed ^ 1), schedule);
    }

    #[test]
    fn trace_faults_degrade_deterministically() {
        let mk = |n: usize| -> Vec<PowerSample> {
            (0..n)
                .map(|i| PowerSample {
                    t: i as f64,
                    watts: 200.0,
                })
                .collect()
        };
        let mut a = mk(100);
        apply_trace_fault(FaultKind::PowerTraceDropout, &mut a, 9);
        assert!(a.is_empty());
        let mut b = mk(100);
        let mut c = mk(100);
        apply_trace_fault(FaultKind::PowerTraceCorruption, &mut b, 9);
        apply_trace_fault(FaultKind::PowerTraceCorruption, &mut c, 9);
        assert_eq!(b, c, "corruption must be deterministic");
        assert!(b.len() >= 20 && b.len() <= 80, "kept {}", b.len());
        // Fatal kinds leave the trace alone.
        let mut d = mk(10);
        apply_trace_fault(FaultKind::BenchmarkCrash, &mut d, 9);
        assert_eq!(d.len(), 10);
    }
}
