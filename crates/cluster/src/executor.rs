//! Concurrent measurement executor.
//!
//! Sampling a runtime and a full power trace for thousands of jobs is
//! embarrassingly parallel; this module fans the work out over a crossbeam
//! scoped worker pool, with a `parking_lot`-protected collection of
//! results. Every job derives its RNG seed from its own identity
//! ([`crate::job::JobRequest::seed`]), so the measurement a job receives is
//! bit-identical no matter which worker runs it or in what order — the
//! simulation is deterministic despite the concurrency.

use crate::job::JobRequest;
use crate::power::{PowerSample, PowerSampler};
use alperf_hpgmg::model::PerfModel;
use alperf_obs::{Clock, SystemClock};
use crossbeam::channel;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One measured job: sampled runtime, per-node memory, and power trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Index of the request within the batch.
    pub idx: usize,
    /// Sampled (noisy) runtime, seconds.
    pub runtime: f64,
    /// Sampled peak per-node memory, bytes (SLURM's MaxRSS analogue).
    pub memory_per_node: f64,
    /// IPMI-style power trace over the job's execution.
    pub trace: Vec<PowerSample>,
}

/// Measure every job in `requests` concurrently on `workers` threads.
/// Results are returned in request order.
pub fn measure_all(
    model: &PerfModel,
    sampler: &PowerSampler,
    requests: &[JobRequest],
    campaign_seed: u64,
    workers: usize,
) -> Vec<Measurement> {
    let _span = alperf_obs::span("cluster.measure_batch");
    alperf_obs::add("cluster.jobs", requests.len() as u64);
    let workers = workers.max(1);
    let (tx, rx) = channel::unbounded::<usize>();
    for idx in 0..requests.len() {
        tx.send(idx).expect("queue send");
    }
    drop(tx);
    let results: Mutex<Vec<Option<Measurement>>> = Mutex::new(vec![None; requests.len()]);
    crossbeam::scope(|s| {
        for _ in 0..workers {
            let rx = rx.clone();
            let results = &results;
            s.spawn(move |_| {
                while let Ok(idx) = rx.recv() {
                    let m = measure_one(model, sampler, &requests[idx], idx, campaign_seed);
                    results.lock()[idx] = Some(m);
                }
            });
        }
    })
    .expect("worker pool panicked");
    results
        .into_inner()
        .into_iter()
        .map(|m| m.expect("every job measured"))
        .collect()
}

/// Measure a single job with its identity-derived RNG.
///
/// When telemetry is enabled the measurement is timed through the shared
/// [`SystemClock`] and recorded to the `cluster.measure_job` histogram;
/// when disabled no clock is read at all. Tests that need deterministic
/// wall-clock durations call [`measure_one_timed`] with a
/// [`alperf_obs::FakeClock`] instead.
pub fn measure_one(
    model: &PerfModel,
    sampler: &PowerSampler,
    request: &JobRequest,
    idx: usize,
    campaign_seed: u64,
) -> Measurement {
    if alperf_obs::enabled() {
        let (m, dur_ns) =
            measure_one_timed(&SystemClock, model, sampler, request, idx, campaign_seed);
        alperf_obs::histogram("cluster.measure_job").record(dur_ns);
        m
    } else {
        measure_one_untimed(model, sampler, request, idx, campaign_seed)
    }
}

/// [`measure_one`] with an injected [`Clock`]: always times the measurement
/// through `clock` and returns `(measurement, wall_ns)`. The measurement
/// itself is a pure function of the request identity — the clock only
/// observes, so the returned `Measurement` is identical to
/// [`measure_one`]'s for the same inputs.
pub fn measure_one_timed(
    clock: &dyn Clock,
    model: &PerfModel,
    sampler: &PowerSampler,
    request: &JobRequest,
    idx: usize,
    campaign_seed: u64,
) -> (Measurement, u64) {
    let start = clock.now_ns();
    let m = measure_one_untimed(model, sampler, request, idx, campaign_seed);
    (m, clock.now_ns().saturating_sub(start))
}

fn measure_one_untimed(
    model: &PerfModel,
    sampler: &PowerSampler,
    request: &JobRequest,
    idx: usize,
    campaign_seed: u64,
) -> Measurement {
    let mut rng = StdRng::seed_from_u64(request.seed(campaign_seed));
    let runtime =
        model.sample_runtime(request.op, request.size, request.np, request.freq, &mut rng);
    let memory_per_node = model.sample_memory_per_node(request.size, request.np, &mut rng);
    let watts = model.power_mean(request.np, request.freq);
    let trace = sampler.sample_trace(runtime, watts, &mut rng);
    Measurement {
        idx,
        runtime,
        memory_per_node,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_hpgmg::operator::OperatorKind;

    fn requests(n: usize) -> Vec<JobRequest> {
        (0..n)
            .map(|i| JobRequest {
                op: OperatorKind::all()[i % 3],
                size: 1e5 * (1.0 + i as f64),
                np: [1, 8, 32, 64][i % 4],
                freq: [1.2, 1.8, 2.4][i % 3],
                repeat: i % 3,
            })
            .collect()
    }

    #[test]
    fn parallel_equals_serial() {
        let model = PerfModel::calibrated();
        let sampler = PowerSampler::default();
        let reqs = requests(40);
        let par = measure_all(&model, &sampler, &reqs, 9, 8);
        let ser = measure_all(&model, &sampler, &reqs, 9, 1);
        assert_eq!(par, ser);
    }

    #[test]
    fn results_in_request_order() {
        let model = PerfModel::calibrated();
        let sampler = PowerSampler::default();
        let reqs = requests(10);
        let out = measure_all(&model, &sampler, &reqs, 0, 4);
        for (i, m) in out.iter().enumerate() {
            assert_eq!(m.idx, i);
        }
    }

    #[test]
    fn repeats_get_different_noise() {
        let model = PerfModel::calibrated();
        let sampler = PowerSampler::default();
        let a = JobRequest {
            op: OperatorKind::Poisson1,
            size: 1e7,
            np: 16,
            freq: 2.4,
            repeat: 0,
        };
        let b = JobRequest { repeat: 1, ..a };
        let ma = measure_one(&model, &sampler, &a, 0, 1);
        let mb = measure_one(&model, &sampler, &b, 1, 1);
        assert_ne!(ma.runtime, mb.runtime);
        // Both close to the model mean.
        let mean = model.runtime_mean(a.op, a.size, a.np, a.freq);
        assert!((ma.runtime - mean).abs() / mean < 0.2);
        assert!((mb.runtime - mean).abs() / mean < 0.2);
    }

    #[test]
    fn campaign_seed_changes_measurements() {
        let model = PerfModel::calibrated();
        let sampler = PowerSampler::default();
        let reqs = requests(5);
        let a = measure_all(&model, &sampler, &reqs, 1, 2);
        let b = measure_all(&model, &sampler, &reqs, 2, 2);
        assert_ne!(a[0].runtime, b[0].runtime);
    }

    #[test]
    fn injected_clock_times_measurement_deterministically() {
        // The wall-clock is routed through the Clock trait so tests can
        // inject a fake: two reads of a FakeClock stepping 5 ms apart must
        // yield exactly 5 ms, and the measurement must be bit-identical to
        // the untimed path (the clock observes, never perturbs).
        let model = PerfModel::calibrated();
        let sampler = PowerSampler::default();
        let req = requests(1).pop().unwrap();
        let clock = alperf_obs::FakeClock::with_step(5_000_000);
        let (timed, dur_ns) = measure_one_timed(&clock, &model, &sampler, &req, 0, 3);
        assert_eq!(dur_ns, 5_000_000);
        let plain = measure_one(&model, &sampler, &req, 0, 3);
        assert_eq!(timed, plain);
    }

    #[test]
    fn empty_batch_is_fine() {
        let model = PerfModel::calibrated();
        let sampler = PowerSampler::default();
        let out = measure_all(&model, &sampler, &[], 0, 4);
        assert!(out.is_empty());
    }
}
