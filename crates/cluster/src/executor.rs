//! Concurrent measurement executor with fault injection and retry.
//!
//! Sampling a runtime and a full power trace for thousands of jobs is
//! embarrassingly parallel; this module fans the work out over a crossbeam
//! scoped worker pool, with a `parking_lot`-protected collection of
//! results. Every job derives its RNG seed from its own identity
//! ([`crate::job::JobRequest::seed`]), so the measurement a job receives is
//! bit-identical no matter which worker runs it or in what order — the
//! simulation is deterministic despite the concurrency.
//!
//! The same identity seed drives the [`crate::fault`] layer: when a
//! [`FaultPlan`] is supplied, each execution attempt may fault, fatal
//! faults are retried under a [`RetryPolicy`] with simulated
//! exponential-backoff accounting, and jobs that exhaust their attempts
//! come back as [`JobOutcome::Failed`] instead of aborting the batch.
//! Worker panics are caught per attempt and surface as a permanent
//! [`FaultKind::BenchmarkCrash`] on that job alone — one poisoned job can
//! no longer take down a whole campaign.

use crate::fault::{apply_trace_fault, Fault, FaultPlan, RetryPolicy};
use crate::job::JobRequest;
use crate::power::{PowerSample, PowerSampler};
use alperf_hpgmg::model::PerfModel;
use alperf_obs::names;
use alperf_obs::{Clock, SpanCtx, SystemClock, Value};
use crossbeam::channel;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One measured job: sampled runtime, per-node memory, and power trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Index of the request within the batch.
    pub idx: usize,
    /// Sampled (noisy) runtime, seconds.
    pub runtime: f64,
    /// Sampled peak per-node memory, bytes (SLURM's MaxRSS analogue).
    pub memory_per_node: f64,
    /// IPMI-style power trace over the job's execution.
    pub trace: Vec<PowerSample>,
}

/// The terminal state of one job after fault injection and retries.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The job produced a measurement (possibly with a degraded power
    /// trace, and possibly after retries).
    Ok {
        /// The measurement (trace may be empty/truncated under a
        /// power-boundary fault).
        measurement: Measurement,
        /// Execution attempts consumed, including the successful one.
        attempts: u32,
        /// Total simulated backoff waited across retries, nanoseconds.
        backoff_ns: u64,
    },
    /// The job exhausted its retry budget (or crashed permanently).
    Failed {
        /// Index of the request within the batch.
        idx: usize,
        /// Execution attempts consumed.
        attempts: u32,
        /// The fault observed on the final attempt.
        fault: Fault,
        /// Total simulated backoff waited across retries, nanoseconds.
        backoff_ns: u64,
    },
}

impl JobOutcome {
    /// The batch index of the underlying request.
    pub fn idx(&self) -> usize {
        match self {
            JobOutcome::Ok { measurement, .. } => measurement.idx,
            JobOutcome::Failed { idx, .. } => *idx,
        }
    }

    /// Attempts consumed (≥ 1 in every outcome).
    pub fn attempts(&self) -> u32 {
        match self {
            JobOutcome::Ok { attempts, .. } | JobOutcome::Failed { attempts, .. } => *attempts,
        }
    }

    /// The measurement, if the job succeeded.
    pub fn measurement(&self) -> Option<&Measurement> {
        match self {
            JobOutcome::Ok { measurement, .. } => Some(measurement),
            JobOutcome::Failed { .. } => None,
        }
    }

    /// Consume into the measurement, if the job succeeded.
    pub fn into_measurement(self) -> Option<Measurement> {
        match self {
            JobOutcome::Ok { measurement, .. } => Some(measurement),
            JobOutcome::Failed { .. } => None,
        }
    }

    /// Did the job fail terminally?
    pub fn is_failed(&self) -> bool {
        matches!(self, JobOutcome::Failed { .. })
    }
}

/// Infrastructure-level executor failure (distinct from per-job faults,
/// which are data: [`JobOutcome::Failed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A worker thread died outside the per-attempt panic guard — an
    /// executor bug, not a job fault.
    WorkerPanic(String),
    /// The work queue disconnected before all jobs were enqueued.
    QueueDisconnected,
    /// A job produced no outcome (worker loop bug).
    MissingResult {
        /// Index of the request that was never resolved.
        idx: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::WorkerPanic(msg) => write!(f, "worker pool panicked: {msg}"),
            ExecError::QueueDisconnected => write!(f, "work queue disconnected"),
            ExecError::MissingResult { idx } => write!(f, "job {idx} produced no outcome"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Child counter for the `{fault_kind}`-labeled injected-fault family.
/// Faults are rare events, so the per-fault family lookup (a read-lock +
/// map probe) is fine here — no handle caching needed.
fn fault_kind_counter(kind: &str) -> std::sync::Arc<alperf_obs::Counter> {
    alperf_obs::counter_vec(names::CLUSTER_FAULTS_BY_KIND, &[names::LABEL_FAULT_KIND]).with(&[kind])
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Measure every job in `requests` concurrently on `workers` threads,
/// injecting faults from `faults` (if any) and retrying fatal faults under
/// `retry`. Outcomes are returned in request order and are bit-identical
/// for the same `(requests, campaign_seed, faults, retry)` regardless of
/// worker count or queue order — every per-job decision derives from the
/// job's identity seed, never from shared state.
pub fn measure_all(
    model: &PerfModel,
    sampler: &PowerSampler,
    requests: &[JobRequest],
    campaign_seed: u64,
    workers: usize,
    faults: Option<&FaultPlan>,
    retry: &RetryPolicy,
) -> Result<Vec<JobOutcome>, ExecError> {
    let _span = alperf_obs::span(names::CLUSTER_MEASURE_BATCH);
    alperf_obs::add("cluster.jobs", requests.len() as u64);
    // Capture the batch span before crossing thread boundaries so retry /
    // failure spans emitted on workers attach under it.
    let batch_ctx = alperf_obs::current_span();
    let workers = workers.max(1);
    let (tx, rx) = channel::unbounded::<usize>();
    for idx in 0..requests.len() {
        if tx.send(idx).is_err() {
            return Err(ExecError::QueueDisconnected);
        }
    }
    drop(tx);
    let results: Mutex<Vec<Option<JobOutcome>>> = Mutex::new(vec![None; requests.len()]);
    crossbeam::scope(|s| {
        for _ in 0..workers {
            let rx = rx.clone();
            let results = &results;
            s.spawn(move |_| {
                while let Ok(idx) = rx.recv() {
                    let out = measure_job(
                        model,
                        sampler,
                        &requests[idx],
                        idx,
                        campaign_seed,
                        faults,
                        retry,
                        batch_ctx,
                    );
                    results.lock()[idx] = Some(out);
                }
            });
        }
    })
    .map_err(|p| {
        // Flight-recorder dump on the terminal failure path: capture what
        // every thread was doing when the pool died (no-op unless armed).
        alperf_obs::blackbox::dump_on_fault("cluster.worker_panic");
        ExecError::WorkerPanic(panic_message(p))
    })?;
    results
        .into_inner()
        .into_iter()
        .enumerate()
        .map(|(idx, m)| {
            m.ok_or_else(|| {
                alperf_obs::blackbox::dump_on_fault("cluster.missing_result");
                ExecError::MissingResult { idx }
            })
        })
        .collect()
}

/// Fault-free convenience wrapper: measure every job with no fault plan
/// and unwrap the outcomes to plain [`Measurement`]s. Without injected
/// faults the only possible failure is an internal panic, which is
/// propagated as [`ExecError::WorkerPanic`].
pub fn measure_all_ok(
    model: &PerfModel,
    sampler: &PowerSampler,
    requests: &[JobRequest],
    campaign_seed: u64,
    workers: usize,
) -> Result<Vec<Measurement>, ExecError> {
    measure_all(
        model,
        sampler,
        requests,
        campaign_seed,
        workers,
        None,
        &RetryPolicy::no_retries(),
    )?
    .into_iter()
    .map(|o| match o {
        JobOutcome::Ok { measurement, .. } => Ok(measurement),
        JobOutcome::Failed { idx, fault, .. } => Err(ExecError::WorkerPanic(format!(
            "job {idx} failed without a fault plan: {fault:?}"
        ))),
    })
    .collect()
}

/// Run one measurement attempt, converting a panic in the measurement
/// code into an error message instead of unwinding through the pool.
fn run_attempt(f: impl FnOnce() -> Measurement) -> Result<Measurement, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(panic_message)
}

/// Drive one job through its fault/retry lifecycle. Pure in everything
/// that reaches the returned outcome: faults and backoffs derive from the
/// job's identity seed, and telemetry only observes.
#[allow(clippy::too_many_arguments)]
fn measure_job(
    model: &PerfModel,
    sampler: &PowerSampler,
    request: &JobRequest,
    idx: usize,
    campaign_seed: u64,
    faults: Option<&FaultPlan>,
    retry: &RetryPolicy,
    batch_ctx: Option<SpanCtx>,
) -> JobOutcome {
    let job_seed = request.seed(campaign_seed);
    let max_attempts = retry.max_attempts.max(1);
    let mut backoff_ns = 0u64;
    for attempt in 0..max_attempts {
        let fault = faults.and_then(|p| p.fault_for(job_seed, attempt));
        match fault {
            Some(f) if f.kind.is_fatal() => {
                if attempt + 1 < max_attempts {
                    let wait = retry.backoff_ns(job_seed, attempt + 1);
                    backoff_ns += wait;
                    if alperf_obs::enabled() {
                        let _s = alperf_obs::span_with_parent(names::CLUSTER_RETRY, batch_ctx);
                        alperf_obs::inc(names::CLUSTER_RETRY);
                        fault_kind_counter(f.kind.name()).inc();
                        alperf_obs::record(
                            names::CLUSTER_RETRY,
                            &[
                                ("idx", Value::U64(idx as u64)),
                                ("attempt", Value::U64((attempt + 1) as u64)),
                                ("kind", Value::Str(f.kind.name())),
                                ("backoff_ns", Value::U64(wait)),
                            ],
                        );
                    }
                } else {
                    emit_failed(idx, max_attempts, f, backoff_ns, batch_ctx);
                    return JobOutcome::Failed {
                        idx,
                        attempts: max_attempts,
                        fault: f,
                        backoff_ns,
                    };
                }
            }
            other => {
                // No fault, or a power-boundary degradation: the job runs.
                let run = run_attempt(|| measure_one(model, sampler, request, idx, campaign_seed));
                match run {
                    Ok(mut measurement) => {
                        if let Some(f) = other {
                            apply_trace_fault(f.kind, &mut measurement.trace, job_seed);
                            if alperf_obs::enabled() {
                                fault_kind_counter(f.kind.name()).inc();
                            }
                            match f.kind {
                                crate::fault::FaultKind::PowerTraceDropout => {
                                    alperf_obs::inc(names::CLUSTER_POWER_DROPOUT)
                                }
                                crate::fault::FaultKind::PowerTraceCorruption => {
                                    alperf_obs::inc(names::CLUSTER_POWER_CORRUPT)
                                }
                                _ => {}
                            }
                        }
                        return JobOutcome::Ok {
                            measurement,
                            attempts: attempt + 1,
                            backoff_ns,
                        };
                    }
                    Err(_msg) => {
                        // A deterministic panic would repeat on every
                        // retry: classify as a permanent crash and stop.
                        let fault = Fault::from_panic();
                        emit_failed(idx, attempt + 1, fault, backoff_ns, batch_ctx);
                        return JobOutcome::Failed {
                            idx,
                            attempts: attempt + 1,
                            fault,
                            backoff_ns,
                        };
                    }
                }
            }
        }
    }
    unreachable!("retry loop always returns before exhausting max_attempts");
}

fn emit_failed(
    idx: usize,
    attempts: u32,
    fault: Fault,
    backoff_ns: u64,
    batch_ctx: Option<SpanCtx>,
) {
    if !alperf_obs::enabled() {
        return;
    }
    let _s = alperf_obs::span_with_parent(names::CLUSTER_FAILED, batch_ctx);
    alperf_obs::inc(names::CLUSTER_FAILED);
    fault_kind_counter(fault.kind.name()).inc();
    alperf_obs::record(
        names::CLUSTER_FAILED,
        &[
            ("idx", Value::U64(idx as u64)),
            ("attempts", Value::U64(attempts as u64)),
            ("kind", Value::Str(fault.kind.name())),
            (
                "persistence",
                Value::Str(match fault.persistence {
                    crate::fault::Persistence::Permanent => "permanent",
                    crate::fault::Persistence::Transient => "transient",
                }),
            ),
            ("backoff_ns", Value::U64(backoff_ns)),
        ],
    );
}

/// Measure a single job with its identity-derived RNG.
///
/// When telemetry is enabled the measurement is timed through the shared
/// [`SystemClock`] and recorded to the `cluster.measure_job` histogram;
/// when disabled no clock is read at all. Tests that need deterministic
/// wall-clock durations call [`measure_one_timed`] with a
/// [`alperf_obs::FakeClock`] instead.
pub fn measure_one(
    model: &PerfModel,
    sampler: &PowerSampler,
    request: &JobRequest,
    idx: usize,
    campaign_seed: u64,
) -> Measurement {
    if alperf_obs::enabled() {
        let (m, dur_ns) =
            measure_one_timed(&SystemClock, model, sampler, request, idx, campaign_seed);
        alperf_obs::histogram("cluster.measure_job").record(dur_ns);
        m
    } else {
        measure_one_untimed(model, sampler, request, idx, campaign_seed)
    }
}

/// [`measure_one`] with an injected [`Clock`]: always times the measurement
/// through `clock` and returns `(measurement, wall_ns)`. The measurement
/// itself is a pure function of the request identity — the clock only
/// observes, so the returned `Measurement` is identical to
/// [`measure_one`]'s for the same inputs.
pub fn measure_one_timed(
    clock: &dyn Clock,
    model: &PerfModel,
    sampler: &PowerSampler,
    request: &JobRequest,
    idx: usize,
    campaign_seed: u64,
) -> (Measurement, u64) {
    let start = clock.now_ns();
    let m = measure_one_untimed(model, sampler, request, idx, campaign_seed);
    (m, clock.now_ns().saturating_sub(start))
}

fn measure_one_untimed(
    model: &PerfModel,
    sampler: &PowerSampler,
    request: &JobRequest,
    idx: usize,
    campaign_seed: u64,
) -> Measurement {
    let mut rng = StdRng::seed_from_u64(request.seed(campaign_seed));
    let runtime =
        model.sample_runtime(request.op, request.size, request.np, request.freq, &mut rng);
    let memory_per_node = model.sample_memory_per_node(request.size, request.np, &mut rng);
    let watts = model.power_mean(request.np, request.freq);
    let trace = sampler.sample_trace(runtime, watts, &mut rng);
    Measurement {
        idx,
        runtime,
        memory_per_node,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use alperf_hpgmg::operator::OperatorKind;

    fn requests(n: usize) -> Vec<JobRequest> {
        (0..n)
            .map(|i| JobRequest {
                op: OperatorKind::all()[i % 3],
                size: 1e5 * (1.0 + i as f64),
                np: [1, 8, 32, 64][i % 4],
                freq: [1.2, 1.8, 2.4][i % 3],
                repeat: i % 3,
            })
            .collect()
    }

    #[test]
    fn parallel_equals_serial() {
        let model = PerfModel::calibrated();
        let sampler = PowerSampler::default();
        let reqs = requests(40);
        let par = measure_all_ok(&model, &sampler, &reqs, 9, 8).unwrap();
        let ser = measure_all_ok(&model, &sampler, &reqs, 9, 1).unwrap();
        assert_eq!(par, ser);
    }

    #[test]
    fn results_in_request_order() {
        let model = PerfModel::calibrated();
        let sampler = PowerSampler::default();
        let reqs = requests(10);
        let out = measure_all_ok(&model, &sampler, &reqs, 0, 4).unwrap();
        for (i, m) in out.iter().enumerate() {
            assert_eq!(m.idx, i);
        }
    }

    #[test]
    fn repeats_get_different_noise() {
        let model = PerfModel::calibrated();
        let sampler = PowerSampler::default();
        let a = JobRequest {
            op: OperatorKind::Poisson1,
            size: 1e7,
            np: 16,
            freq: 2.4,
            repeat: 0,
        };
        let b = JobRequest { repeat: 1, ..a };
        let ma = measure_one(&model, &sampler, &a, 0, 1);
        let mb = measure_one(&model, &sampler, &b, 1, 1);
        assert_ne!(ma.runtime, mb.runtime);
        // Both close to the model mean.
        let mean = model.runtime_mean(a.op, a.size, a.np, a.freq);
        assert!((ma.runtime - mean).abs() / mean < 0.2);
        assert!((mb.runtime - mean).abs() / mean < 0.2);
    }

    #[test]
    fn campaign_seed_changes_measurements() {
        let model = PerfModel::calibrated();
        let sampler = PowerSampler::default();
        let reqs = requests(5);
        let a = measure_all_ok(&model, &sampler, &reqs, 1, 2).unwrap();
        let b = measure_all_ok(&model, &sampler, &reqs, 2, 2).unwrap();
        assert_ne!(a[0].runtime, b[0].runtime);
    }

    #[test]
    fn injected_clock_times_measurement_deterministically() {
        // The wall-clock is routed through the Clock trait so tests can
        // inject a fake: two reads of a FakeClock stepping 5 ms apart must
        // yield exactly 5 ms, and the measurement must be bit-identical to
        // the untimed path (the clock observes, never perturbs).
        let model = PerfModel::calibrated();
        let sampler = PowerSampler::default();
        let req = requests(1).pop().unwrap();
        let clock = alperf_obs::FakeClock::with_step(5_000_000);
        let (timed, dur_ns) = measure_one_timed(&clock, &model, &sampler, &req, 0, 3);
        assert_eq!(dur_ns, 5_000_000);
        let plain = measure_one(&model, &sampler, &req, 0, 3);
        assert_eq!(timed, plain);
    }

    #[test]
    fn empty_batch_is_fine() {
        let model = PerfModel::calibrated();
        let sampler = PowerSampler::default();
        let out = measure_all_ok(&model, &sampler, &[], 0, 4).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn faulted_batch_mixes_ok_degraded_and_failed() {
        let model = PerfModel::calibrated();
        let sampler = PowerSampler::default();
        let reqs = requests(120);
        let plan = FaultPlan::new(17, 0.5);
        let retry = RetryPolicy::default();
        let out = measure_all(&model, &sampler, &reqs, 9, 4, Some(&plan), &retry).unwrap();
        assert_eq!(out.len(), reqs.len());
        let failed = out.iter().filter(|o| o.is_failed()).count();
        let retried = out
            .iter()
            .filter(|o| !o.is_failed() && o.attempts() > 1)
            .count();
        let degraded = out
            .iter()
            .filter_map(|o| o.measurement())
            .filter(|m| m.trace.is_empty())
            .count();
        assert!(failed > 0, "rate 0.5 over 120 jobs must fail some");
        assert!(retried > 0, "transient faults must recover via retry");
        assert!(degraded > 0, "dropouts must empty some traces");
        // Every outcome is well-formed: attempts within budget, failures
        // carry fatal kinds, backoff only ever accompanies retries.
        for o in &out {
            assert!(o.attempts() >= 1 && o.attempts() <= retry.max_attempts);
            match o {
                JobOutcome::Failed { fault, .. } => assert!(fault.kind.is_fatal()),
                JobOutcome::Ok {
                    attempts,
                    backoff_ns,
                    ..
                } => {
                    if *attempts == 1 {
                        assert_eq!(*backoff_ns, 0);
                    } else {
                        assert!(*backoff_ns > 0);
                    }
                }
            }
        }
    }

    #[test]
    fn chaos_outcomes_identical_across_worker_counts() {
        let model = PerfModel::calibrated();
        let sampler = PowerSampler::default();
        let reqs = requests(60);
        let plan = FaultPlan::new(5, 0.3);
        let retry = RetryPolicy::default();
        let base = measure_all(&model, &sampler, &reqs, 3, 1, Some(&plan), &retry).unwrap();
        for workers in [2, 8] {
            let out =
                measure_all(&model, &sampler, &reqs, 3, workers, Some(&plan), &retry).unwrap();
            assert_eq!(out, base, "workers={workers}");
        }
    }

    #[test]
    fn panic_in_measurement_becomes_failed_outcome() {
        // The per-attempt guard converts a panic into an error message.
        let err = run_attempt(|| panic!("boom")).unwrap_err();
        assert!(err.contains("boom"));
        let m = run_attempt(|| Measurement {
            idx: 0,
            runtime: 1.0,
            memory_per_node: 1.0,
            trace: vec![],
        });
        assert!(m.is_ok());
        // And a synthesized panic fault is a permanent crash.
        let f = Fault::from_panic();
        assert_eq!(f.kind, FaultKind::BenchmarkCrash);
        assert!(f.kind.is_fatal() && f.kind.charges_compute());
    }

    #[test]
    fn no_retries_policy_fails_fast() {
        let model = PerfModel::calibrated();
        let sampler = PowerSampler::default();
        let reqs = requests(80);
        let plan = FaultPlan::new(2, 0.6);
        let out = measure_all(
            &model,
            &sampler,
            &reqs,
            1,
            2,
            Some(&plan),
            &RetryPolicy::no_retries(),
        )
        .unwrap();
        for o in &out {
            assert_eq!(o.attempts(), 1);
            if let JobOutcome::Failed { backoff_ns, .. } = o {
                assert_eq!(*backoff_ns, 0);
            }
        }
        assert!(out.iter().any(|o| o.is_failed()));
    }
}
