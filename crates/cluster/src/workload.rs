//! The paper's measurement campaign: job batches over Table I's factor
//! levels.
//!
//! Factor levels (Table I):
//! * Operator: `poisson1`, `poisson2`, `poisson2affine`
//! * Global Problem Size: `1.7e3 – 1.1e9` (log-spaced levels)
//! * NP: `1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128`
//! * CPU Frequency: `1.2, 1.5, 1.8, 2.1, 2.4` GHz
//! * up to 3 repeats per combination
//!
//! The published dataset is *not* a complete factorial: the
//! `(poisson1, NP=32)` slice that drives the paper's AL evaluation (Fig. 6)
//! contains 251 jobs — about 17 size levels x 5 frequencies x 3 repeats —
//! while the overall Performance dataset holds 3246 jobs, far fewer than a
//! full factorial at that size resolution would produce. We reproduce that
//! structure: the focus slice gets `FOCUS_SIZE_LEVELS` sizes, everything
//! else gets `DEFAULT_SIZE_LEVELS`, and jobs the experimenters would not
//! schedule (out of memory / beyond the 500 s budget cap) are skipped.
//! A small random per-job failure rate models benchmark/infrastructure
//! failures.

use crate::job::JobRequest;
use alperf_hpgmg::model::PerfModel;
use alperf_hpgmg::operator::OperatorKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// NP levels from Table I.
pub const NP_LEVELS: [usize; 11] = [1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128];

/// CPU frequency levels from Table I (GHz).
pub const FREQ_LEVELS: [f64; 5] = [1.2, 1.5, 1.8, 2.1, 2.4];

/// Problem-size range from Table I.
pub const SIZE_MIN: f64 = 1.7e3;
/// Problem-size range from Table I.
pub const SIZE_MAX: f64 = 1.1e9;

/// Size levels for the focus slice `(poisson1, NP = 32)` (17 levels x 5
/// freqs x 3 repeats ~ 251 jobs, matching the paper's Fig. 6 subset).
pub const FOCUS_SIZE_LEVELS: usize = 17;

/// Size levels everywhere else, chosen so the whole campaign lands near the
/// paper's 3246 Performance jobs.
pub const DEFAULT_SIZE_LEVELS: usize = 7;

/// Repeats per configuration ("up to 3", Table I).
pub const MAX_REPEATS: usize = 3;

/// Log-spaced size levels between the Table I extremes.
pub fn size_levels(count: usize) -> Vec<f64> {
    alperf_linalg_levels(SIZE_MIN, SIZE_MAX, count)
}

// Local logspace to avoid a linalg dependency for one function.
fn alperf_linalg_levels(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "need at least two size levels");
    let (la, lb) = (lo.log10(), hi.log10());
    (0..n)
        .map(|i| 10f64.powf(la + (lb - la) * i as f64 / (n - 1) as f64))
        .collect()
}

/// Configuration of a campaign's workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Size levels in the focus slice.
    pub focus_size_levels: usize,
    /// Size levels elsewhere.
    pub default_size_levels: usize,
    /// Repeats per configuration.
    pub repeats: usize,
    /// Probability a scheduled job fails and yields no record.
    pub failure_rate: f64,
    /// RNG seed (repeat-count jitter + failures).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            focus_size_levels: FOCUS_SIZE_LEVELS,
            default_size_levels: DEFAULT_SIZE_LEVELS,
            repeats: MAX_REPEATS,
            failure_rate: 0.02,
            seed: 20160801, // the paper's CloudLab access date
        }
    }
}

/// Whether `(op, np)` is the paper's heavily-sampled focus slice.
pub fn is_focus_slice(op: OperatorKind, np: usize) -> bool {
    op == OperatorKind::Poisson1 && np == 32
}

/// Build the job list for the whole campaign. Jobs that would not be
/// scheduled (memory, budget cap) are skipped; per-job failures are applied
/// by the campaign layer, not here.
pub fn build_requests(spec: &WorkloadSpec, model: &PerfModel) -> Vec<JobRequest> {
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    for op in OperatorKind::all() {
        for &np in NP_LEVELS.iter() {
            let n_sizes = if is_focus_slice(op, np) {
                spec.focus_size_levels
            } else {
                spec.default_size_levels
            };
            for &size in &size_levels(n_sizes) {
                for &freq in FREQ_LEVELS.iter() {
                    if !model.would_run(op, size, np, freq) {
                        continue;
                    }
                    // "Up to 3 repeats": most cells get all repeats, a few
                    // get fewer (operators time out, nodes get reclaimed).
                    let reps = if rng.gen_range(0.0..1.0) < 0.85 {
                        spec.repeats
                    } else {
                        1 + rng.gen_range(0..spec.repeats.max(1))
                    };
                    for repeat in 0..reps {
                        out.push(JobRequest {
                            op,
                            size,
                            np,
                            freq,
                            repeat,
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_levels_span_table1_range() {
        let s = size_levels(17);
        assert_eq!(s.len(), 17);
        assert!((s[0] - SIZE_MIN).abs() / SIZE_MIN < 1e-9);
        assert!((s[16] - SIZE_MAX).abs() / SIZE_MAX < 1e-9);
        assert!(s.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn campaign_size_matches_paper_scale() {
        let model = PerfModel::calibrated();
        let reqs = build_requests(&WorkloadSpec::default(), &model);
        // Paper: 3246 performance jobs. Accept the right ballpark; the
        // exact measured count is recorded in EXPERIMENTS.md.
        assert!(
            (2600..=4000).contains(&reqs.len()),
            "campaign has {} jobs",
            reqs.len()
        );
    }

    #[test]
    fn focus_slice_matches_fig6_scale() {
        let model = PerfModel::calibrated();
        let reqs = build_requests(&WorkloadSpec::default(), &model);
        let focus = reqs.iter().filter(|r| is_focus_slice(r.op, r.np)).count();
        // Paper's Fig. 6 subset: 251 jobs.
        assert!((220..=260).contains(&focus), "focus slice has {focus} jobs");
    }

    #[test]
    fn no_unschedulable_jobs() {
        let model = PerfModel::calibrated();
        let reqs = build_requests(&WorkloadSpec::default(), &model);
        assert!(reqs
            .iter()
            .all(|r| model.would_run(r.op, r.size, r.np, r.freq)));
        // In particular: no serial poisson2 at the max size.
        assert!(!reqs
            .iter()
            .any(|r| r.op == OperatorKind::Poisson2 && r.np == 1 && r.size > 1e9));
    }

    #[test]
    fn repeats_bounded_by_spec() {
        let model = PerfModel::calibrated();
        let reqs = build_requests(&WorkloadSpec::default(), &model);
        assert!(reqs.iter().all(|r| r.repeat < MAX_REPEATS));
        // And at least some cells have all 3 repeats.
        assert!(reqs.iter().any(|r| r.repeat == 2));
    }

    #[test]
    fn deterministic_in_seed() {
        let model = PerfModel::calibrated();
        let a = build_requests(&WorkloadSpec::default(), &model);
        let b = build_requests(&WorkloadSpec::default(), &model);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0], b[0]);
        assert_eq!(a[a.len() - 1], b[b.len() - 1]);
    }

    #[test]
    fn all_factor_levels_represented() {
        let model = PerfModel::calibrated();
        let reqs = build_requests(&WorkloadSpec::default(), &model);
        for op in OperatorKind::all() {
            assert!(reqs.iter().any(|r| r.op == op), "{op:?} missing");
        }
        for &np in NP_LEVELS.iter() {
            assert!(reqs.iter().any(|r| r.np == np), "NP={np} missing");
        }
        for &f in FREQ_LEVELS.iter() {
            assert!(reqs.iter().any(|r| r.freq == f), "freq={f} missing");
        }
    }
}
