#![warn(missing_docs)]
//! # alperf-cluster
//!
//! Discrete-event simulator of the paper's measurement testbed: a 4-node
//! CloudLab cluster running SLURM with server-level IPMI power monitoring
//! (Section IV). This crate produces the *datasets* the Active-Learning
//! evaluation consumes, through the same pipeline the paper used:
//!
//! 1. [`workload`] builds batches of HPGMG-FE job requests over the Table I
//!    factor levels;
//! 2. [`scheduler`] runs them through an FCFS + conservative-backfill
//!    node allocator (the SLURM stand-in), producing accounting records;
//! 3. each job's runtime comes from the calibrated
//!    [`alperf_hpgmg::model::PerfModel`] with measurement noise;
//! 4. [`power`] samples an IPMI-style instantaneous-Watts trace over each
//!    job's execution interval — with gaps — and integrates it into a
//!    per-job energy estimate; jobs with too few samples are dropped
//!    exactly as the paper drops them ("less than 10 [records] for 60
//!    seconds of computation");
//! 5. [`campaign`] assembles the Performance (~3.2k jobs) and Power
//!    (~0.6k jobs) datasets.
//!
//! The [`executor`] module runs campaign measurement sampling on a
//! crossbeam worker pool; per-job RNG seeds are derived from job identity,
//! so results are bit-identical regardless of worker interleaving.

pub mod accounting;
pub mod campaign;
pub mod executor;
pub mod fault;
pub mod job;
pub mod power;
pub mod scheduler;
pub mod workload;

pub use campaign::{Campaign, CampaignOutput};
pub use executor::{ExecError, JobOutcome};
pub use fault::{Fault, FaultKind, FaultPlan, Persistence, RetryPolicy};
pub use job::{FailedJob, JobRecord, JobRequest};
