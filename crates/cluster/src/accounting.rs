//! SLURM-`sacct`-style accounting: export job records as CSV and compute
//! queue/utilization statistics.
//!
//! The paper's pipeline collects "SLURM accounting information" alongside
//! benchmark output (Section IV); this module is that bookkeeping for the
//! simulator — useful both to sanity-check the scheduler (utilization,
//! wait-time distribution) and to give downstream users the familiar
//! per-job table.

use crate::job::{FailedJob, JobRecord};
use alperf_hpgmg::model::MachineSpec;
use alperf_linalg::stats;

/// Aggregate scheduler statistics over a batch of completed jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueStats {
    /// Number of jobs.
    pub n_jobs: usize,
    /// Mean queue wait, seconds.
    pub mean_wait: f64,
    /// Maximum queue wait, seconds.
    pub max_wait: f64,
    /// Makespan (last end time), seconds.
    pub makespan: f64,
    /// Node-seconds actually used by jobs.
    pub busy_node_seconds: f64,
    /// Cluster utilization: busy node-seconds / (nodes x makespan).
    pub utilization: f64,
    /// Total core-seconds billed: completed-job cost **plus** the compute
    /// burned by failed jobs — the paper charges failed experiments
    /// against the budget.
    pub total_cost: f64,
    /// Number of jobs that exhausted their retry budget.
    pub n_failed: usize,
    /// Core-seconds charged to failed jobs (included in `total_cost`).
    pub failed_cost: f64,
}

/// Compute queue statistics for a batch with no failed jobs.
pub fn queue_stats(records: &[JobRecord], machine: &MachineSpec) -> QueueStats {
    queue_stats_with_failures(records, &[], machine)
}

/// Compute queue statistics for a batch, charging failed jobs' burned
/// compute into `total_cost`/`failed_cost`.
pub fn queue_stats_with_failures(
    records: &[JobRecord],
    failures: &[FailedJob],
    machine: &MachineSpec,
) -> QueueStats {
    let waits: Vec<f64> = records.iter().map(|r| r.wait_time()).collect();
    let makespan = records.iter().map(|r| r.end_time()).fold(0.0f64, f64::max);
    let busy: f64 = records.iter().map(|r| r.runtime * r.nodes as f64).sum();
    let capacity = machine.nodes as f64 * makespan;
    let completed_cost: f64 = records.iter().map(|r| r.cost()).sum();
    let failed_cost: f64 = failures.iter().map(|f| f.charged_cost).sum();
    QueueStats {
        n_jobs: records.len(),
        mean_wait: stats::mean(&waits),
        max_wait: stats::max(&waits).unwrap_or(0.0),
        makespan,
        busy_node_seconds: busy,
        utilization: if capacity > 0.0 { busy / capacity } else { 0.0 },
        total_cost: completed_cost + failed_cost,
        n_failed: failures.len(),
        failed_cost,
    }
}

/// Render records as a `sacct`-style CSV table.
pub fn to_sacct_csv(records: &[JobRecord]) -> String {
    let mut out = String::from(
        "JobID,Operator,Size,NP,Freq,Repeat,Submit,Start,End,Elapsed,NNodes,CoreSeconds,EnergyJ,PowerSamples,Attempts\n",
    );
    for (id, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            id,
            r.request.op.name(),
            r.request.size,
            r.request.np,
            r.request.freq,
            r.request.repeat,
            r.submit_time,
            r.start_time,
            r.end_time(),
            r.runtime,
            r.nodes,
            r.cost(),
            r.energy.map(|e| e.to_string()).unwrap_or_default(),
            r.power_samples,
            r.attempts,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobRequest;
    use alperf_hpgmg::operator::OperatorKind;

    fn record(start: f64, runtime: f64, nodes: usize, np: usize) -> JobRecord {
        JobRecord {
            request: JobRequest {
                op: OperatorKind::Poisson1,
                size: 1e6,
                np,
                freq: 2.4,
                repeat: 0,
            },
            submit_time: 0.0,
            start_time: start,
            runtime,
            nodes,
            energy: if runtime > 5.0 {
                Some(runtime * 200.0)
            } else {
                None
            },
            memory_per_node: 2e9,
            power_samples: runtime as usize,
            attempts: 1,
        }
    }

    #[test]
    fn stats_on_simple_batch() {
        let machine = MachineSpec::cloudlab_wisconsin();
        // Two jobs back to back on the full cluster.
        let recs = vec![record(0.0, 10.0, 4, 64), record(10.0, 10.0, 4, 64)];
        let s = queue_stats(&recs, &machine);
        assert_eq!(s.n_jobs, 2);
        assert_eq!(s.makespan, 20.0);
        assert_eq!(s.busy_node_seconds, 80.0);
        assert!((s.utilization - 1.0).abs() < 1e-12);
        assert_eq!(s.mean_wait, 5.0);
        assert_eq!(s.max_wait, 10.0);
        assert_eq!(s.total_cost, 2.0 * 10.0 * 64.0);
    }

    #[test]
    fn partial_utilization() {
        let machine = MachineSpec::cloudlab_wisconsin();
        // One 1-node job for 10 s: 10 busy node-s out of 40 capacity.
        let recs = vec![record(0.0, 10.0, 1, 16)];
        let s = queue_stats(&recs, &machine);
        assert!((s.utilization - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_batch() {
        let machine = MachineSpec::cloudlab_wisconsin();
        let s = queue_stats(&[], &machine);
        assert_eq!(s.n_jobs, 0);
        assert_eq!(s.utilization, 0.0);
        assert_eq!(s.makespan, 0.0);
    }

    #[test]
    fn sacct_csv_shape() {
        let recs = vec![record(0.0, 10.0, 2, 32), record(1.0, 2.0, 1, 8)];
        let csv = to_sacct_csv(&recs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("JobID,Operator"));
        // First job has an energy value; second (short) does not.
        assert!(lines[1].contains("poisson1"));
        let fields: Vec<&str> = lines[2].split(',').collect();
        assert_eq!(fields[12], "", "short job must have empty EnergyJ");
        // Round-trippable count of columns (Attempts is the trailing one).
        assert_eq!(fields.len(), 15);
        assert_eq!(fields[14], "1");
    }

    #[test]
    fn failed_jobs_charge_the_budget() {
        let machine = MachineSpec::cloudlab_wisconsin();
        let recs = vec![record(0.0, 10.0, 4, 64)];
        let failures = vec![
            FailedJob {
                request: recs[0].request,
                attempts: 3,
                fault: crate::fault::Fault {
                    kind: crate::fault::FaultKind::WorkerTimeout,
                    persistence: crate::fault::Persistence::Permanent,
                },
                charged_cost: 120.0,
            },
            FailedJob {
                request: recs[0].request,
                attempts: 3,
                fault: crate::fault::Fault {
                    kind: crate::fault::FaultKind::SchedulerReject,
                    persistence: crate::fault::Persistence::Permanent,
                },
                charged_cost: 0.0,
            },
        ];
        let s = queue_stats_with_failures(&recs, &failures, &machine);
        assert_eq!(s.n_failed, 2);
        assert_eq!(s.failed_cost, 120.0);
        assert_eq!(s.total_cost, 10.0 * 64.0 + 120.0);
        // The failure-free wrapper stays backward compatible.
        let plain = queue_stats(&recs, &machine);
        assert_eq!(plain.n_failed, 0);
        assert_eq!(plain.total_cost, 640.0);
    }

    #[test]
    fn campaign_accounting_is_consistent() {
        let out = crate::campaign::Campaign {
            spec: crate::workload::WorkloadSpec {
                focus_size_levels: 4,
                default_size_levels: 2,
                ..Default::default()
            },
            workers: 2,
            ..Default::default()
        }
        .run()
        .expect("campaign");
        let machine = MachineSpec::cloudlab_wisconsin();
        let s = queue_stats(&out.records, &machine);
        assert_eq!(s.n_jobs, out.records.len());
        assert!((s.makespan - out.makespan).abs() < 1e-9);
        assert!(s.utilization > 0.0 && s.utilization <= 1.0 + 1e-12);
        let csv = to_sacct_csv(&out.records);
        assert_eq!(csv.lines().count(), out.records.len() + 1);
    }
}
