//! SLURM stand-in: FCFS node allocation with conservative backfill.
//!
//! The paper submits HPGMG-FE batches to SLURM 15.08, which "managed their
//! execution on the available nodes". The simulator reproduces the part
//! that matters for the datasets — which jobs run, on how many nodes, in
//! what order, with what queue wait — as a deterministic discrete-event
//! simulation over the 4-node cluster.
//!
//! Policy: jobs are queued FCFS. Whenever nodes free up, the head of the
//! queue starts if it fits; otherwise later jobs may *backfill* onto idle
//! nodes, but only if their (known) runtime would not delay the head job's
//! earliest possible start — conservative backfill, SLURM's default
//! `backfill` behaviour for this setting.

use crate::job::{JobRecord, JobRequest};
use alperf_hpgmg::model::PerfModel;
use std::collections::BinaryHeap;

/// One queued entry: request + measured runtime (the simulator knows the
/// sampled runtime up front; SLURM knows the user's estimate — for
/// benchmark batches these coincide well enough for scheduling shape).
#[derive(Debug, Clone, Copy)]
struct Queued {
    idx: usize,
    nodes: usize,
    runtime: f64,
}

/// A running job's completion event, ordered by end time (min-heap).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Completion {
    end: f64,
    nodes: usize,
}

impl Eq for Completion {}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for min-heap on end time; tie-break on node count for
        // total determinism.
        other
            .end
            .partial_cmp(&self.end)
            .expect("end times are finite")
            .then(other.nodes.cmp(&self.nodes))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Outcome of scheduling one batch.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Per-job `(start_time, nodes)` in submission order.
    pub placements: Vec<(f64, usize)>,
    /// Simulation time when the last job finishes.
    pub makespan: f64,
}

/// A batch that cannot be scheduled as submitted — the simulator's
/// analogue of SLURM refusing a submission at `sbatch` time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// `requests` and `runtimes` disagree in length.
    LengthMismatch {
        /// Number of requests submitted.
        requests: usize,
        /// Number of runtimes supplied.
        runtimes: usize,
    },
    /// A job wants more nodes than the cluster has.
    JobTooLarge {
        /// Index of the offending job.
        idx: usize,
        /// Nodes the job needs.
        nodes: usize,
        /// Nodes the cluster has.
        total_nodes: usize,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::LengthMismatch { requests, runtimes } => {
                write!(f, "schedule: {requests} requests but {runtimes} runtimes")
            }
            ScheduleError::JobTooLarge {
                idx,
                nodes,
                total_nodes,
            } => write!(f, "job {idx} needs {nodes} nodes > cluster {total_nodes}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Schedule a batch of jobs (all submitted at `t = 0`) onto the cluster.
///
/// `runtimes[i]` is the execution time of `requests[i]`.
///
/// # Panics
/// Panics if a job needs more nodes than the cluster has, or input lengths
/// differ. [`try_schedule_batch`] is the non-panicking form.
pub fn schedule_batch(model: &PerfModel, requests: &[JobRequest], runtimes: &[f64]) -> Schedule {
    try_schedule_batch(model, requests, runtimes).unwrap_or_else(|e| panic!("{e}"))
}

/// [`schedule_batch`] with submission errors reported instead of panicking.
///
/// # Errors
/// [`ScheduleError::LengthMismatch`] and [`ScheduleError::JobTooLarge`]
/// reject the whole batch (nothing is partially scheduled).
pub fn try_schedule_batch(
    model: &PerfModel,
    requests: &[JobRequest],
    runtimes: &[f64],
) -> Result<Schedule, ScheduleError> {
    let _span = alperf_obs::span("cluster.schedule_batch");
    if requests.len() != runtimes.len() {
        return Err(ScheduleError::LengthMismatch {
            requests: requests.len(),
            runtimes: runtimes.len(),
        });
    }
    let total_nodes = model.machine.nodes;
    let mut queue = Vec::with_capacity(requests.len());
    for (idx, (r, &rt)) in requests.iter().zip(runtimes).enumerate() {
        let nodes = model.machine.nodes_used(r.np);
        if nodes > total_nodes {
            return Err(ScheduleError::JobTooLarge {
                idx,
                nodes,
                total_nodes,
            });
        }
        queue.push(Queued {
            idx,
            nodes,
            runtime: rt,
        });
    }
    let mut placements = vec![(0.0, 0usize); requests.len()];
    let mut running: BinaryHeap<Completion> = BinaryHeap::new();
    let mut free = total_nodes;
    let mut now = 0.0f64;
    let mut makespan = 0.0f64;

    while !queue.is_empty() {
        // Start the queue head if it fits; else backfill.
        let mut started_any = false;
        let mut i = 0;
        // Head's earliest start: time when enough nodes will be free.
        let head_nodes = queue[0].nodes;
        let head_start = earliest_start(now, free, head_nodes, &running);
        while i < queue.len() {
            let q = queue[i];
            let can_start_now = q.nodes <= free
                && (i == 0
                    // Conservative backfill: must finish by the head's
                    // reserved start (or not interfere with its nodes).
                    || now + q.runtime <= head_start
                    || free - q.nodes >= head_nodes);
            if can_start_now {
                free -= q.nodes;
                placements[q.idx] = (now, q.nodes);
                running.push(Completion {
                    end: now + q.runtime,
                    nodes: q.nodes,
                });
                makespan = makespan.max(now + q.runtime);
                queue.remove(i);
                started_any = true;
                if i == 0 {
                    // New head: recompute reservation next outer pass.
                    break;
                }
            } else {
                i += 1;
            }
        }
        if started_any {
            continue;
        }
        // Nothing could start: advance time to the next completion.
        let c = running
            .pop()
            .expect("queue non-empty but nothing running: job larger than cluster?");
        now = c.end;
        free += c.nodes;
        // Drain simultaneous completions.
        while let Some(peek) = running.peek() {
            if peek.end <= now {
                free += peek.nodes;
                running.pop();
            } else {
                break;
            }
        }
    }
    Ok(Schedule {
        placements,
        makespan,
    })
}

/// Earliest time at which `need` nodes can be free, given current free
/// nodes and the running set.
fn earliest_start(now: f64, free: usize, need: usize, running: &BinaryHeap<Completion>) -> f64 {
    if need <= free {
        return now;
    }
    let mut avail = free;
    let mut completions: Vec<Completion> = running.clone().into_sorted_vec();
    // into_sorted_vec sorts ascending by Ord; our Ord is reversed, so the
    // vector comes out descending by end time — walk it from the back.
    completions.reverse();
    for c in completions {
        avail += c.nodes;
        if avail >= need {
            return c.end;
        }
    }
    f64::INFINITY
}

/// Convenience: build full job records by scheduling a batch and attaching
/// measured runtimes (energy filled in later by the campaign layer).
pub fn run_batch(model: &PerfModel, requests: &[JobRequest], runtimes: &[f64]) -> Vec<JobRecord> {
    let _span = alperf_obs::span("cluster.run_batch");
    let sched = schedule_batch(model, requests, runtimes);
    requests
        .iter()
        .zip(runtimes)
        .zip(&sched.placements)
        .map(|((req, &rt), &(start, nodes))| JobRecord {
            request: *req,
            submit_time: 0.0,
            start_time: start,
            runtime: rt,
            nodes,
            energy: None,
            memory_per_node: 0.0,
            power_samples: 0,
            attempts: 1,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alperf_hpgmg::operator::OperatorKind;

    fn model() -> PerfModel {
        PerfModel::calibrated()
    }

    fn req(np: usize) -> JobRequest {
        JobRequest {
            op: OperatorKind::Poisson1,
            size: 1e6,
            np,
            freq: 2.4,
            repeat: 0,
        }
    }

    #[test]
    fn single_job_starts_immediately() {
        let m = model();
        let s = schedule_batch(&m, &[req(64)], &[10.0]);
        assert_eq!(s.placements[0], (0.0, 4));
        assert_eq!(s.makespan, 10.0);
    }

    #[test]
    fn two_small_jobs_run_concurrently() {
        let m = model();
        // Two 1-node jobs on a 4-node cluster.
        let s = schedule_batch(&m, &[req(16), req(16)], &[10.0, 10.0]);
        assert_eq!(s.placements[0].0, 0.0);
        assert_eq!(s.placements[1].0, 0.0);
        assert_eq!(s.makespan, 10.0);
    }

    #[test]
    fn full_cluster_jobs_serialize() {
        let m = model();
        let s = schedule_batch(&m, &[req(64), req(64)], &[10.0, 5.0]);
        assert_eq!(s.placements[0].0, 0.0);
        assert_eq!(s.placements[1].0, 10.0);
        assert_eq!(s.makespan, 15.0);
    }

    #[test]
    fn backfill_fills_idle_nodes_without_delaying_head() {
        let m = model();
        // Job 0: 3 nodes, 10 s. Job 1 (head of the remaining queue): 4
        // nodes — must wait for everything. Job 2: 1 node, 5 s — backfills
        // beside job 0 because it finishes (t=5) before job 1 could start
        // (t=10) anyway.
        let jobs = [req(48), req(64), req(16)];
        let s = schedule_batch(&m, &jobs, &[10.0, 10.0, 5.0]);
        assert_eq!(s.placements[0].0, 0.0);
        assert_eq!(s.placements[2].0, 0.0, "short job should backfill");
        assert_eq!(s.placements[1].0, 10.0, "head must not be delayed");
    }

    #[test]
    fn backfill_never_delays_head_job() {
        let m = model();
        // Job 2 is long (20 s): starting it would delay the 4-node head
        // (earliest start t=10), so it must NOT backfill.
        let jobs = [req(48), req(64), req(16)];
        let s = schedule_batch(&m, &jobs, &[10.0, 10.0, 20.0]);
        assert_eq!(s.placements[1].0, 10.0);
        // Long 1-node job starts only after the head.
        assert!(s.placements[2].0 >= 10.0, "{:?}", s.placements);
    }

    #[test]
    fn fcfs_order_preserved_for_equal_jobs() {
        let m = model();
        let jobs = [req(64), req(64), req(64)];
        let s = schedule_batch(&m, &jobs, &[1.0, 2.0, 3.0]);
        assert!(s.placements[0].0 < s.placements[1].0);
        assert!(s.placements[1].0 < s.placements[2].0);
        assert_eq!(s.makespan, 6.0);
    }

    #[test]
    fn makespan_bounded_by_serial_sum() {
        let m = model();
        let jobs = [req(16), req(32), req(64), req(16), req(48)];
        let runtimes = [3.0, 7.0, 2.0, 5.0, 1.0];
        let s = schedule_batch(&m, &jobs, &runtimes);
        let serial: f64 = runtimes.iter().sum();
        assert!(s.makespan <= serial + 1e-12);
        // And at least the longest single job.
        assert!(s.makespan >= 7.0);
    }

    #[test]
    fn run_batch_produces_records() {
        let m = model();
        let jobs = [req(16), req(128)];
        let recs = run_batch(&m, &jobs, &[2.0, 4.0]);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].nodes, 1);
        assert_eq!(recs[1].nodes, 4);
        assert!(recs.iter().all(|r| r.energy.is_none()));
        assert_eq!(recs[1].cost(), 4.0 * 128.0);
    }

    #[test]
    fn try_schedule_rejects_bad_submissions() {
        let m = model();
        let err = try_schedule_batch(&m, &[req(16), req(16)], &[1.0]).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::LengthMismatch {
                requests: 2,
                runtimes: 1
            }
        );
        assert!(err.to_string().contains("2 requests"));
        // JobTooLarge is defensive: `nodes_used` caps at the cluster size,
        // so the variant only fires on a corrupted model. Exercise Display.
        let too_big = ScheduleError::JobTooLarge {
            idx: 0,
            nodes: 9,
            total_nodes: 4,
        };
        assert!(too_big.to_string().contains("job 0"));
        // The Ok path matches the panicking wrapper exactly.
        let jobs = [req(16), req(64)];
        let a = try_schedule_batch(&m, &jobs, &[2.0, 3.0]).unwrap();
        let b = schedule_batch(&m, &jobs, &[2.0, 3.0]);
        assert_eq!(a.placements, b.placements);
    }

    #[test]
    fn deterministic_schedule() {
        let m = model();
        let jobs: Vec<JobRequest> = (0..20).map(|i| req([16, 32, 48, 64][i % 4])).collect();
        let runtimes: Vec<f64> = (0..20).map(|i| 1.0 + (i % 7) as f64).collect();
        let a = schedule_batch(&m, &jobs, &runtimes);
        let b = schedule_batch(&m, &jobs, &runtimes);
        assert_eq!(a.placements, b.placements);
        assert_eq!(a.makespan, b.makespan);
    }
}
