//! Declarative grid specs and their expansion into campaign configs.
//!
//! A [`GridSpec`] names one value list per axis (strategy × kernel ×
//! surrogate tier × noise × batch size × fault rate × seed). Expansion
//! is the full cartesian product in a **fixed canonical nesting order**
//! over **canonically sorted, deduplicated** axis values — so two specs
//! that declare the same sets of values, in any order and with any
//! duplication, expand to the identical config list. That is the
//! property the whole determinism story rests on: a config's index in
//! the expansion *is* its identity, and its per-config seed is derived
//! from that index by a splitmix64 chain (a composition of bijections,
//! hence collision-free across the grid).
//!
//! Seed layout per config (see DESIGN.md §4k):
//!
//! * `run_seed = splitmix64(base_seed + (index + 1) · φ64)` — drives the
//!   strategy RNG and hyperparameter restarts; injective in `index`.
//! * the *dataset* seed is derived from `(base_seed, noise, seed, rows)`
//!   only — deliberately shared by every strategy/tier/batch in a
//!   scenario slice, so strategies compete on identical data,
//!   partitions, and fault verdicts.

use std::fmt::Write as _;

/// 64-bit golden-ratio constant (odd, so multiplication by it is a
/// bijection mod 2^64).
const PHI64: u64 = 0x9e37_79b9_7f4a_7c15;

/// splitmix64 finalizer — a bijection on u64.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(PHI64);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mix a tag/value into a seed chain (not required to be injective —
/// used only for *independence* between seed domains, never identity).
pub fn mix(seed: u64, v: u64) -> u64 {
    splitmix64(seed ^ v.wrapping_mul(PHI64))
}

/// Acquisition strategy axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StrategyKind {
    /// The paper's variance-reduction strategy (argmax predictive SD).
    VarianceReduction,
    /// The paper's cost-efficiency strategy (SD per unit cost).
    CostEfficiency,
    /// Uniform random sampling — the baseline the paper's claim is
    /// measured against.
    Random,
}

impl StrategyKind {
    /// All supported strategies, canonical order.
    pub const ALL: [StrategyKind; 3] = [
        StrategyKind::VarianceReduction,
        StrategyKind::CostEfficiency,
        StrategyKind::Random,
    ];

    /// Stable name, matching `alperf_al::Strategy::name()`.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::VarianceReduction => "variance_reduction",
            StrategyKind::CostEfficiency => "cost_efficiency",
            StrategyKind::Random => "random",
        }
    }

    /// Parse a spec-file value (full name or the `vr`/`ce` shorthand).
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        match s {
            "variance_reduction" | "vr" => Ok(StrategyKind::VarianceReduction),
            "cost_efficiency" | "ce" => Ok(StrategyKind::CostEfficiency),
            "random" => Ok(StrategyKind::Random),
            _ => Err(SpecError(format!("unknown strategy {s:?}"))),
        }
    }
}

/// Kernel family axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelKind {
    /// Squared-exponential (the paper's kernel).
    Se,
    /// Matérn 3/2.
    Matern32,
    /// Matérn 5/2.
    Matern52,
    /// Rational quadratic.
    RationalQuadratic,
}

impl KernelKind {
    /// Stable short name used in config keys.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Se => "se",
            KernelKind::Matern32 => "m32",
            KernelKind::Matern52 => "m52",
            KernelKind::RationalQuadratic => "rq",
        }
    }

    /// Parse a spec-file value.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        match s {
            "se" => Ok(KernelKind::Se),
            "m32" => Ok(KernelKind::Matern32),
            "m52" => Ok(KernelKind::Matern52),
            "rq" => Ok(KernelKind::RationalQuadratic),
            _ => Err(SpecError(format!("unknown kernel {s:?}"))),
        }
    }
}

/// Surrogate fit tier axis (`gp::FitTier`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TierKind {
    /// Exact GPR.
    Exact,
    /// Low-rank / inducing-point approximation.
    Approximate,
    /// Size-gated automatic choice.
    Auto,
}

impl TierKind {
    /// Stable short name used in config keys.
    pub fn name(self) -> &'static str {
        match self {
            TierKind::Exact => "exact",
            TierKind::Approximate => "approx",
            TierKind::Auto => "auto",
        }
    }

    /// Parse a spec-file value.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        match s {
            "exact" => Ok(TierKind::Exact),
            "approx" => Ok(TierKind::Approximate),
            "auto" => Ok(TierKind::Auto),
            _ => Err(SpecError(format!("unknown tier {s:?}"))),
        }
    }
}

/// Spec parse / validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "grid spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// A declarative campaign grid: one value list per axis plus the shared
/// campaign shape (rows, iterations) and the grid's base seed.
///
/// Every axis has a single-value default, so a spec only declares the
/// axes it sweeps (per-axis overrides). [`GridSpec::canonicalize`] sorts
/// and dedups each axis; [`GridSpec::expand`] is always performed on the
/// canonical form.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Grid name (appears in the summary meta line and metric labels).
    pub name: String,
    /// Base seed every per-config seed is derived from.
    pub base_seed: u64,
    /// Synthetic dataset rows per campaign.
    pub rows: usize,
    /// Experiment budget (AL iterations) per campaign.
    pub iters: usize,
    /// Strategy axis.
    pub strategies: Vec<StrategyKind>,
    /// Kernel axis.
    pub kernels: Vec<KernelKind>,
    /// Surrogate tier axis.
    pub tiers: Vec<TierKind>,
    /// Observation noise half-width axis (uniform noise on the synthetic
    /// response).
    pub noises: Vec<f64>,
    /// Batch size axis (experiments selected per round).
    pub batches: Vec<usize>,
    /// Fault-rate axis (probability an experiment is faulty).
    pub fault_rates: Vec<f64>,
    /// Replicate seed axis.
    pub seeds: Vec<u64>,
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec {
            name: "grid".into(),
            base_seed: 42,
            rows: 40,
            iters: 10,
            strategies: vec![StrategyKind::VarianceReduction],
            kernels: vec![KernelKind::Se],
            tiers: vec![TierKind::Exact],
            noises: vec![0.1],
            batches: vec![1],
            fault_rates: vec![0.0],
            seeds: vec![0],
        }
    }
}

fn canon_f64(xs: &mut Vec<f64>, axis: &'static str) -> Result<(), SpecError> {
    if xs.iter().any(|x| !x.is_finite() || *x < 0.0) {
        return Err(SpecError(format!("{axis} values must be finite and >= 0")));
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs.dedup();
    Ok(())
}

impl GridSpec {
    /// Sort + dedup every axis into the canonical form expansion uses.
    /// Declaring `noise = 0.5, 0.1, 0.5` is the same grid as
    /// `noise = 0.1, 0.5` — axis declaration order never matters.
    pub fn canonicalize(mut self) -> Result<GridSpec, SpecError> {
        for (axis, empty) in [
            ("strategy", self.strategies.is_empty()),
            ("kernel", self.kernels.is_empty()),
            ("tier", self.tiers.is_empty()),
            ("noise", self.noises.is_empty()),
            ("batch", self.batches.is_empty()),
            ("fault", self.fault_rates.is_empty()),
            ("seed", self.seeds.is_empty()),
        ] {
            if empty {
                return Err(SpecError(format!("axis {axis} has no values")));
            }
        }
        if self.rows < 8 {
            return Err(SpecError("rows must be >= 8".into()));
        }
        if self.iters == 0 {
            return Err(SpecError("iters must be >= 1".into()));
        }
        if self.batches.contains(&0) {
            return Err(SpecError("batch values must be >= 1".into()));
        }
        if self.fault_rates.iter().any(|&f| f >= 1.0) {
            return Err(SpecError("fault rates must be < 1".into()));
        }
        self.strategies.sort();
        self.strategies.dedup();
        self.kernels.sort();
        self.kernels.dedup();
        self.tiers.sort();
        self.tiers.dedup();
        canon_f64(&mut self.noises, "noise")?;
        self.batches.sort();
        self.batches.dedup();
        canon_f64(&mut self.fault_rates, "fault")?;
        self.seeds.sort();
        self.seeds.dedup();
        Ok(self)
    }

    /// Number of configs the canonical spec expands to.
    pub fn n_configs(&self) -> usize {
        self.strategies.len()
            * self.kernels.len()
            * self.tiers.len()
            * self.noises.len()
            * self.batches.len()
            * self.fault_rates.len()
            * self.seeds.len()
    }

    /// Expand the cartesian product in the canonical nesting order
    /// (strategy ▸ kernel ▸ tier ▸ noise ▸ batch ▸ fault ▸ seed, seed
    /// innermost). Call on a [`canonicalize`](Self::canonicalize)d spec;
    /// this canonicalizes defensively either way.
    pub fn expand(&self) -> Result<Vec<CampaignConfig>, SpecError> {
        let spec = self.clone().canonicalize()?;
        let mut out = Vec::with_capacity(spec.n_configs());
        for &strategy in &spec.strategies {
            for &kernel in &spec.kernels {
                for &tier in &spec.tiers {
                    for &noise in &spec.noises {
                        for &batch in &spec.batches {
                            for &fault_rate in &spec.fault_rates {
                                for &seed in &spec.seeds {
                                    let index = out.len();
                                    out.push(CampaignConfig {
                                        index,
                                        strategy,
                                        kernel,
                                        tier,
                                        noise,
                                        batch,
                                        fault_rate,
                                        seed,
                                        rows: spec.rows,
                                        iters: spec.iters,
                                        run_seed: derived_seed(spec.base_seed, index),
                                        base_seed: spec.base_seed,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Parse the tiny line-oriented spec format:
    ///
    /// ```text
    /// # comments and blank lines ignored
    /// name = sweep
    /// base_seed = 42
    /// rows = 40
    /// iters = 10
    /// strategy = vr, ce, random
    /// kernel = se, m52
    /// tier = exact
    /// noise = 0.05, 0.2, 0.5
    /// batch = 1, 2
    /// fault = 0, 0.2
    /// seed = 0..28        # half-open range, or an explicit list
    /// ```
    ///
    /// Unknown keys are errors (a typo must not silently shrink a grid).
    pub fn parse(text: &str) -> Result<GridSpec, SpecError> {
        let mut spec = GridSpec::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let bad = |msg: String| SpecError(format!("line {}: {msg}", lineno + 1));
            let (key, val) = line
                .split_once('=')
                .ok_or_else(|| bad(format!("expected key = value, got {line:?}")))?;
            let (key, val) = (key.trim(), val.trim());
            let list = || val.split(',').map(str::trim).filter(|v| !v.is_empty());
            let f64s = || -> Result<Vec<f64>, SpecError> {
                list()
                    .map(|v| {
                        v.parse::<f64>()
                            .map_err(|_| bad(format!("bad number {v:?}")))
                    })
                    .collect()
            };
            match key {
                "name" => spec.name = val.to_string(),
                "base_seed" => {
                    spec.base_seed = val.parse().map_err(|_| bad(format!("bad seed {val:?}")))?
                }
                "rows" => spec.rows = val.parse().map_err(|_| bad(format!("bad rows {val:?}")))?,
                "iters" => {
                    spec.iters = val.parse().map_err(|_| bad(format!("bad iters {val:?}")))?
                }
                "strategy" => {
                    spec.strategies = list().map(StrategyKind::parse).collect::<Result<_, _>>()?
                }
                "kernel" => {
                    spec.kernels = list().map(KernelKind::parse).collect::<Result<_, _>>()?
                }
                "tier" => spec.tiers = list().map(TierKind::parse).collect::<Result<_, _>>()?,
                "noise" => spec.noises = f64s()?,
                "batch" => {
                    spec.batches = list()
                        .map(|v| v.parse().map_err(|_| bad(format!("bad batch {v:?}"))))
                        .collect::<Result<_, _>>()?
                }
                "fault" => spec.fault_rates = f64s()?,
                "seed" => {
                    spec.seeds = if let Some((lo, hi)) = val.split_once("..") {
                        let lo: u64 = lo
                            .trim()
                            .parse()
                            .map_err(|_| bad(format!("bad range start {lo:?}")))?;
                        let hi: u64 = hi
                            .trim()
                            .parse()
                            .map_err(|_| bad(format!("bad range end {hi:?}")))?;
                        (lo..hi).collect()
                    } else {
                        list()
                            .map(|v| v.parse().map_err(|_| bad(format!("bad seed {v:?}"))))
                            .collect::<Result<_, _>>()?
                    }
                }
                _ => return Err(bad(format!("unknown key {key:?}"))),
            }
        }
        spec.canonicalize()
    }

    /// Canonical one-line rendering of the spec (the form embedded in the
    /// summary meta record, compared byte-for-byte on resume).
    pub fn canonical_text(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "name={} base_seed={} rows={} iters={}",
            self.name, self.base_seed, self.rows, self.iters
        );
        let join = |parts: Vec<String>| parts.join(",");
        let _ = write!(
            s,
            " strategy={}",
            join(self.strategies.iter().map(|v| v.name().into()).collect())
        );
        let _ = write!(
            s,
            " kernel={}",
            join(self.kernels.iter().map(|v| v.name().into()).collect())
        );
        let _ = write!(
            s,
            " tier={}",
            join(self.tiers.iter().map(|v| v.name().into()).collect())
        );
        let _ = write!(
            s,
            " noise={}",
            join(self.noises.iter().map(|v| format!("{v}")).collect())
        );
        let _ = write!(
            s,
            " batch={}",
            join(self.batches.iter().map(|v| format!("{v}")).collect())
        );
        let _ = write!(
            s,
            " fault={}",
            join(self.fault_rates.iter().map(|v| format!("{v}")).collect())
        );
        let _ = write!(
            s,
            " seed={}",
            join(self.seeds.iter().map(|v| format!("{v}")).collect())
        );
        s
    }
}

/// Per-config seed: `splitmix64(base + (index + 1) · φ64)`. The inner
/// map `index → base + (index + 1) · φ64 (mod 2^64)` is injective (φ64
/// is odd) and splitmix64 is a bijection, so distinct configs can never
/// collide — the property `tests/proptest_grid.rs` checks across whole
/// grids.
pub fn derived_seed(base_seed: u64, index: usize) -> u64 {
    splitmix64(base_seed.wrapping_add((index as u64 + 1).wrapping_mul(PHI64)))
}

/// One fully-resolved campaign in a grid expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Position in the canonical expansion — the config's identity.
    pub index: usize,
    /// Strategy axis value.
    pub strategy: StrategyKind,
    /// Kernel axis value.
    pub kernel: KernelKind,
    /// Tier axis value.
    pub tier: TierKind,
    /// Noise axis value.
    pub noise: f64,
    /// Batch-size axis value.
    pub batch: usize,
    /// Fault-rate axis value.
    pub fault_rate: f64,
    /// Replicate-seed axis value.
    pub seed: u64,
    /// Dataset rows (shared grid shape).
    pub rows: usize,
    /// Experiment budget (shared grid shape).
    pub iters: usize,
    /// Injective per-config seed (strategy RNG, restarts).
    pub run_seed: u64,
    /// The grid's base seed (dataset seeds derive from it).
    pub base_seed: u64,
}

impl CampaignConfig {
    /// Canonical config key: every axis value, space-separated.
    pub fn key(&self) -> String {
        format!(
            "strategy={} kernel={} tier={} noise={} batch={} fault={} seed={}",
            self.strategy.name(),
            self.kernel.name(),
            self.tier.name(),
            self.noise,
            self.batch,
            self.fault_rate,
            self.seed
        )
    }

    /// Scenario-slice key: the config key minus strategy and replicate
    /// seed — the grouping the leaderboards rank strategies within.
    pub fn slice_key(&self) -> String {
        format!(
            "kernel={} tier={} noise={} batch={} fault={}",
            self.kernel.name(),
            self.tier.name(),
            self.noise,
            self.batch,
            self.fault_rate
        )
    }

    /// Seed for the synthetic dataset, partition, and fault oracle:
    /// derived from `(base_seed, noise, seed, rows)` only, so every
    /// strategy/tier/batch in a slice sees identical data, splits, and
    /// fault verdicts. (Strategy comparisons stay paired.)
    pub fn data_seed(&self) -> u64 {
        let mut s = mix(self.base_seed, 0x6772_6964); // "grid"
        s = mix(s, self.noise.to_bits());
        s = mix(s, self.seed);
        mix(s, self.rows as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> GridSpec {
        GridSpec {
            strategies: vec![StrategyKind::Random, StrategyKind::VarianceReduction],
            kernels: vec![KernelKind::Se, KernelKind::Matern52],
            noises: vec![0.5, 0.1],
            fault_rates: vec![0.2, 0.0],
            seeds: vec![3, 1, 2],
            ..GridSpec::default()
        }
    }

    #[test]
    fn expansion_size_and_index_identity() {
        let configs = sweep().expand().unwrap();
        assert_eq!(configs.len(), 2 * 2 * 2 * 2 * 3);
        for (i, c) in configs.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.run_seed, derived_seed(42, i));
        }
    }

    #[test]
    fn axis_declaration_order_is_irrelevant() {
        let a = sweep().expand().unwrap();
        let mut shuffled = sweep();
        shuffled.seeds = vec![2, 3, 1, 3, 3];
        shuffled.seeds.push(1);
        shuffled.noises = vec![0.1, 0.5, 0.1];
        shuffled.strategies = vec![
            StrategyKind::VarianceReduction,
            StrategyKind::Random,
            StrategyKind::VarianceReduction,
        ];
        let b = shuffled.expand().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_round_trips_canonical_text() {
        let text = "
            # a sweep
            name = demo
            strategy = random, vr
            kernel = m52, se
            noise = 0.5, 0.1
            fault = 0, 0.2
            seed = 0..4
            batch = 2, 1
        ";
        let spec = GridSpec::parse(text).unwrap();
        assert_eq!(spec.n_configs(), 2 * 2 * 2 * 2 * 2 * 4);
        let reparsed = GridSpec::parse(&spec.canonical_text().replace(' ', "\n")).unwrap();
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn unknown_keys_and_bad_values_are_errors() {
        assert!(GridSpec::parse("stratgy = vr").is_err());
        assert!(GridSpec::parse("strategy = gradient").is_err());
        assert!(GridSpec::parse("noise = -0.1").is_err());
        assert!(GridSpec::parse("fault = 1.0").is_err());
        assert!(GridSpec::parse("batch = 0").is_err());
        assert!(GridSpec::parse("seed = ").is_err());
    }

    #[test]
    fn data_seed_shared_across_strategies_not_replicates() {
        let configs = sweep().expand().unwrap();
        let a = &configs[0];
        let twin = configs
            .iter()
            .find(|c| {
                c.strategy != a.strategy && c.slice_key() == a.slice_key() && c.seed == a.seed
            })
            .unwrap();
        assert_eq!(a.data_seed(), twin.data_seed());
        let other = configs
            .iter()
            .find(|c| c.slice_key() == a.slice_key() && c.seed != a.seed)
            .unwrap();
        assert_ne!(a.data_seed(), other.data_seed());
    }
}
