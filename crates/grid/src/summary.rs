//! The `alperf-grid-v1` summary stream: one JSONL record per campaign.
//!
//! Line 1 is the meta record (schema, grid name, config count, the
//! canonical spec text, and whether timing fields are armed); every
//! following line summarizes one campaign, in config order. Rendering is
//! byte-deterministic: floats go through `alperf_obs::json::number`
//! (shortest round-trip formatting), field order is fixed, and the
//! trajectory digest is an FNV-1a 64 hash over the exact f64 bit
//! patterns — so "the same grid" means "the same bytes", which is what
//! the determinism and resume tests compare.
//!
//! Timing fields (`wall_ns`, `cpu_ns`) are zero unless the runner arms
//! `--timing`: clocks are observational and would break bit-identity
//! across widths, exactly like the obs layer's rule that timestamps are
//! only read under telemetry.

use crate::campaign::CampaignResult;
use crate::spec::{CampaignConfig, GridSpec};
use alperf_obs::json::{self, Json};
use std::fmt::Write as _;

/// Schema tag of the summary stream.
pub const SCHEMA: &str = "alperf-grid-v1";

/// Summary read / validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryError(pub String);

impl std::fmt::Display for SummaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "grid summary: {}", self.0)
    }
}

impl std::error::Error for SummaryError {}

/// FNV-1a 64 over a byte stream.
pub fn fnv1a64(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Digest of the RMSE and AMSD trajectories: FNV-1a 64 over the exact
/// f64 bit patterns (lengths prefixed), rendered as 16 hex digits.
pub fn trajectory_digest(rmse: &[f64], amsd: &[f64]) -> String {
    let series_bytes = |xs: &[f64]| -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + xs.len() * 8);
        out.extend_from_slice(&(xs.len() as u64).to_le_bytes());
        for x in xs {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        out
    };
    let mut bytes = series_bytes(rmse);
    bytes.extend(series_bytes(amsd));
    format!("{:016x}", fnv1a64(bytes))
}

fn num(v: f64) -> String {
    if v.is_finite() {
        json::number(v)
    } else {
        "null".into()
    }
}

/// Render the meta line (no trailing newline).
pub fn render_meta(spec: &GridSpec, n_configs: usize, timing: bool) -> String {
    let mut name = String::new();
    json::escape_into(&mut name, &spec.name);
    let mut spec_text = String::new();
    json::escape_into(&mut spec_text, &spec.canonical_text());
    format!(
        "{{\"schema\":\"{SCHEMA}\",\"grid\":{name},\"n_configs\":{n_configs},\
         \"base_seed\":{},\"timing\":{timing},\"spec\":{spec_text}}}",
        spec.base_seed
    )
}

/// Render one campaign's summary record (no trailing newline).
/// `wall_ns`/`cpu_ns` are whatever the executor measured — zero in the
/// default deterministic mode.
pub fn render_record(
    cfg: &CampaignConfig,
    res: &CampaignResult,
    wall_ns: u64,
    cpu_ns: u64,
) -> String {
    let mut key = String::new();
    json::escape_into(&mut key, &cfg.key());
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"i\":{},\"key\":{key},\"strategy\":\"{}\",\"kernel\":\"{}\",\"tier\":\"{}\",\
         \"noise\":{},\"batch\":{},\"fault\":{},\"seed\":{},\"run_seed\":{}",
        cfg.index,
        cfg.strategy.name(),
        cfg.kernel.name(),
        cfg.tier.name(),
        num(cfg.noise),
        cfg.batch,
        num(cfg.fault_rate),
        cfg.seed,
        cfg.run_seed,
    );
    match &res.error {
        None => out.push_str(",\"status\":\"ok\""),
        Some(msg) => {
            let mut err = String::new();
            json::escape_into(&mut err, msg);
            let _ = write!(out, ",\"status\":\"error\",\"err\":{err}");
        }
    }
    let first = |xs: &[f64]| xs.first().copied().unwrap_or(f64::NAN);
    let last = |xs: &[f64]| xs.last().copied().unwrap_or(f64::NAN);
    let min = |xs: &[f64]| xs.iter().copied().fold(f64::NAN, f64::min);
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            f64::NAN
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let _ = write!(
        out,
        ",\"iters\":{},\"degraded\":{},\"failures\":{},\"cost\":{},\
         \"rmse_first\":{},\"rmse_final\":{},\"rmse_min\":{},\"rmse_mean\":{},\
         \"amsd_first\":{},\"amsd_final\":{},\"traj\":\"{}\",\
         \"wall_ns\":{wall_ns},\"cpu_ns\":{cpu_ns}}}",
        res.iters,
        res.degraded,
        res.failures,
        num(res.cost),
        num(first(&res.rmse)),
        num(last(&res.rmse)),
        num(min(&res.rmse)),
        num(mean(&res.rmse)),
        num(first(&res.amsd)),
        num(last(&res.amsd)),
        trajectory_digest(&res.rmse, &res.amsd),
    );
    out
}

/// One parsed summary record — the fields the ranking layer consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRecord {
    /// Config index in the expansion.
    pub index: usize,
    /// Full config key.
    pub key: String,
    /// Strategy name.
    pub strategy: String,
    /// Scenario-slice key (kernel/tier/noise/batch/fault).
    pub slice: String,
    /// Replicate seed.
    pub seed: u64,
    /// `"ok"` or `"error"`.
    pub status: String,
    /// Measured iterations.
    pub iters: u64,
    /// Degraded (lost) iterations.
    pub degraded: u64,
    /// Attempts burned on lost experiments.
    pub failures: u64,
    /// Total charged cost (NaN for error records).
    pub cost: f64,
    /// Final test RMSE (NaN when absent).
    pub rmse_final: f64,
    /// Mean test RMSE over the trajectory (NaN when absent).
    pub rmse_mean: f64,
    /// Final pool AMSD (NaN when absent).
    pub amsd_final: f64,
    /// Trajectory digest (16 hex chars).
    pub traj: String,
}

/// A parsed summary file: meta fields + records.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryFile {
    /// Grid name from the meta line.
    pub grid: String,
    /// Config count the grid was expanded to.
    pub n_configs: usize,
    /// Canonical spec text from the meta line.
    pub spec: String,
    /// Whether timing fields were armed.
    pub timing: bool,
    /// Campaign records, in file order.
    pub records: Vec<SummaryRecord>,
}

fn get_f64(v: &Json, key: &str, line: usize) -> Result<f64, SummaryError> {
    match v.get(key) {
        Some(x) => Ok(x.as_f64().unwrap_or(f64::NAN)),
        None => Err(SummaryError(format!("line {line}: missing \"{key}\""))),
    }
}

fn get_str(v: &Json, key: &str, line: usize) -> Result<String, SummaryError> {
    v.get(key)
        .and_then(|x| x.as_str())
        .map(str::to_string)
        .ok_or_else(|| SummaryError(format!("line {line}: missing string \"{key}\"")))
}

/// Parse one record line (1-based `line` for error messages).
pub fn parse_record(text: &str, line: usize) -> Result<SummaryRecord, SummaryError> {
    let v = json::parse(text).map_err(|e| SummaryError(format!("line {line}: {e}")))?;
    let index = get_f64(&v, "i", line)? as usize;
    let (kernel, tier) = (get_str(&v, "kernel", line)?, get_str(&v, "tier", line)?);
    let noise = get_f64(&v, "noise", line)?;
    let batch = get_f64(&v, "batch", line)? as u64;
    let fault = get_f64(&v, "fault", line)?;
    Ok(SummaryRecord {
        index,
        key: get_str(&v, "key", line)?,
        strategy: get_str(&v, "strategy", line)?,
        slice: format!("kernel={kernel} tier={tier} noise={noise} batch={batch} fault={fault}"),
        seed: get_f64(&v, "seed", line)? as u64,
        status: get_str(&v, "status", line)?,
        iters: get_f64(&v, "iters", line)? as u64,
        degraded: get_f64(&v, "degraded", line)? as u64,
        failures: get_f64(&v, "failures", line)? as u64,
        cost: get_f64(&v, "cost", line)?,
        rmse_final: get_f64(&v, "rmse_final", line)?,
        rmse_mean: get_f64(&v, "rmse_mean", line)?,
        amsd_final: get_f64(&v, "amsd_final", line)?,
        traj: get_str(&v, "traj", line)?,
    })
}

/// Read a whole summary file from text. Records must be dense in config
/// order (index `k` on line `k + 2`) — the invariant the ordered
/// committer guarantees and resume relies on.
pub fn parse_summaries(text: &str) -> Result<SummaryFile, SummaryError> {
    let mut lines = text.lines();
    let meta_line = lines.next().ok_or(SummaryError("empty file".into()))?;
    let meta = json::parse(meta_line).map_err(|e| SummaryError(format!("meta line: {e}")))?;
    match meta.get("schema").and_then(|s| s.as_str()) {
        Some(SCHEMA) => {}
        Some(other) => return Err(SummaryError(format!("unknown schema {other:?}"))),
        None => return Err(SummaryError("meta line missing \"schema\"".into())),
    }
    let file = SummaryFile {
        grid: get_str(&meta, "grid", 1)?,
        n_configs: get_f64(&meta, "n_configs", 1)? as usize,
        spec: get_str(&meta, "spec", 1)?,
        timing: matches!(meta.get("timing"), Some(Json::Bool(true))),
        records: Vec::new(),
    };
    let mut file = file;
    for (k, line) in lines.enumerate() {
        let rec = parse_record(line, k + 2)?;
        if rec.index != k {
            return Err(SummaryError(format!(
                "line {}: config index {} out of order (expected {k})",
                k + 2,
                rec.index
            )));
        }
        file.records.push(rec);
    }
    if file.records.len() > file.n_configs {
        return Err(SummaryError(format!(
            "{} records for {} configs",
            file.records.len(),
            file.n_configs
        )));
    }
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::spec::GridSpec;

    fn tiny() -> (GridSpec, Vec<CampaignConfig>) {
        let spec = GridSpec {
            rows: 24,
            iters: 4,
            fault_rates: vec![0.2],
            seeds: vec![0, 1],
            ..GridSpec::default()
        }
        .canonicalize()
        .unwrap();
        let configs = spec.expand().unwrap();
        (spec, configs)
    }

    #[test]
    fn record_round_trips_through_the_reader() {
        let (spec, configs) = tiny();
        let mut text = render_meta(&spec, configs.len(), false);
        text.push('\n');
        for cfg in &configs {
            text.push_str(&render_record(cfg, &run_campaign(cfg), 0, 0));
            text.push('\n');
        }
        let file = parse_summaries(&text).unwrap();
        assert_eq!(file.grid, "grid");
        assert_eq!(file.n_configs, 2);
        assert_eq!(file.spec, spec.canonical_text());
        assert_eq!(file.records.len(), 2);
        for (k, rec) in file.records.iter().enumerate() {
            assert_eq!(rec.index, k);
            assert_eq!(rec.key, configs[k].key());
            assert_eq!(rec.slice, configs[k].slice_key());
            assert_eq!(rec.status, "ok");
            assert!(rec.rmse_final.is_finite());
            assert_eq!(rec.traj.len(), 16);
        }
    }

    #[test]
    fn out_of_order_and_bad_schema_rejected() {
        let (spec, configs) = tiny();
        let rec = render_record(&configs[1], &run_campaign(&configs[1]), 0, 0);
        let text = format!("{}\n{rec}\n", render_meta(&spec, configs.len(), false));
        let err = parse_summaries(&text).unwrap_err();
        assert!(err.0.contains("out of order"), "{err}");
        assert!(parse_summaries("{\"schema\":\"nope\"}\n").is_err());
        assert!(parse_summaries("").is_err());
    }

    #[test]
    fn digest_tracks_exact_bits() {
        let a = trajectory_digest(&[1.0, 2.0], &[0.5]);
        assert_eq!(a, trajectory_digest(&[1.0, 2.0], &[0.5]));
        assert_ne!(a, trajectory_digest(&[1.0, 2.0 + 1e-15], &[0.5]));
        // Length-prefixing keeps boundary shifts distinct.
        assert_ne!(
            trajectory_digest(&[1.0, 2.0], &[]),
            trajectory_digest(&[1.0], &[2.0])
        );
    }

    #[test]
    fn error_records_render_with_null_metrics() {
        let (_, configs) = tiny();
        let res = crate::campaign::CampaignResult {
            rmse: vec![],
            amsd: vec![],
            cost: 0.0,
            iters: 0,
            degraded: 0,
            failures: 0,
            error: Some("fit exploded \"badly\"".into()),
        };
        let line = render_record(&configs[0], &res, 0, 0);
        let rec = parse_record(&line, 2).unwrap();
        assert_eq!(rec.status, "error");
        assert!(rec.rmse_final.is_nan());
        assert!(line.contains("\"rmse_final\":null"));
    }
}
