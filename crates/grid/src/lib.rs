#![warn(missing_docs)]
//! # alperf-grid
//!
//! Campaign-grid orchestrator: thousands of deterministic AL campaigns
//! as one workload. A declarative [`GridSpec`] (strategy × kernel ×
//! surrogate tier × noise × batch × fault rate × replicate seed)
//! expands into a canonical config list; the executor runs every config
//! across worker threads and streams one `alperf-grid-v1` JSONL summary
//! per campaign, **bit-identical for any worker width, commit mode, or
//! kill/resume cycle**; the ranking layer turns summary files into
//! per-slice strategy leaderboards and pairwise bootstrap significance
//! verdicts — the paper's "variance reduction beats random" claim,
//! tested across a whole scenario space instead of one configuration.
//!
//! ```text
//! GridSpec ──expand──▶ [CampaignConfig] ──run_grid──▶ summaries.jsonl
//!                                                        │
//!                              leaderboards / significance / claims
//! ```
//!
//! * [`spec`] — axes, canonicalization, cartesian expansion, and the
//!   splitmix64 per-config seed derivation (injective by construction).
//! * [`campaign`] — one campaign as a pure function of its config:
//!   synthetic scenario, AL loop (serial or batched rounds), fault
//!   degradation through the oracle machinery.
//! * [`exec`] — the worker pool with ordered commits, streaming/buffered
//!   summary modes, and the resume protocol.
//! * [`summary`] — the `alperf-grid-v1` schema: byte-deterministic
//!   rendering, trajectory digests, and the reader.
//! * [`rank`] — leaderboards, pairwise significance (via
//!   `alperf_trace::bootstrap`), and the paper-claims rollup.

pub mod campaign;
pub mod exec;
pub mod rank;
pub mod spec;
pub mod summary;

pub use campaign::{run_campaign, CampaignResult};
pub use exec::{run_grid, CommitMode, ExecConfig, GridError, GridReport};
pub use rank::{
    claim_counts, leaderboards, render_claims, render_leaderboards, render_significance,
    significance, PairVerdict, RankConfig, SliceBoard,
};
pub use spec::{derived_seed, CampaignConfig, GridSpec, KernelKind, StrategyKind, TierKind};
pub use summary::{parse_summaries, SummaryError, SummaryFile, SummaryRecord};
