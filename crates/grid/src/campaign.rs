//! One grid campaign: synthesize the scenario's dataset, run the AL
//! loop under the config's strategy/kernel/tier/fault axes, and reduce
//! the run to the summary trajectories.
//!
//! Everything here is a pure function of the [`CampaignConfig`] — no
//! clocks, no thread identity, no global state — which is what lets the
//! executor run campaigns on any number of workers in any order and
//! still commit bit-identical summaries.
//!
//! Batch sizes > 1 run a round-based variant of the loop: variance
//! reduction selects through the fantasy-update machinery in
//! `alperf_al::batch`, cost efficiency takes the top-q score in one
//! prediction pass, and random sampling draws q distinct candidates;
//! each round then measures the whole batch through the fault oracle
//! before the next refit.

use crate::spec::{mix, CampaignConfig, KernelKind, StrategyKind, TierKind};
use alperf_al::oracle::{ExperimentOracle, ExperimentOutcome, SeededFaultOracle};
use alperf_al::runner::{run_al_with_oracle, AlConfig};
use alperf_al::strategy::{CostEfficiency, RandomSampling, Strategy, VarianceReduction};
use alperf_data::partition::Partition;
use alperf_gp::kernel::{Kernel, Matern32, Matern52, RationalQuadratic, SquaredExponential};
use alperf_gp::noise::NoiseFloor;
use alperf_gp::optimize::{fit_surrogate, ApproxConfig, FitTier, GprConfig};
use alperf_linalg::matrix::Matrix;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Input span of the synthetic 1-D scenario.
const X_SPAN: f64 = 8.0;
/// Training rows seeded before AL starts.
const N_INITIAL: usize = 4;
/// Fraction of the non-initial rows in the candidate pool (the rest is
/// the held-out check set the RMSE trajectory is computed on).
const ACTIVE_FRACTION: f64 = 0.8;

/// Everything the summary record needs about one finished campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Per-iteration (or per-round, for batches) test RMSE.
    pub rmse: Vec<f64>,
    /// Per-iteration mean predictive SD over the remaining pool.
    pub amsd: Vec<f64>,
    /// Total cost charged: initial design + measured + lost experiments.
    pub cost: f64,
    /// Measured iterations (length of the metric history).
    pub iters: usize,
    /// Degraded iterations: experiments lost to faults.
    pub degraded: usize,
    /// Execution attempts burned on lost experiments.
    pub failures: u32,
    /// `None` when the campaign completed; `Some(msg)` when the
    /// surrogate fit failed (the config is still committed, as an error
    /// record, so grids never stall on a bad corner of the space).
    pub error: Option<String>,
}

fn make_kernel(kind: KernelKind) -> Box<dyn Kernel> {
    match kind {
        KernelKind::Se => Box::new(SquaredExponential::unit()),
        KernelKind::Matern32 => Box::new(Matern32::new(1.0, 1.0)),
        KernelKind::Matern52 => Box::new(Matern52::new(1.0, 1.0)),
        KernelKind::RationalQuadratic => Box::new(RationalQuadratic::new(1.0, 1.0, 1.0)),
    }
}

fn make_strategy(kind: StrategyKind) -> Box<dyn Strategy> {
    match kind {
        StrategyKind::VarianceReduction => Box::new(VarianceReduction),
        StrategyKind::CostEfficiency => Box::new(CostEfficiency),
        StrategyKind::Random => Box::new(RandomSampling),
    }
}

fn gpr_config(cfg: &CampaignConfig) -> GprConfig {
    let gpr = GprConfig::new(make_kernel(cfg.kernel))
        .with_noise_floor(NoiseFloor::Fixed(0.05))
        .with_restarts(2)
        .with_seed(mix(cfg.run_seed, 0x6770)); // "gp"
    match cfg.tier {
        TierKind::Exact => gpr.with_tier(FitTier::Exact),
        // Tiny campaigns: rank/subsample caps sized to the training sets
        // the grid actually produces, so the sparse path really runs.
        TierKind::Approximate => gpr
            .with_tier(FitTier::Approximate)
            .with_approx(ApproxConfig {
                max_rank: 12,
                hyper_subsample: 24,
                gate_max_n: 0,
                ..ApproxConfig::default()
            }),
        TierKind::Auto => gpr.with_tier(FitTier::Auto),
    }
}

/// The scenario: inputs, noisy response, per-row cost, and the
/// initial/pool/check partition. Depends only on
/// [`CampaignConfig::data_seed`] (plus rows/noise), so every strategy in
/// a slice competes on identical data — see the spec module docs.
pub fn synthesize(cfg: &CampaignConfig) -> (Matrix, Vec<f64>, Vec<f64>, Partition) {
    let n = cfg.rows;
    let mut rng = StdRng::seed_from_u64(cfg.data_seed());
    let mut y = Vec::with_capacity(n);
    let mut cost = Vec::with_capacity(n);
    let x = Matrix::from_fn(n, 1, |i, _| i as f64 * X_SPAN / (n - 1) as f64);
    for i in 0..n {
        let xi = x.row(i)[0];
        // A smooth trend with curvature — the shape the paper's HPGMG
        // response surfaces have — plus uniform observation noise.
        let clean = (xi * 0.9).sin() * 2.0 + 0.3 * xi;
        let eps = if cfg.noise > 0.0 {
            rng.gen_range(-cfg.noise..cfg.noise)
        } else {
            0.0
        };
        y.push(clean + eps);
        // Heterogeneous costs so cost efficiency has a real trade-off.
        cost.push(1.0 + 0.25 * xi * xi);
    }
    let part = Partition::random(n, N_INITIAL, ACTIVE_FRACTION, mix(cfg.data_seed(), 0x7061)); // "pa"
    (x, y, cost, part)
}

/// Run one campaign to completion. Never panics on fit failure — the
/// error is carried in [`CampaignResult::error`] instead.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignResult {
    let (x, y, cost, part) = synthesize(cfg);
    let oracle = SeededFaultOracle::new(mix(cfg.data_seed(), 0x666c74), cfg.fault_rate); // "flt"
    if cfg.batch <= 1 {
        run_serial(cfg, &x, &y, &cost, &part, &oracle)
    } else {
        run_batched(cfg, &x, &y, &cost, &part, &oracle)
    }
}

fn error_result(msg: String) -> CampaignResult {
    CampaignResult {
        rmse: Vec::new(),
        amsd: Vec::new(),
        cost: 0.0,
        iters: 0,
        degraded: 0,
        failures: 0,
        error: Some(msg),
    }
}

/// Batch size 1: the paper loop, via the standard runner (serial
/// scheduling — grid-level pipelining happens in the executor's summary
/// stream, never inside the numerics).
fn run_serial(
    cfg: &CampaignConfig,
    x: &Matrix,
    y: &[f64],
    cost: &[f64],
    part: &Partition,
    oracle: &dyn ExperimentOracle,
) -> CampaignResult {
    let mut al_cfg = AlConfig::new(gpr_config(cfg));
    al_cfg.max_iters = cfg.iters;
    al_cfg.seed = cfg.run_seed;
    let mut strategy = make_strategy(cfg.strategy);
    let run = match run_al_with_oracle(x, y, cost, part, strategy.as_mut(), oracle, &al_cfg) {
        Ok(run) => run,
        Err(e) => return error_result(format!("{e}")),
    };
    let initial_cost: f64 = part.initial.iter().map(|&i| cost[i]).sum();
    let measured_cost: f64 = run.history.iter().map(|r| cost[r.chosen_row]).sum();
    let lost_cost: f64 = run.lost.iter().map(|l| l.cost).sum();
    let failures: u32 = run.lost.iter().map(|l| l.attempts).sum();
    CampaignResult {
        rmse: run.rmse_series(),
        amsd: run.amsd_series(),
        cost: initial_cost + measured_cost + lost_cost,
        iters: run.history.len(),
        degraded: run.lost.len(),
        failures,
        error: None,
    }
}

/// Batch sizes > 1: round-based AL. Each round fits the surrogate,
/// records the round's RMSE/AMSD, selects `q` candidates with the
/// strategy's batch rule, and measures them all through the oracle.
fn run_batched(
    cfg: &CampaignConfig,
    x: &Matrix,
    y: &[f64],
    cost: &[f64],
    part: &Partition,
    oracle: &dyn ExperimentOracle,
) -> CampaignResult {
    let gpr = gpr_config(cfg);
    let mut train: Vec<usize> = part.initial.clone();
    let mut pool: Vec<usize> = part.active.clone();
    let test: Vec<usize> = part.test.clone();
    let mut rng = StdRng::seed_from_u64(cfg.run_seed);
    let mut total_cost: f64 = train.iter().map(|&i| cost[i]).sum();
    let mut rmse_series = Vec::new();
    let mut amsd_series = Vec::new();
    let (mut iters, mut degraded, mut failures) = (0usize, 0usize, 0u32);
    let mut budget = cfg.iters;

    while budget > 0 && !pool.is_empty() {
        let xt = x.select_rows(&train);
        let yt: Vec<f64> = train.iter().map(|&i| y[i]).collect();
        let model = match fit_surrogate(&xt, &yt, &gpr) {
            Ok((m, _)) => m,
            Err(e) => return error_result(format!("{e}")),
        };
        let preds = match model.predict_batch(&x.select_rows(&pool)) {
            Ok(p) => p,
            Err(e) => return error_result(format!("{e}")),
        };
        if !test.is_empty() {
            let tp = match model.predict_batch(&x.select_rows(&test)) {
                Ok(p) => p,
                Err(e) => return error_result(format!("{e}")),
            };
            let se: f64 = tp
                .iter()
                .zip(&test)
                .map(|(p, &i)| (p.mean - y[i]) * (p.mean - y[i]))
                .sum();
            rmse_series.push((se / test.len() as f64).sqrt());
        } else {
            rmse_series.push(0.0);
        }
        amsd_series.push(preds.iter().map(|p| p.std).sum::<f64>() / preds.len() as f64);

        let q = cfg.batch.min(budget).min(pool.len());
        let positions: Vec<usize> = match cfg.strategy {
            StrategyKind::VarianceReduction => {
                match alperf_al::batch::select_batch(&model, x, &train, &yt, &pool, q) {
                    Ok(p) => p,
                    Err(e) => return error_result(format!("{e}")),
                }
            }
            StrategyKind::CostEfficiency => {
                // Top-q by SD per unit cost in one prediction pass.
                let mut scored: Vec<(usize, f64)> = preds
                    .iter()
                    .enumerate()
                    .map(|(p, pr)| (p, pr.std / cost[pool[p]].max(1e-12)))
                    .collect();
                scored.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                scored.into_iter().take(q).map(|(p, _)| p).collect()
            }
            StrategyKind::Random => {
                // q distinct positions, Fisher–Yates style over indices.
                let mut open: Vec<usize> = (0..pool.len()).collect();
                let mut picks = Vec::with_capacity(q);
                for _ in 0..q {
                    let j = rng.gen_range(0..open.len());
                    picks.push(open.swap_remove(j));
                }
                picks
            }
        };

        // Measure the whole batch, then remove the rows from the pool
        // (descending position order keeps earlier positions valid).
        let mut chosen: Vec<usize> = positions.iter().map(|&p| pool[p]).collect();
        let mut sorted_positions = positions.clone();
        sorted_positions.sort_unstable_by(|a, b| b.cmp(a));
        for p in sorted_positions {
            pool.swap_remove(p);
        }
        chosen.sort_unstable(); // row order within a round is not a choice
        for row in chosen {
            total_cost += cost[row];
            budget -= 1;
            match oracle.run_experiment(row) {
                ExperimentOutcome::Measured { attempts: _ } => {
                    train.push(row);
                    iters += 1;
                }
                ExperimentOutcome::Lost { attempts } => {
                    degraded += 1;
                    failures += attempts;
                }
            }
        }
    }

    CampaignResult {
        rmse: rmse_series,
        amsd: amsd_series,
        cost: total_cost,
        iters,
        degraded,
        failures,
        error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GridSpec;

    fn config(mutate: impl FnOnce(&mut GridSpec)) -> CampaignConfig {
        let mut spec = GridSpec {
            rows: 24,
            iters: 6,
            ..GridSpec::default()
        };
        mutate(&mut spec);
        spec.expand().unwrap().into_iter().next().unwrap()
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = config(|s| s.fault_rates = vec![0.2]);
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a, b);
        assert!(a.error.is_none());
        assert!(a.iters + a.degraded > 0);
    }

    #[test]
    fn faults_degrade_but_do_not_abort() {
        let clean = run_campaign(&config(|_| {}));
        let faulty = run_campaign(&config(|s| s.fault_rates = vec![0.45]));
        assert_eq!(clean.degraded, 0);
        assert_eq!(clean.failures, 0);
        assert!(faulty.degraded > 0, "{faulty:?}");
        assert!(faulty.failures > 0);
        assert!(faulty.error.is_none());
    }

    #[test]
    fn batched_rounds_cover_all_strategies() {
        for kind in crate::spec::StrategyKind::ALL {
            let cfg = config(|s| {
                s.batches = vec![3];
                s.strategies = vec![kind];
                s.fault_rates = vec![0.2];
            });
            let r = run_campaign(&cfg);
            assert!(r.error.is_none(), "{kind:?}: {r:?}");
            assert_eq!(r.iters + r.degraded, cfg.iters, "{kind:?}");
            assert!(!r.rmse.is_empty() && r.rmse.len() == r.amsd.len());
            assert_eq!(run_campaign(&cfg), r, "{kind:?} not deterministic");
        }
    }

    #[test]
    fn rmse_improves_on_the_clean_scenario() {
        let cfg = config(|s| {
            s.rows = 32;
            s.iters = 10;
            s.noises = vec![0.05];
        });
        let r = run_campaign(&cfg);
        let first = r.rmse.first().copied().unwrap();
        let last = r.rmse.last().copied().unwrap();
        assert!(last < first, "AL did not reduce RMSE: {first} -> {last}");
    }
}
