//! The grid executor: run every config of an expansion across worker
//! threads and commit one summary line per campaign **in config order**,
//! bit-identically for any worker count.
//!
//! Determinism argument, in three parts:
//!
//! 1. each campaign is a pure function of its [`CampaignConfig`]
//!    (campaign module), so *what* a worker computes never depends on
//!    which worker runs it or when;
//! 2. workers claim config indices from a shared atomic counter
//!    (dynamic load balancing — campaign durations vary wildly across
//!    the fault/batch axes), and each runs its campaign under
//!    `with_threads(1, ..)` so nested pool parallelism cannot introduce
//!    a second scheduling dimension;
//! 3. finished records flow to the committer through a channel and wait
//!    in a reorder buffer until their index is next — the file is an
//!    append-only log in config order no matter the completion order.
//!
//! Two commit modes exist only to *prove* the stream layer is inert:
//! [`CommitMode::Streaming`] writes each record as it commits (the
//! pipelined default — summaries overlap campaign execution),
//! [`CommitMode::Buffered`] holds everything and writes once at the
//! end. Byte-identical output across modes is part of the determinism
//! test, and the streaming overhead is budgeted in `BENCH_grid.json`.
//!
//! Resume: re-running onto a partially written file validates the meta
//! line against the spec byte-for-byte, keeps the longest valid prefix
//! of complete records (a torn tail line from a kill is discarded), and
//! re-executes only the remaining configs — producing, by part 1, the
//! exact bytes the uninterrupted run would have written.

use crate::campaign::run_campaign;
use crate::spec::{CampaignConfig, GridSpec, SpecError};
use crate::summary::{parse_record, render_meta, render_record};
use alperf_linalg::threads;
use alperf_obs::names::{
    GRID_CONFIGS_DONE, GRID_CONFIG_ERRORS, GRID_DEGRADED, GRID_RUN_START, LABEL_GRID,
    LABEL_STRATEGY,
};
use alperf_obs::Value;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// How committed records reach the output file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitMode {
    /// Write each record the moment it commits (summary stream pipelined
    /// against campaign execution; flushed per line so a killed run
    /// loses at most the torn tail resume discards).
    #[default]
    Streaming,
    /// Hold all records in memory and write once after the last commit.
    Buffered,
}

/// Executor options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecConfig {
    /// Commit mode (stream vs buffer; bytes are identical either way).
    pub mode: CommitMode,
    /// Record real wall/CPU nanoseconds per campaign. Forfeits
    /// byte-identity across runs — off in the deterministic default.
    pub timing: bool,
    /// Resume onto an existing partial summary file instead of starting
    /// over.
    pub resume: bool,
}

/// What a grid run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridReport {
    /// Configs in the expansion.
    pub n_configs: usize,
    /// Configs skipped because a resume found them already committed.
    pub skipped: usize,
    /// Configs executed this run.
    pub executed: usize,
    /// Campaigns that ended in an error record.
    pub errors: usize,
    /// Campaigns with at least one degraded iteration.
    pub degraded: usize,
    /// Worker threads used.
    pub width: usize,
}

/// Grid execution error.
#[derive(Debug)]
pub enum GridError {
    /// Spec validation failed.
    Spec(SpecError),
    /// Filesystem failure on the summary file.
    Io(std::io::Error),
    /// The resume target does not match this grid.
    Resume(String),
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::Spec(e) => write!(f, "{e}"),
            GridError::Io(e) => write!(f, "grid io: {e}"),
            GridError::Resume(m) => write!(f, "grid resume: {m}"),
        }
    }
}

impl std::error::Error for GridError {}

impl From<SpecError> for GridError {
    fn from(e: SpecError) -> Self {
        GridError::Spec(e)
    }
}

impl From<std::io::Error> for GridError {
    fn from(e: std::io::Error) -> Self {
        GridError::Io(e)
    }
}

/// Thread CPU time from `/proc/thread-self/stat` (utime + stime, in
/// clock ticks — assumed 100 Hz, the Linux default). Best-effort: 0 when
/// unavailable. Only consulted when timing is armed.
fn thread_cpu_ns() -> u64 {
    let Ok(stat) = fs::read_to_string("/proc/thread-self/stat") else {
        return 0;
    };
    // Field 2 (comm) may contain spaces; everything after the closing
    // paren is well-formed. utime/stime are fields 14/15 (1-based), so
    // offsets 11/12 in the remainder that starts at field 3.
    let Some(rest) = stat.rsplit(')').next() else {
        return 0;
    };
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let ticks = |i: usize| {
        fields
            .get(i)
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0)
    };
    (ticks(11) + ticks(12)) * 10_000_000
}

/// The longest valid prefix of `text` for resuming `spec`: checks the
/// meta line byte-for-byte, then every complete record line against the
/// expansion (index + key). Returns (prefix bytes, records kept).
fn valid_prefix(
    text: &str,
    meta_line: &str,
    configs: &[CampaignConfig],
) -> Result<(usize, usize), GridError> {
    let Some(first_end) = text.find('\n') else {
        // No complete meta line survived — start over.
        return Ok((0, 0));
    };
    if &text[..first_end] != meta_line {
        return Err(GridError::Resume(format!(
            "existing file is a different grid (meta line mismatch)\n  file: {}\n  spec: {meta_line}",
            &text[..first_end]
        )));
    }
    let mut offset = first_end + 1;
    let mut kept = 0usize;
    while kept < configs.len() {
        let rest = &text[offset..];
        let Some(line_end) = rest.find('\n') else {
            break; // torn tail from a kill — discard
        };
        let line = &rest[..line_end];
        let Ok(rec) = parse_record(line, kept + 2) else {
            break; // malformed line: discard it and everything after
        };
        if rec.index != kept || rec.key != configs[kept].key() {
            return Err(GridError::Resume(format!(
                "record {} does not match the expansion (got index {}, key {:?})",
                kept, rec.index, rec.key
            )));
        }
        offset += line_end + 1;
        kept += 1;
    }
    Ok((offset, kept))
}

struct Commit {
    index: usize,
    line: String,
    strategy: &'static str,
    error: bool,
    degraded: bool,
}

/// Expand `spec` and run every config, writing the summary stream to
/// `out`. See the module docs for the determinism and resume contracts.
pub fn run_grid(spec: &GridSpec, out: &Path, exec: &ExecConfig) -> Result<GridReport, GridError> {
    let spec = spec.clone().canonicalize()?;
    let configs = spec.expand()?;
    let meta_line = render_meta(&spec, configs.len(), exec.timing);

    // Resume: keep the valid prefix (truncating any torn tail in place).
    let mut start = 0usize;
    if exec.resume {
        if let Ok(existing) = fs::read_to_string(out) {
            let (prefix_bytes, kept) = valid_prefix(&existing, &meta_line, &configs)?;
            if prefix_bytes > 0 {
                if prefix_bytes < existing.len() {
                    fs::write(out, &existing.as_bytes()[..prefix_bytes])?;
                }
                start = kept;
            }
        }
    }
    let mut file = if start > 0 {
        fs::OpenOptions::new().append(true).open(out)?
    } else {
        let mut f = fs::File::create(out)?;
        f.write_all(meta_line.as_bytes())?;
        f.write_all(b"\n")?;
        f
    };

    let remaining = configs.len() - start;
    let width = threads::current().max(1).min(remaining.max(1));
    let obs_on = alperf_obs::enabled();
    if obs_on {
        alperf_obs::record(
            GRID_RUN_START,
            &[
                ("grid", Value::Str(spec.name.as_str())),
                ("n_configs", Value::U64(configs.len() as u64)),
                ("resumed_at", Value::U64(start as u64)),
                ("width", Value::U64(width as u64)),
            ],
        );
    }
    let done = alperf_obs::counter_vec(GRID_CONFIGS_DONE, &[LABEL_GRID, LABEL_STRATEGY]);
    let errs = alperf_obs::counter_vec(GRID_CONFIG_ERRORS, &[LABEL_GRID, LABEL_STRATEGY]);
    let degr = alperf_obs::counter_vec(GRID_DEGRADED, &[LABEL_GRID, LABEL_STRATEGY]);
    let watchdog_key = format!("grid:{}", spec.name);

    let next = AtomicUsize::new(start);
    let (tx, rx) = mpsc::channel::<Commit>();
    let timing = exec.timing;
    let (mut executed, mut errors, mut degraded_total) = (0usize, 0usize, 0usize);
    std::thread::scope(|scope| -> Result<(), GridError> {
        for _ in 0..width {
            let tx = tx.clone();
            let next = &next;
            let configs = &configs;
            scope.spawn(move || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= configs.len() {
                        break;
                    }
                    let cfg = &configs[i];
                    // Campaigns are the unit of parallelism; nested pool
                    // parallelism would not break determinism (the pool
                    // reductions are order-fixed) but oversubscribes.
                    let (res, wall_ns, cpu_ns) = threads::with_threads(1, || {
                        if timing {
                            let t0 = std::time::Instant::now();
                            let c0 = thread_cpu_ns();
                            let res = run_campaign(cfg);
                            (res, t0.elapsed().as_nanos() as u64, thread_cpu_ns() - c0)
                        } else {
                            (run_campaign(cfg), 0, 0)
                        }
                    });
                    let commit = Commit {
                        index: i,
                        line: render_record(cfg, &res, wall_ns, cpu_ns),
                        strategy: cfg.strategy.name(),
                        error: res.error.is_some(),
                        degraded: res.degraded > 0,
                    };
                    if tx.send(commit).is_err() {
                        break; // committer bailed on an io error
                    }
                }
            });
        }
        drop(tx);

        // The committer: reorder-buffer until each index is next, then
        // append in config order.
        let mut pending: BTreeMap<usize, Commit> = BTreeMap::new();
        let mut next_commit = start;
        let mut buffered = String::new();
        for commit in rx {
            pending.insert(commit.index, commit);
            while let Some(c) = pending.remove(&next_commit) {
                match exec.mode {
                    CommitMode::Streaming => {
                        file.write_all(c.line.as_bytes())?;
                        file.write_all(b"\n")?;
                        file.flush()?;
                    }
                    CommitMode::Buffered => {
                        buffered.push_str(&c.line);
                        buffered.push('\n');
                    }
                }
                executed += 1;
                errors += c.error as usize;
                degraded_total += c.degraded as usize;
                if obs_on {
                    done.with(&[spec.name.as_str(), c.strategy]).inc();
                    if c.error {
                        errs.with(&[spec.name.as_str(), c.strategy]).inc();
                    }
                    if c.degraded {
                        degr.with(&[spec.name.as_str(), c.strategy]).inc();
                    }
                    alperf_obs::watchdog::global().beat(&watchdog_key);
                }
                next_commit += 1;
            }
        }
        debug_assert!(pending.is_empty());
        if exec.mode == CommitMode::Buffered {
            file.write_all(buffered.as_bytes())?;
            file.flush()?;
        }
        Ok(())
    })?;
    if obs_on {
        alperf_obs::watchdog::global().clear(&watchdog_key);
    }

    Ok(GridReport {
        n_configs: configs.len(),
        skipped: start,
        executed,
        errors,
        degraded: degraded_total,
        width,
    })
}
