//! Leaderboards and significance verdicts over a summary stream.
//!
//! Everything here works from parsed [`SummaryRecord`]s alone — no
//! re-execution, which is the point: a thousand-campaign grid reduces
//! to a JSONL file anyone can re-rank offline.
//!
//! Records group into **scenario slices** (kernel × tier × noise ×
//! batch × fault); within a slice each strategy's replicate seeds give
//! it a sample of final RMSEs. The leaderboard ranks strategies by mean
//! final RMSE; pairwise verdicts come from the shared bootstrap in
//! `alperf_trace::bootstrap` (the same machinery the trace diff gate
//! uses), with its typed degenerate reasons rendered instead of a fake
//! "significant". Because replicates share datasets and fault verdicts
//! across strategies (spec module), comparisons are paired by
//! construction.
//!
//! Determinism: groups live in `BTreeMap`s, per-comparison RNG seeds
//! derive from (rank seed, slice, pair) — record order, slice order,
//! and comparison order cannot change a verdict or a byte of output.

use crate::summary::{fnv1a64, SummaryRecord};
use alperf_trace::bootstrap::{bootstrap_delta_pct, Verdict};
use rand::{rngs::StdRng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Ranking options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankConfig {
    /// Seed for the significance bootstraps.
    pub seed: u64,
    /// Bootstrap resamples per pairwise comparison.
    pub resamples: usize,
    /// Minimum replicates per strategy to attempt a comparison.
    pub min_count: usize,
    /// |delta| (percent) a significant difference must exceed.
    pub threshold_pct: f64,
}

impl Default for RankConfig {
    fn default() -> Self {
        RankConfig {
            seed: 42,
            resamples: 400,
            min_count: 2,
            threshold_pct: 1.0,
        }
    }
}

/// One leaderboard row: a strategy's aggregate within a slice.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardRow {
    /// Strategy name.
    pub strategy: String,
    /// Replicates aggregated (ok records with a finite final RMSE).
    pub n: usize,
    /// Mean final RMSE (the ranking key, ascending).
    pub mean_rmse: f64,
    /// Mean trajectory-average RMSE.
    pub mean_rmse_mean: f64,
    /// Mean total cost.
    pub mean_cost: f64,
    /// Total degraded iterations across replicates.
    pub degraded: u64,
}

/// A ranked slice.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceBoard {
    /// Slice key (kernel/tier/noise/batch/fault).
    pub slice: String,
    /// Rows, best (lowest mean final RMSE) first.
    pub rows: Vec<BoardRow>,
    /// Records skipped in this slice (error status / non-finite RMSE).
    pub skipped: usize,
}

/// One pairwise significance verdict within a slice.
#[derive(Debug, Clone, PartialEq)]
pub struct PairVerdict {
    /// Slice key.
    pub slice: String,
    /// First strategy (side A of the bootstrap).
    pub a: String,
    /// Second strategy (side B).
    pub b: String,
    /// The bootstrap verdict (delta is B relative to A; RMSE is
    /// lower-is-better, so a significant negative delta means B wins).
    pub verdict: Verdict,
}

impl PairVerdict {
    /// Winner's name, when the difference is significant.
    pub fn winner(&self) -> Option<&str> {
        if !self.verdict.significant {
            return None;
        }
        Some(if self.verdict.delta_pct < 0.0 {
            &self.b
        } else {
            &self.a
        })
    }
}

/// ok-status records with a finite final RMSE, grouped
/// slice → strategy → replicate samples, sorted by replicate seed so the
/// bootstrap sees the same sample vector no matter how the input records
/// were ordered (and paired comparisons line up seed-for-seed).
type Grouped<'a> = BTreeMap<&'a str, BTreeMap<&'a str, Vec<&'a SummaryRecord>>>;

fn group(records: &[SummaryRecord]) -> (Grouped<'_>, BTreeMap<&str, usize>) {
    let mut grouped: Grouped = BTreeMap::new();
    let mut skipped: BTreeMap<&str, usize> = BTreeMap::new();
    for r in records {
        if r.status == "ok" && r.rmse_final.is_finite() {
            grouped
                .entry(r.slice.as_str())
                .or_default()
                .entry(r.strategy.as_str())
                .or_default()
                .push(r);
        } else {
            *skipped.entry(r.slice.as_str()).or_default() += 1;
        }
    }
    for by_strategy in grouped.values_mut() {
        for recs in by_strategy.values_mut() {
            recs.sort_by_key(|r| (r.seed, r.index));
        }
    }
    (grouped, skipped)
}

/// Build one leaderboard per slice, best strategy first (ties broken by
/// name for byte-stable output).
pub fn leaderboards(records: &[SummaryRecord]) -> Vec<SliceBoard> {
    let (grouped, skipped) = group(records);
    let mut boards = Vec::with_capacity(grouped.len());
    for (slice, by_strategy) in grouped {
        let mut rows: Vec<BoardRow> = by_strategy
            .into_iter()
            .map(|(strategy, recs)| {
                let n = recs.len();
                let mean = |f: &dyn Fn(&SummaryRecord) -> f64| {
                    recs.iter().map(|r| f(r)).sum::<f64>() / n as f64
                };
                BoardRow {
                    strategy: strategy.to_string(),
                    n,
                    mean_rmse: mean(&|r| r.rmse_final),
                    mean_rmse_mean: mean(&|r| r.rmse_mean),
                    mean_cost: mean(&|r| r.cost),
                    degraded: recs.iter().map(|r| r.degraded).sum(),
                }
            })
            .collect();
        rows.sort_by(|x, y| {
            x.mean_rmse
                .partial_cmp(&y.mean_rmse)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| x.strategy.cmp(&y.strategy))
        });
        boards.push(SliceBoard {
            slice: slice.to_string(),
            rows,
            skipped: skipped.get(slice).copied().unwrap_or(0),
        });
    }
    boards
}

/// Pairwise bootstrap verdicts for every strategy pair in every slice
/// (pairs in lexicographic order). Samples are final RMSEs across
/// replicate seeds.
pub fn significance(records: &[SummaryRecord], cfg: &RankConfig) -> Vec<PairVerdict> {
    let (grouped, _) = group(records);
    let mut out = Vec::new();
    for (slice, by_strategy) in grouped {
        let strategies: Vec<&str> = by_strategy.keys().copied().collect();
        for (i, &a) in strategies.iter().enumerate() {
            for &b in &strategies[i + 1..] {
                let xs: Vec<f64> = by_strategy[a].iter().map(|r| r.rmse_final).collect();
                let ys: Vec<f64> = by_strategy[b].iter().map(|r| r.rmse_final).collect();
                // Per-comparison seed: independent of slice/pair
                // enumeration order.
                let pair_seed = crate::spec::mix(
                    cfg.seed ^ fnv1a64(slice.bytes()),
                    fnv1a64(format!("{a}|{b}").bytes()),
                );
                let mut rng = StdRng::seed_from_u64(pair_seed);
                let verdict = bootstrap_delta_pct(
                    &xs,
                    &ys,
                    cfg.resamples,
                    cfg.min_count,
                    cfg.threshold_pct,
                    &mut rng,
                );
                out.push(PairVerdict {
                    slice: slice.to_string(),
                    a: a.to_string(),
                    b: b.to_string(),
                    verdict,
                });
            }
        }
    }
    out
}

/// Aggregate verdicts of `champion` against `baseline` across slices:
/// (significantly better, significantly worse, inconclusive).
pub fn claim_counts(
    verdicts: &[PairVerdict],
    champion: &str,
    baseline: &str,
) -> (usize, usize, usize) {
    let (mut better, mut worse, mut inconclusive) = (0, 0, 0);
    for v in verdicts {
        let relevant = (v.a == champion && v.b == baseline) || (v.a == baseline && v.b == champion);
        if !relevant {
            continue;
        }
        match v.winner() {
            Some(w) if w == champion => better += 1,
            Some(_) => worse += 1,
            None => inconclusive += 1,
        }
    }
    (better, worse, inconclusive)
}

fn fmt4(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "-".into()
    }
}

/// Byte-stable leaderboard table (the golden-fixture format).
pub fn render_leaderboards(boards: &[SliceBoard]) -> String {
    let mut out = String::new();
    for board in boards {
        let _ = writeln!(out, "=== {} ===", board.slice);
        let _ = writeln!(
            out,
            "{:<4} {:<20} {:>3} {:>10} {:>10} {:>10} {:>9}",
            "rank", "strategy", "n", "rmse", "rmse_mean", "cost", "degraded"
        );
        for (i, row) in board.rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<4} {:<20} {:>3} {:>10} {:>10} {:>10} {:>9}",
                i + 1,
                row.strategy,
                row.n,
                fmt4(row.mean_rmse),
                fmt4(row.mean_rmse_mean),
                format!("{:.1}", row.mean_cost),
                row.degraded
            );
        }
        if board.skipped > 0 {
            let _ = writeln!(out, "(skipped {} non-ok records)", board.skipped);
        }
        out.push('\n');
    }
    out
}

/// Byte-stable pairwise-verdict listing grouped by slice.
pub fn render_significance(verdicts: &[PairVerdict]) -> String {
    let mut out = String::new();
    let mut current_slice: Option<&str> = None;
    for v in verdicts {
        if current_slice != Some(v.slice.as_str()) {
            if current_slice.is_some() {
                out.push('\n');
            }
            let _ = writeln!(out, "=== {} ===", v.slice);
            current_slice = Some(v.slice.as_str());
        }
        let d = &v.verdict;
        let verdict_text = match (v.winner(), d.degenerate) {
            (Some(w), _) => format!("{w} better"),
            (None, Some(reason)) => format!("not significant ({})", reason.label()),
            (None, None) => "not significant".to_string(),
        };
        let ci = if d.ci_lo_pct.is_finite() {
            format!("[{:+.1}%, {:+.1}%]", d.ci_lo_pct, d.ci_hi_pct)
        } else {
            "[-]".to_string()
        };
        let delta = if d.delta_pct.is_finite() {
            format!("{:+.1}%", d.delta_pct)
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            out,
            "{} vs {}: delta {} CI {} -> {}",
            v.a, v.b, delta, ci, verdict_text
        );
    }
    out
}

/// The paper-claims-at-scale table: each non-baseline strategy scored
/// against `baseline` across every slice.
pub fn render_claims(verdicts: &[PairVerdict], baseline: &str) -> String {
    let mut strategies: Vec<&str> = verdicts
        .iter()
        .flat_map(|v| [v.a.as_str(), v.b.as_str()])
        .filter(|s| *s != baseline)
        .collect();
    strategies.sort();
    strategies.dedup();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== paper claim: strategy vs {baseline}, per-slice verdicts ==="
    );
    let _ = writeln!(
        out,
        "{:<20} {:>7} {:>7} {:>13}",
        "strategy", "better", "worse", "inconclusive"
    );
    for s in strategies {
        let (better, worse, inconclusive) = claim_counts(verdicts, s, baseline);
        let _ = writeln!(out, "{s:<20} {better:>7} {worse:>7} {inconclusive:>13}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(slice: &str, strategy: &str, seed: u64, rmse: f64) -> SummaryRecord {
        SummaryRecord {
            index: 0,
            key: format!("strategy={strategy} {slice} seed={seed}"),
            strategy: strategy.into(),
            slice: slice.into(),
            seed,
            status: "ok".into(),
            iters: 8,
            degraded: 0,
            failures: 0,
            cost: 40.0,
            rmse_final: rmse,
            rmse_mean: rmse * 1.5,
            amsd_final: 0.1,
            traj: "0".repeat(16),
        }
    }

    fn sample() -> Vec<SummaryRecord> {
        let mut out = Vec::new();
        for seed in 0..6 {
            let jitter = seed as f64 * 0.003;
            out.push(rec("s1", "variance_reduction", seed, 0.10 + jitter));
            out.push(rec("s1", "random", seed, 0.30 + jitter * 2.0));
            // s0: wide, overlapping spreads — no real winner.
            out.push(rec(
                "s0",
                "variance_reduction",
                seed,
                0.20 + seed as f64 * 0.02,
            ));
            out.push(rec(
                "s0",
                "random",
                seed,
                0.21 + ((seed + 3) % 6) as f64 * 0.02,
            ));
        }
        out
    }

    #[test]
    fn leaderboard_ranks_by_mean_final_rmse() {
        let boards = leaderboards(&sample());
        assert_eq!(boards.len(), 2);
        assert_eq!(boards[0].slice, "s0"); // BTreeMap order
        let s1 = &boards[1];
        assert_eq!(s1.rows[0].strategy, "variance_reduction");
        assert_eq!(s1.rows[1].strategy, "random");
        assert_eq!(s1.rows[0].n, 6);
        assert!(s1.rows[0].mean_rmse < s1.rows[1].mean_rmse);
    }

    #[test]
    fn significance_flags_the_clear_gap_only() {
        let records = sample();
        let cfg = RankConfig::default();
        let verdicts = significance(&records, &cfg);
        assert_eq!(verdicts.len(), 2);
        let s1 = verdicts.iter().find(|v| v.slice == "s1").unwrap();
        assert_eq!(s1.winner(), Some("variance_reduction"));
        let s0 = verdicts.iter().find(|v| v.slice == "s0").unwrap();
        assert_eq!(s0.winner(), None, "{:?}", s0.verdict);
    }

    #[test]
    fn error_records_are_skipped_and_counted() {
        let mut records = sample();
        records[0].status = "error".into();
        records[1].rmse_final = f64::NAN;
        let boards = leaderboards(&records);
        let s1 = boards.iter().find(|b| b.slice == "s1").unwrap();
        assert_eq!(s1.skipped, 2);
        assert_eq!(s1.rows.iter().map(|r| r.n).sum::<usize>(), 10);
    }

    #[test]
    fn rendering_is_deterministic_and_order_blind() {
        let records = sample();
        let mut reversed = records.clone();
        reversed.reverse();
        let cfg = RankConfig::default();
        assert_eq!(
            render_leaderboards(&leaderboards(&records)),
            render_leaderboards(&leaderboards(&reversed))
        );
        // Reversed record order flips replicate order within a group;
        // grouping re-sorts by seed, so verdicts are byte-identical.
        let a = significance(&records, &cfg);
        assert_eq!(
            render_significance(&a),
            render_significance(&significance(&reversed, &cfg))
        );
        let text = render_significance(&a);
        assert!(text.contains("variance_reduction vs random") || text.contains("random vs"));
        let claims = render_claims(&a, "random");
        assert!(claims.contains("variance_reduction"));
        let (better, worse, inconclusive) = claim_counts(&a, "variance_reduction", "random");
        assert_eq!((better, worse, inconclusive), (1, 0, 1));
    }
}
