//! Property tests for grid expansion: completeness, duplicate-freedom,
//! order-stability under shuffled/duplicated axis declarations, and
//! per-config seed injectivity across whole grids.

use alperf_grid::spec::{derived_seed, GridSpec, KernelKind, StrategyKind, TierKind};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// An arbitrary multi-axis spec, axes drawn with duplicates allowed and
/// in arbitrary order. Kept small enough that full expansion (bounded by
/// 3·2·2·3·2·3·4 = 864 configs) stays fast under many proptest cases.
fn arb_spec() -> impl Strategy<Value = GridSpec> {
    let strategies = prop::collection::vec(prop::sample::select(StrategyKind::ALL.to_vec()), 1..=4);
    let kernels = prop::collection::vec(
        prop::sample::select(vec![KernelKind::Se, KernelKind::Matern52]),
        1..=3,
    );
    let tiers = prop::collection::vec(
        prop::sample::select(vec![TierKind::Exact, TierKind::Auto]),
        1..=3,
    );
    let noises = prop::collection::vec(prop::sample::select(vec![0.0, 0.1, 0.5]), 1..=4);
    let batches = prop::collection::vec(1usize..4, 1..=3);
    let faults = prop::collection::vec(prop::sample::select(vec![0.0, 0.2, 0.4]), 1..=4);
    let seeds = prop::collection::vec(0u64..50, 1..=5);
    (
        (strategies, kernels, tiers, noises, batches, faults, seeds),
        0u64..u64::MAX / 2,
    )
        .prop_map(
            |((strategies, kernels, tiers, noises, batches, fault_rates, seeds), base_seed)| {
                GridSpec {
                    base_seed,
                    strategies,
                    kernels,
                    tiers,
                    noises,
                    batches,
                    fault_rates,
                    seeds,
                    ..GridSpec::default()
                }
            },
        )
}

proptest! {
    /// Expansion is the complete cartesian product of the deduplicated
    /// axes, with no duplicate keys and indices dense in order.
    #[test]
    fn expansion_complete_and_duplicate_free(spec in arb_spec()) {
        let canon = spec.clone().canonicalize().unwrap();
        let configs = spec.expand().unwrap();
        prop_assert_eq!(configs.len(), canon.n_configs());
        let keys: BTreeSet<String> = configs.iter().map(|c| c.key()).collect();
        prop_assert_eq!(keys.len(), configs.len(), "duplicate config keys");
        for (i, c) in configs.iter().enumerate() {
            prop_assert_eq!(c.index, i);
        }
        // Completeness: every axis combination appears.
        let expected = canon.strategies.len() * canon.kernels.len() * canon.tiers.len()
            * canon.noises.len() * canon.batches.len() * canon.fault_rates.len()
            * canon.seeds.len();
        prop_assert_eq!(configs.len(), expected);
        for s in &canon.strategies {
            prop_assert!(configs.iter().any(|c| c.strategy == *s));
        }
        for seed in &canon.seeds {
            prop_assert!(configs.iter().any(|c| c.seed == *seed));
        }
    }

    /// Shuffling and duplicating axis declarations cannot change the
    /// expansion — the canonical form is the identity of the grid.
    #[test]
    fn expansion_order_stable_under_shuffle_and_duplication(
        spec in arb_spec(),
        rot in 0usize..7,
        dup in 0usize..7,
    ) {
        let base = spec.expand().unwrap();
        let mut mutated = spec.clone();
        // Rotate each axis (a shuffle reachable without RNG plumbing)
        // and duplicate one element.
        fn mangle<T: Clone>(xs: &mut Vec<T>, rot: usize, dup: usize) {
            if xs.is_empty() { return; }
            let r = rot % xs.len();
            xs.rotate_left(r);
            let d = xs[dup % xs.len()].clone();
            xs.push(d);
        }
        mangle(&mut mutated.strategies, rot, dup);
        mangle(&mut mutated.kernels, rot + 1, dup);
        mangle(&mut mutated.tiers, rot + 2, dup);
        mangle(&mut mutated.noises, rot + 3, dup);
        mangle(&mut mutated.batches, rot, dup + 1);
        mangle(&mut mutated.fault_rates, rot + 1, dup + 2);
        mangle(&mut mutated.seeds, rot + 2, dup);
        prop_assert_eq!(mutated.expand().unwrap(), base);
    }

    /// Per-config run seeds are injective across the full grid: no two
    /// configs — however similar their axes — share a seed.
    #[test]
    fn run_seeds_injective_across_grid(spec in arb_spec()) {
        let configs = spec.expand().unwrap();
        let seeds: BTreeSet<u64> = configs.iter().map(|c| c.run_seed).collect();
        prop_assert_eq!(seeds.len(), configs.len(), "run_seed collision");
    }

    /// The derivation itself is injective over index ranges far larger
    /// than any practical grid, for arbitrary base seeds.
    #[test]
    fn derived_seed_injective_in_index(base in 0u64..u64::MAX) {
        let mut seen = BTreeSet::new();
        for i in 0..4096usize {
            prop_assert!(seen.insert(derived_seed(base, i)), "collision at index {}", i);
        }
    }

    /// Spec parsing accepts the canonical text of any expandable spec
    /// (canonical_text is parseable — the resume/meta contract).
    #[test]
    fn canonical_text_reparses_to_the_same_spec(spec in arb_spec()) {
        let canon = spec.canonicalize().unwrap();
        let reparsed = GridSpec::parse(&canon.canonical_text().replace(' ', "\n")).unwrap();
        prop_assert_eq!(reparsed, canon);
    }
}
