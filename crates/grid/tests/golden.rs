//! Golden-fixture round trip for the grid summary pipeline: a checked-in
//! `alperf-grid-v1` summary file (an 18-campaign grid: 3 strategies ×
//! 2 noise levels × 3 replicate seeds under a 20% fault rate) must parse
//! and produce byte-identical leaderboard, significance, and claims
//! renderings. Any change to the summary reader, the ranking layer, or
//! the bootstrap that alters bytes shows up here.
//!
//! Regenerate after an *intentional* schema/format change with
//! `cargo test -p alperf-grid --test golden -- --ignored regenerate`
//! and review the fixture diff like any other golden update.

use alperf_grid::exec::{run_grid, ExecConfig};
use alperf_grid::rank::{
    leaderboards, render_claims, render_leaderboards, render_significance, significance, RankConfig,
};
use alperf_grid::spec::{GridSpec, StrategyKind};
use alperf_grid::summary::{parse_summaries, SummaryFile};
use std::path::{Path, PathBuf};

fn golden_spec() -> GridSpec {
    GridSpec {
        name: "golden".into(),
        base_seed: 11,
        rows: 16,
        iters: 4,
        strategies: vec![
            StrategyKind::VarianceReduction,
            StrategyKind::CostEfficiency,
            StrategyKind::Random,
        ],
        noises: vec![0.1, 0.4],
        fault_rates: vec![0.2],
        seeds: (0..3).collect(),
        ..GridSpec::default()
    }
}

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture() -> SummaryFile {
    let text = std::fs::read_to_string(fixture_dir().join("small_grid.jsonl"))
        .expect("fixture must exist");
    parse_summaries(&text).expect("golden fixture must parse")
}

#[test]
fn golden_summary_parses() {
    let s = fixture();
    assert_eq!(s.grid, "golden");
    assert_eq!(s.n_configs, 18);
    assert_eq!(s.records.len(), 18);
    assert!(s.records.iter().all(|r| r.status == "ok"));
    assert!(s.records.iter().any(|r| r.degraded > 0));
    // Paired design: all strategies in a slice share replicate seeds.
    let slices: std::collections::BTreeSet<&str> =
        s.records.iter().map(|r| r.slice.as_str()).collect();
    assert_eq!(slices.len(), 2, "two noise levels, one slice each");
}

#[test]
fn golden_leaderboard_is_byte_stable() {
    let s = fixture();
    assert_eq!(
        render_leaderboards(&leaderboards(&s.records)),
        include_str!("fixtures/small_grid.leaderboard"),
        "leaderboard bytes drifted from the checked-in golden file"
    );
}

#[test]
fn golden_significance_is_byte_stable() {
    let s = fixture();
    let verdicts = significance(&s.records, &RankConfig::default());
    assert_eq!(verdicts.len(), 6, "C(3,2) pairs x 2 slices");
    assert_eq!(
        render_significance(&verdicts),
        include_str!("fixtures/small_grid.significance"),
        "significance bytes drifted from the checked-in golden file"
    );
    assert_eq!(
        render_claims(&verdicts, "random"),
        include_str!("fixtures/small_grid.claims"),
        "claims bytes drifted from the checked-in golden file"
    );
}

#[test]
fn golden_ranking_is_record_order_blind() {
    let s = fixture();
    let mut reversed = s.records.clone();
    reversed.reverse();
    assert_eq!(
        render_leaderboards(&leaderboards(&s.records)),
        render_leaderboards(&leaderboards(&reversed))
    );
    let cfg = RankConfig::default();
    assert_eq!(
        render_significance(&significance(&s.records, &cfg)),
        render_significance(&significance(&reversed, &cfg))
    );
}

/// Rewrites the fixtures from a live run. Ignored: run explicitly after
/// an intentional format change, then review the diff.
#[test]
#[ignore]
fn regenerate() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("small_grid.jsonl");
    let report = run_grid(&golden_spec(), &out, &ExecConfig::default()).unwrap();
    assert_eq!(report.errors, 0);
    let s = parse_summaries(&std::fs::read_to_string(&out).unwrap()).unwrap();
    std::fs::write(
        dir.join("small_grid.leaderboard"),
        render_leaderboards(&leaderboards(&s.records)),
    )
    .unwrap();
    let verdicts = significance(&s.records, &RankConfig::default());
    std::fs::write(
        dir.join("small_grid.significance"),
        render_significance(&verdicts),
    )
    .unwrap();
    std::fs::write(
        dir.join("small_grid.claims"),
        render_claims(&verdicts, "random"),
    )
    .unwrap();
}
