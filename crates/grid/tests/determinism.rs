//! End-to-end determinism: a 64-config grid with a 20% fault rate must
//! produce **byte-identical** summary files regardless of worker width
//! (1/2/8), commit mode (streaming vs buffered), or a kill-and-resume
//! cycle mid-grid.

use alperf_grid::exec::{run_grid, CommitMode, ExecConfig};
use alperf_grid::spec::{GridSpec, KernelKind, StrategyKind};
use alperf_linalg::threads;
use std::fs;
use std::path::PathBuf;

/// 2 strategies × 2 kernels × 2 noises × 2 batches × 4 seeds = 64
/// configs, every one under a 20% fault rate so the degraded paths are
/// exercised, with rows/iters small enough to keep the suite quick.
fn spec64() -> GridSpec {
    GridSpec {
        name: "det64".into(),
        base_seed: 7,
        rows: 16,
        iters: 4,
        strategies: vec![StrategyKind::VarianceReduction, StrategyKind::Random],
        kernels: vec![KernelKind::Se, KernelKind::Matern52],
        noises: vec![0.1, 0.4],
        batches: vec![1, 2],
        fault_rates: vec![0.2],
        seeds: (0..4).collect(),
        ..GridSpec::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("alperf-grid-determinism");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run_at(width: usize, mode: CommitMode, path: &PathBuf) -> String {
    let exec = ExecConfig {
        mode,
        ..ExecConfig::default()
    };
    let report = threads::with_threads(width, || run_grid(&spec64(), path, &exec)).unwrap();
    assert_eq!(report.n_configs, 64);
    assert_eq!(report.executed, 64);
    assert_eq!(report.errors, 0, "campaigns errored");
    assert!(
        report.degraded > 0,
        "fault rate 0.2 should degrade some campaigns"
    );
    fs::read_to_string(path).unwrap()
}

#[test]
fn byte_identical_across_widths_and_commit_modes() {
    let reference = run_at(1, CommitMode::Streaming, &tmp("w1-stream.jsonl"));
    assert_eq!(reference.lines().count(), 65, "meta line + 64 records");
    for (name, width, mode) in [
        ("w2-stream.jsonl", 2, CommitMode::Streaming),
        ("w8-stream.jsonl", 8, CommitMode::Streaming),
        ("w1-buffer.jsonl", 1, CommitMode::Buffered),
        ("w8-buffer.jsonl", 8, CommitMode::Buffered),
    ] {
        let got = run_at(width, mode, &tmp(name));
        assert_eq!(
            got, reference,
            "summary bytes diverged at width {width} mode {mode:?}"
        );
    }
}

#[test]
fn kill_and_resume_reproduces_the_same_bytes() {
    let reference = run_at(1, CommitMode::Streaming, &tmp("resume-ref.jsonl"));

    // Simulate a kill mid-grid: keep the meta line + the first 20
    // records, plus a torn 21st record (half its bytes, no newline).
    let lines: Vec<&str> = reference.lines().collect();
    let mut partial = lines[..21].join("\n");
    partial.push('\n');
    partial.push_str(&lines[21][..lines[21].len() / 2]);
    let path = tmp("resume-killed.jsonl");
    fs::write(&path, &partial).unwrap();

    let exec = ExecConfig {
        resume: true,
        ..ExecConfig::default()
    };
    let report = threads::with_threads(2, || run_grid(&spec64(), &path, &exec)).unwrap();
    assert_eq!(report.skipped, 20, "valid prefix should be kept");
    assert_eq!(report.executed, 44, "only the remainder re-runs");
    assert_eq!(
        fs::read_to_string(&path).unwrap(),
        reference,
        "resumed bytes diverged from the uninterrupted run"
    );
}

#[test]
fn resume_onto_a_complete_file_is_a_no_op() {
    let path = tmp("resume-done.jsonl");
    let reference = run_at(2, CommitMode::Streaming, &path);
    let exec = ExecConfig {
        resume: true,
        ..ExecConfig::default()
    };
    let report = run_grid(&spec64(), &path, &exec).unwrap();
    assert_eq!(report.skipped, 64);
    assert_eq!(report.executed, 0);
    assert_eq!(fs::read_to_string(&path).unwrap(), reference);
}

#[test]
fn resume_rejects_a_different_grid() {
    let path = tmp("resume-mismatch.jsonl");
    run_at(1, CommitMode::Streaming, &path);
    let mut other = spec64();
    other.base_seed = 8;
    let exec = ExecConfig {
        resume: true,
        ..ExecConfig::default()
    };
    let err = run_grid(&other, &path, &exec).unwrap_err();
    assert!(
        err.to_string().contains("different grid"),
        "unexpected error: {err}"
    );
}
