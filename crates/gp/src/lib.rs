#![warn(missing_docs)]
//! # alperf-gp
//!
//! Exact Gaussian Process Regression with marginal-likelihood hyperparameter
//! optimization — the statistical engine of the paper's Active-Learning
//! framework (Section III).
//!
//! The paper's pipeline needs, at every AL iteration:
//!
//! 1. a posterior predictive distribution `N(mu_*, sigma_*^2)` at arbitrary
//!    input points (Eqs. 4–10) — [`Gpr::predict_one`];
//! 2. hyperparameters `(l, sigma_f, sigma_n)` fit by maximizing the log
//!    marginal likelihood (Eqs. 12–13) with **bounded** multi-restart
//!    gradient ascent — [`optimize::fit_gpr`]; the lower bound on the noise
//!    level `sigma_n` is the paper's anti-overfitting mechanism (Fig. 7);
//! 3. a menu of covariance functions — [`kernel`] implements the squared
//!    exponential of Eq. 11 plus ARD, Matérn 3/2 & 5/2 and rational
//!    quadratic variants with analytic gradients in log-parameter space.
//!
//! All heavy lifting (Cholesky, triangular solves) is delegated to
//! `alperf-linalg`; covariance assembly parallelizes across rows via rayon.

pub mod kernel;
pub mod lml;
pub mod loocv;
pub mod model;
pub mod noise;
pub mod optimize;
pub mod sample;
pub mod sparse;
pub mod surrogate;

pub use kernel::{
    ArdSquaredExponential, Kernel, Matern32, Matern52, RationalQuadratic, SquaredExponential,
};
pub use model::{Gpr, Prediction};
pub use noise::NoiseFloor;
pub use optimize::{fit_gpr, fit_surrogate, ApproxConfig, FitTier, GprConfig, OptimOutcome};
pub use sparse::{InducingSelector, SparseGpr, SparseMethod};
pub use surrogate::Surrogate;
