//! Sparse (inducing-point) Gaussian Process Regression — the approximate
//! tier that breaks the exact path's `O(n³)` ceiling.
//!
//! Both supported posteriors replace the full covariance `K_nn` with the
//! Nyström form `Q_nn = K_nm K_mm^{-1} K_mn` over `m ≪ n` inducing points
//! `Z` (rows of the training set chosen by pivoted-Cholesky pivots or
//! greedy k-center selection):
//!
//! * **Subset of Regressors (SoR)**: model covariance `Q_nn + σ_n² I`.
//!   Cheap and accurate near data, but its predictive variance collapses
//!   far from the inducing set.
//! * **FITC** (fully independent training conditional): corrects the
//!   diagonal, `Q_nn + diag(K_nn − Q_nn) + σ_n² I`, restoring honest
//!   far-field variances — the right default for variance-driven AL.
//!
//! With `B = L_m^{-1} K_mn` (`K_mm = L_m L_mᵀ`) the model covariance is
//! `Bᵀ B + Λ`, exactly the shape [`alperf_linalg::lowrank::Woodbury`]
//! solves through the `m × m` capacitance factor `A = I + B Λ^{-1} Bᵀ`:
//! fitting costs `O(n m²)`, prediction `O(m)` per point plus one `O(m²)`
//! pair of triangular solves, and the log marginal likelihood comes from
//! the matrix determinant lemma. All reductions are serial per point, so
//! results are bit-identical across rayon worker counts.

use crate::kernel::Kernel;
use crate::lml;
use crate::model::{GpError, Prediction};
use alperf_linalg::cholesky::Cholesky;
use alperf_linalg::lowrank::{pivoted_cholesky, Woodbury};
use alperf_linalg::matrix::Matrix;
use alperf_linalg::stats::Standardizer;
use alperf_linalg::vector::dot;
use rand::Rng;

/// Which sparse posterior to build (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparseMethod {
    /// Subset of Regressors: `Q_nn + σ_n² I`.
    Sor,
    /// FITC: `Q_nn + diag(K_nn − Q_nn) + σ_n² I`.
    Fitc,
}

impl SparseMethod {
    /// Stable lowercase name for telemetry and reports.
    pub fn name(&self) -> &'static str {
        match self {
            SparseMethod::Sor => "sor",
            SparseMethod::Fitc => "fitc",
        }
    }
}

/// How inducing points are chosen from the training set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InducingSelector {
    /// Pivots of a partial pivoted Cholesky of `K_nn` — information-greedy
    /// in the kernel's own metric, with a trace-based early stop.
    PivotedCholesky,
    /// Greedy k-center (farthest-point) selection in input space — kernel
    /// independent, `O(n m)`.
    KCenter,
}

/// Jitter ladder used for the small `m × m` factorizations.
const SPARSE_JITTER: f64 = 1e-10;
const SPARSE_TRIES: usize = 8;
/// Relative floor applied to FITC's per-point diagonal so `Λ > 0` holds
/// even for interpolated points at zero noise.
const LAMBDA_FLOOR_REL: f64 = 1e-12;

/// A sparse GPR posterior over `m` inducing points, conditioned on `n`
/// training observations in `O(n m²)`.
pub struct SparseGpr {
    kernel: Box<dyn Kernel>,
    noise_std: f64,
    method: SparseMethod,
    /// Inducing inputs, `m × d`.
    z: Matrix,
    /// Cholesky factor of `K_mm` (jittered).
    lm: Cholesky,
    /// Capacitance matrix `A = I + B Λ^{-1} Bᵀ` (kept dense for `O(m²)`
    /// incremental updates) and its factor.
    a: Matrix,
    la: Cholesky,
    /// `u = B Λ^{-1} y_std` (the mean weights' right-hand side, kept for
    /// the `O(m²)` incremental updates; `c = L_A^{-1} u` is transient).
    u: Vec<f64>,
    /// Mean weights `w = L_m^{-T} A^{-1} u`, so `μ_std(x) = k_m(x)ᵀ w`.
    w_mean: Vec<f64>,
    standardizer: Standardizer,
    /// Running LML pieces (incremental under [`SparseGpr::with_observation`]).
    sum_log_lambda: f64,
    sum_y2_over_lambda: f64,
    lml: f64,
    n: usize,
    dim: usize,
}

impl SparseGpr {
    /// Condition the sparse posterior on training inputs `x` and responses
    /// `y`, with explicit inducing inputs `z` (rows; typically selected by
    /// [`select_inducing_pivoted`] or [`select_inducing_kcenter`]).
    /// `noise_std` is interpreted on the standardized response scale when
    /// `standardize` is true, mirroring [`Gpr::fit`].
    ///
    /// # Errors
    /// [`GpError::Empty`] for an empty training or inducing set,
    /// [`GpError::Dimension`] on shape mismatch, [`GpError::Linalg`] if
    /// `K_mm` or the capacitance matrix cannot be factored.
    pub fn fit(
        x: Matrix,
        y: &[f64],
        kernel: Box<dyn Kernel>,
        noise_std: f64,
        standardize: bool,
        method: SparseMethod,
        z: Matrix,
    ) -> Result<Self, GpError> {
        let _span = alperf_obs::span("gp.sparse_fit");
        let (n, d) = (x.nrows(), x.ncols());
        let m = z.nrows();
        if n == 0 || m == 0 {
            return Err(GpError::Empty);
        }
        if y.len() != n {
            return Err(GpError::Dimension(format!(
                "X has {n} rows but y has {} values",
                y.len()
            )));
        }
        if z.ncols() != d {
            return Err(GpError::Dimension(format!(
                "inducing points have {} dims, training data has {d}",
                z.ncols()
            )));
        }
        if !noise_std.is_finite() || noise_std < 0.0 {
            return Err(GpError::Dimension(format!(
                "noise_std must be finite and >= 0, got {noise_std}"
            )));
        }
        let standardizer = if standardize {
            Standardizer::fit(y)
        } else {
            Standardizer::identity()
        };
        let y_std = standardizer.apply_vec(y);

        // K_mm = L_m L_mᵀ, then B as rows: bt[i] = L_m^{-1} k(Z, x_i).
        let kmm = kernel.cross_matrix(&z, &z);
        let lm = Cholesky::decompose_jittered(&kmm, SPARSE_JITTER, SPARSE_TRIES)?;
        let kxz = kernel.cross_matrix(&x, &z);
        let bt = lm.solve_forward_rhs_rows(&kxz)?;

        // Per-point diagonal Λ.
        let sigma2 = noise_std * noise_std;
        let bnorm2 = bt.row_sq_norms();
        let lambda: Vec<f64> = match method {
            SparseMethod::Sor => {
                let l = sigma2.max(LAMBDA_FLOOR_REL);
                vec![l; n]
            }
            SparseMethod::Fitc => (0..n)
                .map(|i| {
                    let kii = kernel.diag_value(x.row(i));
                    let resid = (kii - bnorm2[i]).max(0.0);
                    (resid + sigma2).max(LAMBDA_FLOOR_REL * kii.max(1.0))
                })
                .collect(),
        };

        // Woodbury capacitance: A = I + B Λ^{-1} Bᵀ, c = L_A^{-1} B Λ^{-1} y.
        let wb = Woodbury::new(&bt, &lambda).map_err(GpError::Linalg)?;
        let c = wb.project(&y_std)?;
        // u = B Λ^{-1} y (recovered as L_A c for the incremental updates).
        let u = {
            let mut u = vec![0.0; m];
            for i in 0..n {
                let w = y_std[i] / lambda[i];
                if w == 0.0 {
                    continue;
                }
                for (uj, bj) in u.iter_mut().zip(bt.row(i)) {
                    *uj += w * bj;
                }
            }
            u
        };
        // Dense A for O(m²) rank-one updates (the factor alone cannot be
        // updated without it).
        let a = {
            let mut a = Matrix::identity(m);
            for (i, &li) in lambda.iter().enumerate() {
                let row = bt.row(i);
                let inv_l = 1.0 / li;
                for r in 0..m {
                    let w = row[r] * inv_l;
                    if w == 0.0 {
                        continue;
                    }
                    let arow = a.row_mut(r);
                    for cc in 0..=r {
                        arow[cc] += w * row[cc];
                    }
                }
            }
            for r in 0..m {
                for cc in 0..r {
                    a[(cc, r)] = a[(r, cc)];
                }
            }
            a
        };

        let sum_log_lambda: f64 = lambda.iter().map(|l| l.ln()).sum();
        let sum_y2_over_lambda: f64 = y_std.iter().zip(&lambda).map(|(yi, li)| yi * yi / li).sum();
        let quad = sum_y2_over_lambda - dot(&c, &c);
        let log_det = wb.factor().log_det() + sum_log_lambda;
        let lml = -0.5 * quad - 0.5 * log_det - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

        let la = wb.factor().clone();
        let w_mean = lm.solve_backward(&la.solve_backward(&c)?)?;
        alperf_obs::add("gp.sparse_fit.rank", m as u64);
        Ok(SparseGpr {
            kernel,
            noise_std,
            method,
            z,
            lm,
            a,
            la,
            u,
            w_mean,
            standardizer,
            sum_log_lambda,
            sum_y2_over_lambda,
            lml,
            n,
            dim: d,
        })
    }

    /// `(b*, z*)` for one query: `b* = L_m^{-1} k_m(x)`,
    /// `z* = L_A^{-1} b*`.
    #[allow(clippy::type_complexity)]
    fn projections(&self, xstar: &[f64]) -> Result<(Vec<f64>, Vec<f64>, Vec<f64>), GpError> {
        let km = lml::covariance_vector(self.kernel.as_ref(), &self.z, xstar);
        let b = self.lm.solve_forward(&km)?;
        let zs = self.la.solve_forward(&b)?;
        Ok((km, b, zs))
    }

    /// Predictive variance on the standardized scale from the per-point
    /// pieces (`k** = k(x,x)`, `‖b*‖²`, `‖z*‖²`).
    fn var_std(&self, kss: f64, bnorm2: f64, znorm2: f64) -> f64 {
        match self.method {
            SparseMethod::Sor => znorm2.max(0.0),
            SparseMethod::Fitc => (kss - bnorm2 + znorm2).max(0.0),
        }
    }

    /// Posterior predictive distribution of the latent function at `xstar`,
    /// on the original response scale.
    ///
    /// # Errors
    /// [`GpError::Dimension`] if the query dimensionality is wrong.
    pub fn predict_one(&self, xstar: &[f64]) -> Result<Prediction, GpError> {
        if xstar.len() != self.dim {
            return Err(GpError::Dimension(format!(
                "query has {} dims, training data has {}",
                xstar.len(),
                self.dim
            )));
        }
        let (km, b, zs) = self.projections(xstar)?;
        let mu = dot(&km, &self.w_mean);
        let var = self.var_std(self.kernel.diag_value(xstar), dot(&b, &b), dot(&zs, &zs));
        Ok(Prediction {
            mean: self.standardizer.inverse(mu),
            std: self.standardizer.inverse_scale(var.sqrt()),
        })
    }

    /// Batched posterior prediction at every row of `xs` — one blocked
    /// cross-covariance against the `m` inducing points plus two multi-RHS
    /// triangular solves of order `m`: `O(n_q m)` memory, `O(n_q m²)` time.
    pub fn predict_batch(&self, xs: &Matrix) -> Result<Vec<Prediction>, GpError> {
        if xs.nrows() == 0 {
            return Ok(Vec::new());
        }
        if xs.ncols() != self.dim {
            return Err(GpError::Dimension(format!(
                "query has {} dims, training data has {}",
                xs.ncols(),
                self.dim
            )));
        }
        // Chunk large pools like Gpr::predict_batch so blocks stay
        // cache-resident; chunks are independent, results bit-identical.
        const CHUNK: usize = 512;
        let nq = xs.nrows();
        if nq > CHUNK {
            let d = xs.ncols();
            let mut out = Vec::with_capacity(nq);
            for start in (0..nq).step_by(CHUNK) {
                let stop = (start + CHUNK).min(nq);
                let rows = xs.as_slice()[start * d..stop * d].to_vec();
                let sub = Matrix::from_vec(stop - start, d, rows).map_err(GpError::Linalg)?;
                out.extend(self.predict_batch(&sub)?);
            }
            return Ok(out);
        }
        let kxz = self.kernel.cross_matrix(xs, &self.z);
        self.predict_batch_with_cross(xs, &kxz)
    }

    /// [`SparseGpr::predict_batch`] with a caller-supplied cross-covariance
    /// `kxz = K(X_*, Z)` (rows = candidates, columns = inducing points).
    /// This is the AL pool-cache entry point: `Z` never changes between
    /// hyperparameter refits, so the cache stays warm across incremental
    /// updates — the sparse tier's structural advantage over the exact one.
    ///
    /// # Errors
    /// [`GpError::Dimension`] when `kxz` is not `xs.nrows() × rank()`.
    pub fn predict_batch_with_cross(
        &self,
        xs: &Matrix,
        kxz: &Matrix,
    ) -> Result<Vec<Prediction>, GpError> {
        let _span = alperf_obs::span("gp.predict_batch");
        let (nq, m) = (xs.nrows(), self.z.nrows());
        alperf_obs::add("gp.predict.points", nq as u64);
        if alperf_obs::enabled() {
            alperf_obs::counter_vec(
                alperf_obs::names::GP_PREDICT_POINTS_BY_TIER,
                &[alperf_obs::names::LABEL_TIER],
            )
            .with(&[self.method.name()])
            .add(nq as u64);
        }
        if kxz.nrows() != nq || kxz.ncols() != m {
            return Err(GpError::Dimension(format!(
                "cross-covariance is {}x{}, expected {nq}x{m}",
                kxz.nrows(),
                kxz.ncols()
            )));
        }
        let mu_std = kxz.matvec(&self.w_mean)?;
        let bt = self.lm.solve_forward_rhs_rows(kxz)?;
        let zt = self.la.solve_forward_rhs_rows(&bt)?;
        let bnorm2 = bt.row_sq_norms();
        let znorm2 = zt.row_sq_norms();
        Ok((0..nq)
            .map(|i| {
                let kss = self.kernel.diag_value(xs.row(i));
                let var = self.var_std(kss, bnorm2[i], znorm2[i]);
                Prediction {
                    mean: self.standardizer.inverse(mu_std[i]),
                    std: self.standardizer.inverse_scale(var.sqrt()),
                }
            })
            .collect())
    }

    /// Joint posterior covariance over the rows of `xs`, on the original
    /// response scale: `Z*ᵀ Z*` (SoR) or `K** − B*ᵀ B* + Z*ᵀ Z*` (FITC),
    /// with `B* = L_m^{-1} K(Z, X_*)`, `Z* = L_A^{-1} B*`.
    ///
    /// # Errors
    /// Dimension mismatches or numerical failure in the solves.
    pub fn posterior_covariance(&self, xs: &Matrix) -> Result<Matrix, GpError> {
        let nq = xs.nrows();
        if nq == 0 {
            return Ok(Matrix::zeros(0, 0));
        }
        if xs.ncols() != self.dim {
            return Err(GpError::Dimension(format!(
                "query has {} dims, training data has {}",
                xs.ncols(),
                self.dim
            )));
        }
        let scale = self.standardizer.std * self.standardizer.std;
        let kxz = self.kernel.cross_matrix(xs, &self.z);
        let bt = self.lm.solve_forward_rhs_rows(&kxz)?;
        let zt = self.la.solve_forward_rhs_rows(&bt)?;
        let ztz = zt.matmul(&zt.transpose())?;
        let mut cov = match self.method {
            SparseMethod::Sor => {
                let mut cov = ztz;
                for v in cov.as_mut_slice() {
                    *v *= scale;
                }
                cov
            }
            SparseMethod::Fitc => {
                let btb = bt.matmul(&bt.transpose())?;
                let mut cov = self.kernel.cross_matrix(xs, xs);
                for ((c, &q), &s) in cov
                    .as_mut_slice()
                    .iter_mut()
                    .zip(btb.as_slice())
                    .zip(ztz.as_slice())
                {
                    *c = (*c - q + s) * scale;
                }
                cov
            }
        };
        cov.symmetrize();
        Ok(cov)
    }

    /// Draw `n_samples` functions from the sparse posterior at the rows of
    /// `xs` (jittered Cholesky of [`SparseGpr::posterior_covariance`]).
    ///
    /// # Errors
    /// Propagates covariance-assembly and factorization failures.
    pub fn sample_posterior(
        &self,
        xs: &Matrix,
        n_samples: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<Vec<f64>>, GpError> {
        let m = xs.nrows();
        let means: Vec<f64> = self
            .predict_batch(xs)?
            .into_iter()
            .map(|p| p.mean)
            .collect();
        let cov = self.posterior_covariance(xs)?;
        let chol = Cholesky::decompose_jittered(&cov, 1e-10, 12).map_err(GpError::Linalg)?;
        let l = chol.factor();
        let mut out = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let z: Vec<f64> = (0..m).map(|_| standard_normal(rng)).collect();
            let mut s = means.clone();
            for i in 0..m {
                let mut acc = 0.0;
                for j in 0..=i {
                    acc += l[(i, j)] * z[j];
                }
                s[i] += acc;
            }
            out.push(s);
        }
        Ok(out)
    }

    /// Condition on one additional observation in `O(m²)` (plus one
    /// `O(m³)` refactor of the tiny capacitance matrix): the inducing set,
    /// kernel hyperparameters, noise level, and response standardizer are
    /// all kept *frozen* from this model, mirroring
    /// [`Gpr::with_observation`]. Periodic full refits (which may reselect
    /// `Z`) remain the caller's responsibility.
    ///
    /// # Errors
    /// [`GpError::Dimension`] on shape mismatch; [`GpError::Linalg`] if the
    /// updated capacitance matrix cannot be factored.
    pub fn with_observation(&self, x_new: &[f64], y_new: f64) -> Result<SparseGpr, GpError> {
        if x_new.len() != self.dim {
            return Err(GpError::Dimension(format!(
                "new point has {} dims, training data has {}",
                x_new.len(),
                self.dim
            )));
        }
        let km = lml::covariance_vector(self.kernel.as_ref(), &self.z, x_new);
        let b = self.lm.solve_forward(&km)?;
        let sigma2 = self.noise_std * self.noise_std;
        let lambda = match self.method {
            SparseMethod::Sor => sigma2.max(LAMBDA_FLOOR_REL),
            SparseMethod::Fitc => {
                let kii = self.kernel.diag_value(x_new);
                let resid = (kii - dot(&b, &b)).max(0.0);
                (resid + sigma2).max(LAMBDA_FLOOR_REL * kii.max(1.0))
            }
        };
        let y_std = self.standardizer.apply(y_new);
        let m = self.z.nrows();
        // A += b bᵀ / λ, then refactor (m is small; O(m³) ≪ O(n m²)).
        let mut a = self.a.clone();
        let inv_l = 1.0 / lambda;
        for r in 0..m {
            let w = b[r] * inv_l;
            for cc in 0..m {
                a[(r, cc)] += w * b[cc];
            }
        }
        let la = Cholesky::decompose_jittered(&a, SPARSE_JITTER, SPARSE_TRIES)?;
        let mut u = self.u.clone();
        for (uj, bj) in u.iter_mut().zip(&b) {
            *uj += bj * y_std * inv_l;
        }
        let c = la.solve_forward(&u)?;
        let w_mean = self.lm.solve_backward(&la.solve_backward(&c)?)?;
        let sum_log_lambda = self.sum_log_lambda + lambda.ln();
        let sum_y2_over_lambda = self.sum_y2_over_lambda + y_std * y_std / lambda;
        let n = self.n + 1;
        let quad = sum_y2_over_lambda - dot(&c, &c);
        let log_det = la.log_det() + sum_log_lambda;
        let lml = -0.5 * quad - 0.5 * log_det - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
        Ok(SparseGpr {
            kernel: self.kernel.clone_box(),
            noise_std: self.noise_std,
            method: self.method,
            z: self.z.clone(),
            lm: self.lm.clone(),
            a,
            la,
            u,
            w_mean,
            standardizer: self.standardizer,
            sum_log_lambda,
            sum_y2_over_lambda,
            lml,
            n,
            dim: self.dim,
        })
    }

    /// Approximate log marginal likelihood of the training data under the
    /// sparse model covariance `Q_nn + Λ` (standardized scale).
    pub fn lml(&self) -> f64 {
        self.lml
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &dyn Kernel {
        self.kernel.as_ref()
    }

    /// Noise standard deviation `sigma_n` (standardized response scale).
    pub fn noise_std(&self) -> f64 {
        self.noise_std
    }

    /// Noise standard deviation mapped back to the original response scale.
    pub fn noise_std_raw(&self) -> f64 {
        self.standardizer.inverse_scale(self.noise_std)
    }

    /// Number of training observations conditioned on.
    pub fn n_train(&self) -> usize {
        self.n
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The inducing inputs `Z` (`rank() × dim()`).
    pub fn inducing(&self) -> &Matrix {
        &self.z
    }

    /// Number of inducing points `m`.
    pub fn rank(&self) -> usize {
        self.z.nrows()
    }

    /// Which sparse posterior this is.
    pub fn method(&self) -> SparseMethod {
        self.method
    }

    /// The standardizer applied to the response.
    pub fn standardizer(&self) -> &Standardizer {
        &self.standardizer
    }

    /// Condition estimate of the worse of the two small factors (`K_mm`
    /// and the capacitance matrix).
    pub fn condition_estimate(&self) -> f64 {
        self.lm
            .condition_estimate()
            .max(self.la.condition_estimate())
    }
}

/// Standard normal via Box–Muller (same recipe as the exact sampler; kept
/// private to both call sites).
fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Select up to `max_rank` inducing rows of `x` by partial pivoted
/// Cholesky of the kernel matrix (never materialized — the factorizer
/// pulls the `m` columns it pivots on). Stops early when the residual
/// trace falls below `rel_tol * trace(K)`. Strictly serial: the returned
/// pivot sequence is bit-identical on any machine and worker count.
///
/// # Errors
/// Propagates factorizer failures (non-finite kernel values).
pub fn select_inducing_pivoted(
    kernel: &dyn Kernel,
    x: &Matrix,
    max_rank: usize,
    rel_tol: f64,
) -> Result<Vec<usize>, GpError> {
    let _span = alperf_obs::span("gp.lowrank_factor");
    let n = x.nrows();
    let diag: Vec<f64> = (0..n).map(|i| kernel.diag_value(x.row(i))).collect();
    let mut column =
        |p: usize| -> Vec<f64> { (0..n).map(|i| kernel.eval(x.row(i), x.row(p))).collect() };
    let pc = pivoted_cholesky(&diag, &mut column, max_rank, rel_tol).map_err(GpError::Linalg)?;
    Ok(pc.pivots().to_vec())
}

/// Select `m` inducing rows of `x` by greedy farthest-point (k-center)
/// traversal: start at row 0, repeatedly add the row farthest (Euclidean)
/// from the current set (lowest index on ties). Kernel-independent,
/// `O(n m)`, bit-identical across worker counts.
pub fn select_inducing_kcenter(x: &Matrix, m: usize) -> Vec<usize> {
    let _span = alperf_obs::span("gp.lowrank_factor");
    let n = x.nrows();
    let m = m.min(n);
    if m == 0 {
        return Vec::new();
    }
    let mut chosen = Vec::with_capacity(m);
    chosen.push(0usize);
    // min squared distance to the chosen set.
    let sq = |a: &[f64], b: &[f64]| -> f64 {
        a.iter().zip(b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>()
    };
    let mut mind: Vec<f64> = (0..n).map(|i| sq(x.row(i), x.row(0))).collect();
    while chosen.len() < m {
        let (best, bestd) = mind.iter().copied().enumerate().fold(
            (0usize, f64::NEG_INFINITY),
            |(bi, bv), (i, v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            },
        );
        if bestd <= 0.0 {
            break; // every remaining point coincides with a chosen one
        }
        chosen.push(best);
        for (i, md) in mind.iter_mut().enumerate() {
            let d = sq(x.row(i), x.row(best));
            if d < *md {
                *md = d;
            }
        }
    }
    chosen
}

/// Deterministic stride subsample of `k` row indices out of `n` (the
/// hyperparameter-fit subset for the approximate tier).
pub fn stride_subsample(n: usize, k: usize) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    (0..k).map(|i| i * n / k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;
    use crate::model::Gpr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(n: usize) -> (Matrix, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 8.0 / n as f64).collect();
        let y: Vec<f64> = xs.iter().map(|v| (0.9 * v).sin() * 2.0 + 5.0).collect();
        (Matrix::from_vec(n, 1, xs).unwrap(), y)
    }

    fn fit_pair(n: usize, m: usize, method: SparseMethod) -> (Gpr, SparseGpr) {
        let (x, y) = dataset(n);
        let kernel = SquaredExponential::new(1.0, 1.0);
        let exact = Gpr::fit(x.clone(), &y, Box::new(kernel.clone()), 0.05, true).unwrap();
        let pivots = select_inducing_pivoted(&kernel, &x, m, 0.0).unwrap();
        let z = x.select_rows(&pivots);
        let sparse = SparseGpr::fit(x, &y, Box::new(kernel), 0.05, true, method, z).unwrap();
        (exact, sparse)
    }

    #[test]
    fn full_rank_sor_matches_exact_posterior() {
        // With m = n (Z = all training points, pivoted order), SoR is the
        // exact posterior: Q_nn = K_nn.
        let (exact, sparse) = fit_pair(25, 25, SparseMethod::Sor);
        for q in [0.3, 2.1, 4.4, 7.9] {
            let e = exact.predict_one(&[q]).unwrap();
            let s = sparse.predict_one(&[q]).unwrap();
            assert!((e.mean - s.mean).abs() < 1e-7, "mean at {q}: {e:?} {s:?}");
            // K_mm = K_nn is near-singular on a dense SE grid; the jitter
            // ladder perturbs the two paths slightly differently.
            assert!((e.std - s.std).abs() < 5e-5, "std at {q}: {e:?} {s:?}");
        }
        assert!((exact.lml() - sparse.lml()).abs() < 1e-6);
    }

    #[test]
    fn full_rank_fitc_matches_exact_posterior() {
        let (exact, sparse) = fit_pair(25, 25, SparseMethod::Fitc);
        for q in [0.3, 2.1, 4.4, 7.9] {
            let e = exact.predict_one(&[q]).unwrap();
            let s = sparse.predict_one(&[q]).unwrap();
            assert!((e.mean - s.mean).abs() < 1e-7, "mean at {q}");
            assert!((e.std - s.std).abs() < 1e-6, "std at {q}");
        }
    }

    #[test]
    fn low_rank_is_close_on_smooth_data() {
        let (exact, sparse) = fit_pair(80, 12, SparseMethod::Fitc);
        assert_eq!(sparse.rank(), 12);
        for q in [0.5, 2.0, 3.7, 6.1, 7.5] {
            let e = exact.predict_one(&[q]).unwrap();
            let s = sparse.predict_one(&[q]).unwrap();
            assert!(
                (e.mean - s.mean).abs() < 5e-2,
                "mean at {q}: {} vs {}",
                e.mean,
                s.mean
            );
        }
    }

    #[test]
    fn fitc_far_field_variance_reverts_to_prior() {
        let (_, sparse) = fit_pair(60, 10, SparseMethod::Fitc);
        let p = sparse.predict_one(&[1000.0]).unwrap();
        let expect = sparse.standardizer().std; // unit-amplitude kernel
        assert!(
            (p.std - expect).abs() / expect < 1e-6,
            "far-field std {} vs prior {expect}",
            p.std
        );
        // SoR famously collapses out there instead.
        let (_, sor) = fit_pair(60, 10, SparseMethod::Sor);
        assert!(sor.predict_one(&[1000.0]).unwrap().std < 0.1 * expect);
    }

    #[test]
    fn predict_batch_matches_predict_one() {
        let (_, sparse) = fit_pair(50, 9, SparseMethod::Fitc);
        let grid = Matrix::from_vec(4, 1, vec![0.4, 1.9, 5.2, 7.7]).unwrap();
        let many = sparse.predict_batch(&grid).unwrap();
        for (i, p) in many.iter().enumerate() {
            let q = sparse.predict_one(grid.row(i)).unwrap();
            assert!((p.mean - q.mean).abs() <= 1e-10 * (1.0 + q.mean.abs()));
            assert!((p.std - q.std).abs() <= 1e-10 * (1.0 + q.std.abs()));
        }
        // Cross-matrix entry point agrees bit-for-bit.
        let kxz = sparse.kernel().cross_matrix(&grid, sparse.inducing());
        let via_cross = sparse.predict_batch_with_cross(&grid, &kxz).unwrap();
        assert_eq!(many, via_cross);
    }

    #[test]
    fn posterior_covariance_diagonal_matches_variance() {
        for method in [SparseMethod::Sor, SparseMethod::Fitc] {
            let (_, sparse) = fit_pair(40, 8, method);
            let q = Matrix::from_vec(3, 1, vec![0.8, 3.0, 6.5]).unwrap();
            let cov = sparse.posterior_covariance(&q).unwrap();
            for i in 0..3 {
                let p = sparse.predict_one(q.row(i)).unwrap();
                assert!(
                    (cov[(i, i)] - p.std * p.std).abs() < 1e-9,
                    "{method:?} diag {i}: {} vs {}",
                    cov[(i, i)],
                    p.std * p.std
                );
            }
            // Symmetric and factorable (PSD up to jitter).
            assert!(Cholesky::decompose_jittered(&cov, 1e-10, 12).is_ok());
        }
    }

    #[test]
    fn sample_posterior_moments_match() {
        let (_, sparse) = fit_pair(40, 10, SparseMethod::Fitc);
        let q = Matrix::from_vec(2, 1, vec![1.2, 6.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let samples = sparse.sample_posterior(&q, 3000, &mut rng).unwrap();
        for j in 0..2 {
            let vals: Vec<f64> = samples.iter().map(|s| s[j]).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let p = sparse.predict_one(q.row(j)).unwrap();
            assert!((mean - p.mean).abs() < 0.1, "mean at {j}");
        }
    }

    #[test]
    fn with_observation_matches_full_sparse_refit() {
        let (x, y) = dataset(30);
        let kernel = SquaredExponential::new(1.0, 1.0);
        let pivots = select_inducing_pivoted(&kernel, &x, 8, 0.0).unwrap();
        let z = x.select_rows(&pivots);
        let base = SparseGpr::fit(
            x.clone(),
            &y,
            Box::new(kernel.clone()),
            0.05,
            false,
            SparseMethod::Fitc,
            z.clone(),
        )
        .unwrap();
        let incr = base.with_observation(&[4.05], 5.3).unwrap();
        let x2 = x.with_row(&[4.05]).unwrap();
        let mut y2 = y;
        y2.push(5.3);
        let full = SparseGpr::fit(
            x2,
            &y2,
            Box::new(kernel),
            0.05,
            false,
            SparseMethod::Fitc,
            z,
        )
        .unwrap();
        assert_eq!(incr.n_train(), 31);
        assert!((incr.lml() - full.lml()).abs() < 1e-8);
        for q in [0.2, 2.2, 4.05, 7.0] {
            let a = incr.predict_one(&[q]).unwrap();
            let b = full.predict_one(&[q]).unwrap();
            assert!((a.mean - b.mean).abs() < 1e-8, "mean at {q}");
            assert!((a.std - b.std).abs() < 1e-8, "std at {q}");
        }
    }

    #[test]
    fn selectors_are_deterministic_and_distinct() {
        let (x, _) = dataset(50);
        let kernel = SquaredExponential::new(1.0, 1.0);
        let p1 = select_inducing_pivoted(&kernel, &x, 10, 0.0).unwrap();
        let p2 = select_inducing_pivoted(&kernel, &x, 10, 0.0).unwrap();
        assert_eq!(p1, p2);
        let mut s = p1.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), p1.len());
        let k1 = select_inducing_kcenter(&x, 10);
        let k2 = select_inducing_kcenter(&x, 10);
        assert_eq!(k1, k2);
        assert_eq!(k1.len(), 10);
        let mut ks = k1.clone();
        ks.sort_unstable();
        ks.dedup();
        assert_eq!(ks.len(), 10);
    }

    #[test]
    fn kcenter_spreads_points() {
        // On a uniform 1-D grid, k-center picks near-extremes early.
        let (x, _) = dataset(100);
        let k = select_inducing_kcenter(&x, 3);
        assert_eq!(k[0], 0);
        assert_eq!(k[1], 99); // farthest from row 0
    }

    #[test]
    fn stride_subsample_covers_range() {
        let idx = stride_subsample(1000, 10);
        assert_eq!(idx.len(), 10);
        assert_eq!(idx[0], 0);
        assert!(idx[9] >= 850);
        assert_eq!(stride_subsample(5, 10), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shape_and_input_errors() {
        let (x, y) = dataset(10);
        let k: Box<dyn Kernel> = Box::new(SquaredExponential::unit());
        let z = x.select_rows(&[0, 5]);
        assert!(matches!(
            SparseGpr::fit(
                Matrix::zeros(0, 1),
                &[],
                k.clone_box(),
                0.1,
                true,
                SparseMethod::Fitc,
                z.clone()
            ),
            Err(GpError::Empty)
        ));
        assert!(SparseGpr::fit(
            x.clone(),
            &y[..5],
            k.clone_box(),
            0.1,
            true,
            SparseMethod::Fitc,
            z.clone()
        )
        .is_err());
        assert!(SparseGpr::fit(
            x.clone(),
            &y,
            k.clone_box(),
            f64::NAN,
            true,
            SparseMethod::Fitc,
            z.clone()
        )
        .is_err());
        let s = SparseGpr::fit(x, &y, k, 0.1, true, SparseMethod::Fitc, z).unwrap();
        assert!(matches!(
            s.predict_one(&[0.0, 1.0]),
            Err(GpError::Dimension(_))
        ));
        assert!(matches!(
            s.with_observation(&[0.0, 1.0], 0.0),
            Err(GpError::Dimension(_))
        ));
        assert_eq!(s.method(), SparseMethod::Fitc);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.dim(), 1);
        assert!(s.condition_estimate() >= 1.0);
        assert!(s.noise_std_raw() > 0.0);
    }
}
