//! Log marginal likelihood (Eq. 12) and its analytic gradient.
//!
//! With `K_y = K + sigma_n^2 I = L L^T` and `alpha = K_y^{-1} y`:
//!
//! ```text
//! LML = -1/2 y^T alpha - sum_i log L_ii - n/2 log(2 pi)
//! dLML/dtheta_j = 1/2 tr( (alpha alpha^T - K_y^{-1}) dK_y/dtheta_j )
//! ```
//!
//! `theta` stacks the kernel's log-parameters followed by `log sigma_n`
//! (when the noise level is optimized). For the noise component,
//! `dK_y/dlog sigma_n = 2 sigma_n^2 I`, so its gradient entry collapses to
//! `sigma_n^2 tr(alpha alpha^T - K_y^{-1})` without forming a matrix.

use crate::kernel::{DistanceForm, Kernel};
use alperf_linalg::{
    cholesky::Cholesky, fastmath, matrix::Matrix, vector::dot, vector::sq_dist, LinalgError,
};
use rayon::prelude::*;

/// First jitter magnitude (relative to the mean diagonal) for the Cholesky
/// retry ladder, and the number of rungs. Matches scikit-learn's behaviour
/// of bumping `alpha` when the covariance matrix is numerically indefinite.
const CHOL_JITTER: f64 = 1e-10;
const CHOL_TRIES: usize = 8;

/// Assemble the `n x n` kernel matrix `K` for training inputs `x`
/// (rows = points). Parallelizes across rows for large `n`.
pub fn assemble_covariance(kernel: &dyn Kernel, x: &Matrix) -> Matrix {
    let n = x.nrows();
    let mut k = Matrix::zeros(n, n);
    // Fill the lower triangle (incl. diagonal) in parallel, then mirror.
    // Row i costs O(i), so plain row chunking is imbalanced but fine for the
    // n <= few-thousand sizes this workspace sees.
    if n >= 64 {
        let rows: Vec<Vec<f64>> = (0..n)
            .into_par_iter()
            .map(|i| {
                let xi = x.row(i);
                (0..=i).map(|j| kernel.eval(xi, x.row(j))).collect()
            })
            .collect();
        for (i, row) in rows.into_iter().enumerate() {
            for (j, v) in row.into_iter().enumerate() {
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
    } else {
        for i in 0..n {
            for j in 0..=i {
                let v = kernel.eval(x.row(i), x.row(j));
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
    }
    k
}

/// Cross-covariance vector `k_* = [k(x_*, x_i)]_i` (Eq. 9).
pub fn covariance_vector(kernel: &dyn Kernel, x: &Matrix, xstar: &[f64]) -> Vec<f64> {
    (0..x.nrows())
        .map(|i| kernel.eval(xstar, x.row(i)))
        .collect()
}

/// Per-fit cache of X-dependent quantities reused across every LML
/// evaluation of a `fit_gpr` call.
///
/// The training inputs are fixed for the whole multi-restart optimization
/// while the hyperparameters change at every gradient step and line-search
/// probe. For SE-family kernels ([`Kernel::distance_form`]) the covariance
/// is a function of the pairwise squared distances only, so those are
/// computed once here — `O(n^2 d)` — and every subsequent covariance
/// rebuild collapses to an `O(n^2)` scale-and-exp through the fastmath
/// vectorized exponential. Kernels without a distance form fall back to
/// pointwise assembly, unchanged.
pub struct FitCache {
    kind: CacheKind,
}

enum CacheKind {
    /// Isotropic SE: total pairwise squared distances.
    Iso { d2: Matrix },
    /// ARD SE: one squared-distance matrix per input dimension.
    Ard { d2: Vec<Matrix> },
    /// No distance structure: pointwise assembly.
    Generic,
}

impl FitCache {
    /// Precompute the distance matrices appropriate for `kernel` on the
    /// training inputs `x` (rows = points).
    pub fn build(kernel: &dyn Kernel, x: &Matrix) -> FitCache {
        let n = x.nrows();
        let kind = match kernel.distance_form() {
            Some(DistanceForm::IsoSe { .. }) => CacheKind::Iso {
                d2: Matrix::from_fn(n, n, |i, j| sq_dist(x.row(i), x.row(j))),
            },
            Some(DistanceForm::ArdSe { .. }) => {
                let d = x.ncols();
                CacheKind::Ard {
                    d2: (0..d)
                        .map(|c| {
                            Matrix::from_fn(n, n, |i, j| {
                                let v = x.row(i)[c] - x.row(j)[c];
                                v * v
                            })
                        })
                        .collect(),
                }
            }
            None => CacheKind::Generic,
        };
        FitCache { kind }
    }

    /// A cache that always takes the pointwise path (for kernels without a
    /// distance form, or when no reuse is expected).
    pub fn generic() -> FitCache {
        FitCache {
            kind: CacheKind::Generic,
        }
    }

    /// Whether covariance rebuilds use the cached fast path.
    pub fn is_cached(&self) -> bool {
        !matches!(self.kind, CacheKind::Generic)
    }
}

/// Assemble the training covariance through the cache when possible,
/// falling back to [`assemble_covariance`]. The cached path agrees with the
/// pointwise path to vectorized-exp accuracy (~1e-15 relative).
fn assemble_covariance_cached(kernel: &dyn Kernel, x: &Matrix, cache: &FitCache) -> Matrix {
    match (&cache.kind, kernel.distance_form()) {
        (CacheKind::Iso { d2 }, Some(DistanceForm::IsoSe { length_scale, sf2 })) => {
            let mut k = d2.clone();
            let c = -0.5 / (length_scale * length_scale);
            for v in k.as_mut_slice() {
                *v *= c;
            }
            fastmath::exp_inplace_scaled(k.as_mut_slice(), sf2);
            k
        }
        (CacheKind::Ard { d2 }, Some(DistanceForm::ArdSe { length_scales, sf2 }))
            if d2.len() == length_scales.len() =>
        {
            let n = x.nrows();
            let mut q = Matrix::zeros(n, n);
            for (dm, l) in d2.iter().zip(&length_scales) {
                let c = -0.5 / (l * l);
                for (qv, dv) in q.as_mut_slice().iter_mut().zip(dm.as_slice()) {
                    *qv += c * dv;
                }
            }
            fastmath::exp_inplace_scaled(q.as_mut_slice(), sf2);
            q
        }
        _ => assemble_covariance(kernel, x),
    }
}

/// Result of a marginal-likelihood evaluation that is reused by the model:
/// the Cholesky factor of `K_y` and the weight vector `alpha`.
pub struct LmlParts {
    /// Cholesky factor of `K_y`.
    pub chol: Cholesky,
    /// `alpha = K_y^{-1} y`.
    pub alpha: Vec<f64>,
    /// Log marginal likelihood value.
    pub lml: f64,
}

/// Evaluate the LML (Eq. 12) for the given kernel and noise standard
/// deviation on `(x, y)`. Also returns the pieces needed for prediction.
pub fn lml_parts(
    kernel: &dyn Kernel,
    noise_std: f64,
    x: &Matrix,
    y: &[f64],
) -> Result<LmlParts, LinalgError> {
    Ok(lml_parts_full(kernel, noise_std, x, y, &FitCache::generic())?.0)
}

/// [`lml_parts`] through a per-fit distance cache (see [`FitCache`]):
/// identical contract, but covariance assembly is an O(n^2) scale-and-exp
/// when the kernel has a distance form.
pub fn lml_parts_cached(
    kernel: &dyn Kernel,
    noise_std: f64,
    x: &Matrix,
    y: &[f64],
    cache: &FitCache,
) -> Result<LmlParts, LinalgError> {
    Ok(lml_parts_full(kernel, noise_std, x, y, cache)?.0)
}

/// Shared implementation: returns the factored parts *and* the assembled
/// `K_y` (the gradient contraction reads its off-diagonal entries, which
/// equal the noise-free `K` there).
fn lml_parts_full(
    kernel: &dyn Kernel,
    noise_std: f64,
    x: &Matrix,
    y: &[f64],
    cache: &FitCache,
) -> Result<(LmlParts, Matrix), LinalgError> {
    let n = x.nrows();
    if y.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "lml",
            details: format!("X has {n} rows, y has {}", y.len()),
        });
    }
    let mut ky = assemble_covariance_cached(kernel, x, cache);
    ky.add_diagonal(noise_std * noise_std);
    let chol = Cholesky::decompose_jittered(&ky, CHOL_JITTER, CHOL_TRIES)?;
    let alpha = chol.solve(y)?;
    let lml = -0.5 * dot(y, &alpha)
        - 0.5 * chol.log_det()
        - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
    Ok((LmlParts { chol, alpha, lml }, ky))
}

/// Evaluate just the LML value; convenience for plotting likelihood
/// landscapes (paper Figs. 4 and 5b).
pub fn lml_value(
    kernel: &dyn Kernel,
    noise_std: f64,
    x: &Matrix,
    y: &[f64],
) -> Result<f64, LinalgError> {
    Ok(lml_parts(kernel, noise_std, x, y)?.lml)
}

/// [`lml_value`] through a per-fit distance cache — the optimizer's
/// line-search workhorse.
pub fn lml_value_cached(
    kernel: &dyn Kernel,
    noise_std: f64,
    x: &Matrix,
    y: &[f64],
    cache: &FitCache,
) -> Result<f64, LinalgError> {
    Ok(lml_parts_full(kernel, noise_std, x, y, cache)?.0.lml)
}

/// Evaluate the LML and its gradient with respect to
/// `theta = [kernel log-params..., log sigma_n]`.
///
/// When `optimize_noise` is `false` the returned gradient omits the final
/// noise component.
pub fn lml_and_grad(
    kernel: &dyn Kernel,
    noise_std: f64,
    x: &Matrix,
    y: &[f64],
    optimize_noise: bool,
) -> Result<(f64, Vec<f64>), LinalgError> {
    lml_and_grad_cached(
        kernel,
        noise_std,
        x,
        y,
        optimize_noise,
        &FitCache::generic(),
    )
}

/// [`lml_and_grad`] through a per-fit distance cache.
///
/// The gradient is `dLML/dtheta_j = 1/2 tr(W dK_y/dtheta_j)` with the
/// symmetric weight `W = alpha alpha^T - K_y^{-1}` (Eq. 12's analytic
/// gradient). `K_y^{-1}` comes from structure-exploiting triangular solves
/// (`Cholesky::inverse_lower`; only the lower triangle, since `W` is
/// symmetric and every consumer reads `i >= j`) — never from a dense
/// identity solve for the full inverse — and `W` is materialized once,
/// then contracted with every
/// `dK/dtheta_j` in a single pass:
///
/// * with a distance cache, `dK/dlog l (= K .* d2 / l^2)` and
///   `dK/dlog sf (= 2 K)` are functions of the already-assembled `K_y` and
///   the cached `d2`, so the contraction is pure row-slice arithmetic with
///   no per-pair kernel calls (and no per-pair `Vec` allocations);
/// * without one, the kernel's pointwise [`Kernel::grad`] supplies
///   `dK_ij/dtheta`, exactly as before.
pub fn lml_and_grad_cached(
    kernel: &dyn Kernel,
    noise_std: f64,
    x: &Matrix,
    y: &[f64],
    optimize_noise: bool,
    cache: &FitCache,
) -> Result<(f64, Vec<f64>), LinalgError> {
    let state = lml_state_cached(kernel, noise_std, x, y, cache)?;
    let grad = grad_from_state(kernel, noise_std, x, optimize_noise, &state, cache)?;
    Ok((state.parts.lml, grad))
}

/// Factored LML evaluation at one hyperparameter setting, retaining the
/// assembled `K_y` alongside the [`LmlParts`].
///
/// The optimizer's line search evaluates many candidate thetas value-only,
/// then needs the gradient at exactly the accepted one — keeping the state
/// of each candidate lets [`grad_from_state`] start from the already-built
/// covariance and Cholesky factor instead of re-assembling and
/// re-factorizing (`O(n^3)`) at the same theta.
pub struct LmlState {
    /// Factored pieces: Cholesky of `K_y`, `alpha`, and the LML value.
    pub parts: LmlParts,
    /// Assembled `K_y` (noise variance on the diagonal).
    ky: Matrix,
}

/// Evaluate the LML through the distance cache, returning the full
/// [`LmlState`] for a later [`grad_from_state`] at the same theta.
///
/// # Errors
/// Same conditions as [`lml_parts`].
pub fn lml_state_cached(
    kernel: &dyn Kernel,
    noise_std: f64,
    x: &Matrix,
    y: &[f64],
    cache: &FitCache,
) -> Result<LmlState, LinalgError> {
    let _span = alperf_obs::span("gp.lml_eval");
    let (parts, ky) = lml_parts_full(kernel, noise_std, x, y, cache)?;
    Ok(LmlState { parts, ky })
}

/// Gradient of the LML at the theta captured by `state` (which must have
/// been produced with the *same* kernel parameters and `noise_std`).
///
/// # Errors
/// Propagates triangular-solve failures.
pub fn grad_from_state(
    kernel: &dyn Kernel,
    noise_std: f64,
    x: &Matrix,
    optimize_noise: bool,
    state: &LmlState,
    cache: &FitCache,
) -> Result<Vec<f64>, LinalgError> {
    let _span = alperf_obs::span("gp.lml_grad");
    let parts = &state.parts;
    let ky = &state.ky;
    let n = x.nrows();
    // W = alpha alpha^T - K_y^{-1}. Every contraction below (and the noise
    // trace) reads only `i >= j`, and W is symmetric, so only the lower
    // triangle is materialized: `inverse_lower` exploits the triangular
    // structure of the identity solve for ~3x fewer flops than a dense
    // two-sided solve.
    let mut w = parts.chol.inverse_lower()?;
    for i in 0..n {
        let ai = parts.alpha[i];
        for (wv, aj) in w.row_mut(i)[..=i].iter_mut().zip(&parts.alpha) {
            *wv = ai * aj - *wv;
        }
    }
    let grad_k = match (&cache.kind, kernel.distance_form()) {
        (CacheKind::Iso { d2 }, Some(DistanceForm::IsoSe { length_scale, sf2 })) => {
            let inv_l2 = 1.0 / (length_scale * length_scale);
            let (sl, sk) = contract_rows(n, 1, |i| {
                let wrow = &w.row(i)[..i];
                let krow = &ky.row(i)[..i];
                let drow = &d2.row(i)[..i];
                let mut sl = 0.0;
                let mut sk = 0.0;
                for ((wv, kv), dv) in wrow.iter().zip(krow).zip(drow) {
                    let wk = wv * kv;
                    sk += wk;
                    sl += wk * dv;
                }
                // Diagonal: d2 = 0 kills the length-scale term; K_ii = sf2
                // (the stored K_y diagonal carries the noise, so use the
                // exact kernel value instead).
                (vec![sl], sk + 0.5 * w[(i, i)] * sf2)
            });
            vec![sl[0] * inv_l2, 2.0 * sk]
        }
        (CacheKind::Ard { d2 }, Some(DistanceForm::ArdSe { length_scales, sf2 }))
            if d2.len() == length_scales.len() =>
        {
            let nd = d2.len();
            let (sl, sk) = contract_rows(n, nd, |i| {
                let wrow = &w.row(i)[..i];
                let krow = &ky.row(i)[..i];
                let mut sl = vec![0.0; nd];
                let mut sk = 0.0;
                let wk: Vec<f64> = wrow.iter().zip(krow).map(|(wv, kv)| wv * kv).collect();
                for (sld, dm) in sl.iter_mut().zip(d2) {
                    let drow = &dm.row(i)[..i];
                    for (wkv, dv) in wk.iter().zip(drow) {
                        *sld += wkv * dv;
                    }
                }
                sk += wk.iter().sum::<f64>();
                (sl, sk + 0.5 * w[(i, i)] * sf2)
            });
            let mut g: Vec<f64> = sl
                .iter()
                .zip(&length_scales)
                .map(|(s, l)| s / (l * l))
                .collect();
            g.push(2.0 * sk);
            g
        }
        _ => contract_generic(kernel, x, &w),
    };
    let mut grad = grad_k;
    if optimize_noise {
        // tr(W) * sigma_n^2: dK_y/dlog sigma_n = 2 sigma_n^2 I.
        let tr_w: f64 = (0..n).map(|i| w[(i, i)]).sum();
        grad.push(noise_std * noise_std * tr_w);
    }
    Ok(grad)
}

/// Row-parallel reduction helper for the cached gradient contractions:
/// `f(i)` returns the strict-lower-triangle row contribution as
/// `(per-length-scale sums, amplitude sum)`; rows are summed (parallel for
/// n >= 64, matching the assembly threshold).
fn contract_rows(
    n: usize,
    nd: usize,
    f: impl Fn(usize) -> (Vec<f64>, f64) + Sync,
) -> (Vec<f64>, f64) {
    let fold = |(mut asl, ask): (Vec<f64>, f64), (bsl, bsk): (Vec<f64>, f64)| {
        for (a, b) in asl.iter_mut().zip(&bsl) {
            *a += b;
        }
        (asl, ask + bsk)
    };
    if n >= 64 {
        (0..n)
            .into_par_iter()
            .map(f)
            .reduce(|| (vec![0.0; nd], 0.0), fold)
    } else {
        (0..n).map(f).fold((vec![0.0; nd], 0.0), fold)
    }
}

/// Pointwise-gradient contraction for kernels without a distance form:
/// `1/2 sum_ij W_ij dK_ij/dtheta`, symmetry-folded (diagonal once,
/// off-diagonal twice), reading `W` a row slice at a time.
fn contract_generic(kernel: &dyn Kernel, x: &Matrix, w: &Matrix) -> Vec<f64> {
    let n = x.nrows();
    let np = kernel.n_params();
    let row_term = |i: usize| {
        let mut acc = vec![0.0; np];
        let xi = x.row(i);
        let wrow = w.row(i);
        for (j, wv) in wrow.iter().enumerate().take(i + 1) {
            let m = if i == j { 0.5 * wv } else { *wv };
            let g = kernel.grad(xi, x.row(j));
            for (a, gj) in acc.iter_mut().zip(&g) {
                *a += m * gj;
            }
        }
        acc
    };
    if n >= 64 {
        (0..n).into_par_iter().map(row_term).reduce(
            || vec![0.0; np],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        )
    } else {
        let mut acc = vec![0.0; np];
        for i in 0..n {
            for (a, b) in acc.iter_mut().zip(&row_term(i)) {
                *a += b;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;

    fn toy_data() -> (Matrix, Vec<f64>) {
        let x = Matrix::from_rows(&[&[0.0], &[0.5], &[1.3], &[2.0], &[2.6]]).unwrap();
        let y = vec![0.1, 0.4, 0.9, 0.3, -0.5];
        (x, y)
    }

    #[test]
    fn covariance_is_symmetric_with_unit_diag_scale() {
        let (x, _) = toy_data();
        let k = SquaredExponential::new(1.0, 2.0);
        let c = assemble_covariance(&k, &x);
        for i in 0..x.nrows() {
            assert!((c[(i, i)] - 4.0).abs() < 1e-14);
            for j in 0..x.nrows() {
                assert_eq!(c[(i, j)], c[(j, i)]);
            }
        }
    }

    #[test]
    fn parallel_assembly_matches_serial() {
        // 70 points forces the parallel path; compare against direct eval.
        let n = 70;
        let x = Matrix::from_fn(n, 2, |i, j| (i as f64) * 0.1 + (j as f64) * 0.05);
        let k = SquaredExponential::new(1.3, 0.8);
        let c = assemble_covariance(&k, &x);
        for &(i, j) in &[(0usize, 0usize), (69, 69), (12, 55), (55, 12)] {
            assert!((c[(i, j)] - k.eval(x.row(i), x.row(j))).abs() < 1e-15);
        }
    }

    #[test]
    fn lml_of_single_point_matches_gaussian_logpdf() {
        // One observation: LML = log N(y | 0, sigma_f^2 + sigma_n^2).
        let x = Matrix::from_rows(&[&[0.0]]).unwrap();
        let y = vec![0.7];
        let sf = 1.5;
        let sn = 0.3;
        let k = SquaredExponential::new(1.0, sf);
        let var = sf * sf + sn * sn;
        let expect =
            -0.5 * y[0] * y[0] / var - 0.5 * var.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln();
        let got = lml_value(&k, sn, &x, &y).unwrap();
        assert!((got - expect).abs() < 1e-10, "{got} vs {expect}");
    }

    #[test]
    fn lml_gradient_matches_finite_difference() {
        let (x, y) = toy_data();
        let kernel = SquaredExponential::new(0.9, 1.2);
        let sn: f64 = 0.25;
        let (_, grad) = lml_and_grad(&kernel, sn, &x, &y, true).unwrap();
        assert_eq!(grad.len(), 3);
        let h = 1e-6;
        // Kernel params.
        let p0 = kernel.params();
        for j in 0..2 {
            let mut kp = kernel.clone();
            let mut p = p0.clone();
            p[j] += h;
            kp.set_params(&p);
            let up = lml_value(&kp, sn, &x, &y).unwrap();
            p[j] -= 2.0 * h;
            kp.set_params(&p);
            let dn = lml_value(&kp, sn, &x, &y).unwrap();
            let fd = (up - dn) / (2.0 * h);
            assert!(
                (fd - grad[j]).abs() <= 1e-4 * (1.0 + fd.abs()),
                "kernel param {j}: fd={fd} analytic={}",
                grad[j]
            );
        }
        // Noise param (theta = log sigma_n).
        let up = lml_value(&kernel, (sn.ln() + h).exp(), &x, &y).unwrap();
        let dn = lml_value(&kernel, (sn.ln() - h).exp(), &x, &y).unwrap();
        let fd = (up - dn) / (2.0 * h);
        assert!(
            (fd - grad[2]).abs() <= 1e-4 * (1.0 + fd.abs()),
            "noise: fd={fd} analytic={}",
            grad[2]
        );
    }

    #[test]
    fn grad_excludes_noise_when_not_optimized() {
        let (x, y) = toy_data();
        let kernel = SquaredExponential::unit();
        let (_, grad) = lml_and_grad(&kernel, 0.1, &x, &y, false).unwrap();
        assert_eq!(grad.len(), 2);
    }

    #[test]
    fn higher_noise_explains_scatter_better_than_tiny_noise() {
        // Pure-noise data around zero: LML should prefer sigma_n ~ data std
        // over a tiny sigma_n with the same kernel.
        let x = Matrix::from_rows(&[&[0.0], &[0.1], &[0.2], &[0.3], &[0.4], &[0.5]]).unwrap();
        let y = vec![0.9, -1.1, 1.0, -0.8, 1.2, -1.0];
        let k = SquaredExponential::new(5.0, 1.0); // long scale: can't wiggle
        let low = lml_value(&k, 1e-4, &x, &y).unwrap();
        let high = lml_value(&k, 1.0, &x, &y).unwrap();
        assert!(high > low, "high-noise {high} should beat low-noise {low}");
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]).unwrap();
        let y = vec![1.0];
        assert!(lml_value(&SquaredExponential::unit(), 0.1, &x, &y).is_err());
    }

    #[test]
    fn covariance_vector_matches_pointwise() {
        let (x, _) = toy_data();
        let k = SquaredExponential::new(0.7, 1.1);
        let xs = [0.9];
        let kv = covariance_vector(&k, &x, &xs);
        assert_eq!(kv.len(), x.nrows());
        for (i, kvi) in kv.iter().enumerate() {
            assert_eq!(*kvi, k.eval(&xs, x.row(i)));
        }
    }
}
