//! Log marginal likelihood (Eq. 12) and its analytic gradient.
//!
//! With `K_y = K + sigma_n^2 I = L L^T` and `alpha = K_y^{-1} y`:
//!
//! ```text
//! LML = -1/2 y^T alpha - sum_i log L_ii - n/2 log(2 pi)
//! dLML/dtheta_j = 1/2 tr( (alpha alpha^T - K_y^{-1}) dK_y/dtheta_j )
//! ```
//!
//! `theta` stacks the kernel's log-parameters followed by `log sigma_n`
//! (when the noise level is optimized). For the noise component,
//! `dK_y/dlog sigma_n = 2 sigma_n^2 I`, so its gradient entry collapses to
//! `sigma_n^2 tr(alpha alpha^T - K_y^{-1})` without forming a matrix.

use crate::kernel::Kernel;
use alperf_linalg::{cholesky::Cholesky, matrix::Matrix, vector::dot, LinalgError};
use rayon::prelude::*;

/// First jitter magnitude (relative to the mean diagonal) for the Cholesky
/// retry ladder, and the number of rungs. Matches scikit-learn's behaviour
/// of bumping `alpha` when the covariance matrix is numerically indefinite.
const CHOL_JITTER: f64 = 1e-10;
const CHOL_TRIES: usize = 8;

/// Assemble the `n x n` kernel matrix `K` for training inputs `x`
/// (rows = points). Parallelizes across rows for large `n`.
pub fn assemble_covariance(kernel: &dyn Kernel, x: &Matrix) -> Matrix {
    let n = x.nrows();
    let mut k = Matrix::zeros(n, n);
    // Fill the lower triangle (incl. diagonal) in parallel, then mirror.
    // Row i costs O(i), so plain row chunking is imbalanced but fine for the
    // n <= few-thousand sizes this workspace sees.
    if n >= 64 {
        let rows: Vec<Vec<f64>> = (0..n)
            .into_par_iter()
            .map(|i| {
                let xi = x.row(i);
                (0..=i).map(|j| kernel.eval(xi, x.row(j))).collect()
            })
            .collect();
        for (i, row) in rows.into_iter().enumerate() {
            for (j, v) in row.into_iter().enumerate() {
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
    } else {
        for i in 0..n {
            for j in 0..=i {
                let v = kernel.eval(x.row(i), x.row(j));
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
    }
    k
}

/// Cross-covariance vector `k_* = [k(x_*, x_i)]_i` (Eq. 9).
pub fn covariance_vector(kernel: &dyn Kernel, x: &Matrix, xstar: &[f64]) -> Vec<f64> {
    (0..x.nrows())
        .map(|i| kernel.eval(xstar, x.row(i)))
        .collect()
}

/// Result of a marginal-likelihood evaluation that is reused by the model:
/// the Cholesky factor of `K_y` and the weight vector `alpha`.
pub struct LmlParts {
    /// Cholesky factor of `K_y`.
    pub chol: Cholesky,
    /// `alpha = K_y^{-1} y`.
    pub alpha: Vec<f64>,
    /// Log marginal likelihood value.
    pub lml: f64,
}

/// Evaluate the LML (Eq. 12) for the given kernel and noise standard
/// deviation on `(x, y)`. Also returns the pieces needed for prediction.
pub fn lml_parts(
    kernel: &dyn Kernel,
    noise_std: f64,
    x: &Matrix,
    y: &[f64],
) -> Result<LmlParts, LinalgError> {
    let n = x.nrows();
    if y.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "lml",
            details: format!("X has {n} rows, y has {}", y.len()),
        });
    }
    let mut ky = assemble_covariance(kernel, x);
    ky.add_diagonal(noise_std * noise_std);
    let chol = Cholesky::decompose_jittered(&ky, CHOL_JITTER, CHOL_TRIES)?;
    let alpha = chol.solve(y)?;
    let lml = -0.5 * dot(y, &alpha)
        - 0.5 * chol.log_det()
        - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
    Ok(LmlParts { chol, alpha, lml })
}

/// Evaluate just the LML value; convenience for plotting likelihood
/// landscapes (paper Figs. 4 and 5b).
pub fn lml_value(
    kernel: &dyn Kernel,
    noise_std: f64,
    x: &Matrix,
    y: &[f64],
) -> Result<f64, LinalgError> {
    Ok(lml_parts(kernel, noise_std, x, y)?.lml)
}

/// Evaluate the LML and its gradient with respect to
/// `theta = [kernel log-params..., log sigma_n]`.
///
/// When `optimize_noise` is `false` the returned gradient omits the final
/// noise component.
pub fn lml_and_grad(
    kernel: &dyn Kernel,
    noise_std: f64,
    x: &Matrix,
    y: &[f64],
    optimize_noise: bool,
) -> Result<(f64, Vec<f64>), LinalgError> {
    let parts = lml_parts(kernel, noise_std, x, y)?;
    let n = x.nrows();
    let kinv = parts.chol.inverse()?;
    // M = alpha alpha^T - K_y^{-1}; symmetric.
    let np = kernel.n_params();
    // Accumulate 1/2 sum_ij M_ij dK_ij/dtheta for kernel params, exploiting
    // symmetry of both M and dK: diagonal once + off-diagonal twice.
    let grad_k: Vec<f64> = if n >= 64 {
        (0..n)
            .into_par_iter()
            .map(|i| {
                let mut acc = vec![0.0; np];
                let xi = x.row(i);
                let ai = parts.alpha[i];
                for j in 0..=i {
                    let m = ai * parts.alpha[j] - kinv[(i, j)];
                    let w = if i == j { 0.5 } else { 1.0 };
                    let g = kernel.grad(xi, x.row(j));
                    for (a, gj) in acc.iter_mut().zip(&g) {
                        *a += w * m * gj;
                    }
                }
                acc
            })
            .reduce(
                || vec![0.0; np],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            )
    } else {
        let mut acc = vec![0.0; np];
        for i in 0..n {
            let xi = x.row(i);
            let ai = parts.alpha[i];
            for j in 0..=i {
                let m = ai * parts.alpha[j] - kinv[(i, j)];
                let w = if i == j { 0.5 } else { 1.0 };
                let g = kernel.grad(xi, x.row(j));
                for (a, gj) in acc.iter_mut().zip(&g) {
                    *a += w * m * gj;
                }
            }
        }
        acc
    };
    let mut grad = grad_k;
    if optimize_noise {
        // tr(M) * sigma_n^2 with M = alpha alpha^T - K_y^{-1}.
        let tr_m: f64 = (0..n)
            .map(|i| parts.alpha[i] * parts.alpha[i] - kinv[(i, i)])
            .sum();
        grad.push(noise_std * noise_std * tr_m);
    }
    Ok((parts.lml, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;

    fn toy_data() -> (Matrix, Vec<f64>) {
        let x = Matrix::from_rows(&[&[0.0], &[0.5], &[1.3], &[2.0], &[2.6]]).unwrap();
        let y = vec![0.1, 0.4, 0.9, 0.3, -0.5];
        (x, y)
    }

    #[test]
    fn covariance_is_symmetric_with_unit_diag_scale() {
        let (x, _) = toy_data();
        let k = SquaredExponential::new(1.0, 2.0);
        let c = assemble_covariance(&k, &x);
        for i in 0..x.nrows() {
            assert!((c[(i, i)] - 4.0).abs() < 1e-14);
            for j in 0..x.nrows() {
                assert_eq!(c[(i, j)], c[(j, i)]);
            }
        }
    }

    #[test]
    fn parallel_assembly_matches_serial() {
        // 70 points forces the parallel path; compare against direct eval.
        let n = 70;
        let x = Matrix::from_fn(n, 2, |i, j| (i as f64) * 0.1 + (j as f64) * 0.05);
        let k = SquaredExponential::new(1.3, 0.8);
        let c = assemble_covariance(&k, &x);
        for &(i, j) in &[(0usize, 0usize), (69, 69), (12, 55), (55, 12)] {
            assert!((c[(i, j)] - k.eval(x.row(i), x.row(j))).abs() < 1e-15);
        }
    }

    #[test]
    fn lml_of_single_point_matches_gaussian_logpdf() {
        // One observation: LML = log N(y | 0, sigma_f^2 + sigma_n^2).
        let x = Matrix::from_rows(&[&[0.0]]).unwrap();
        let y = vec![0.7];
        let sf = 1.5;
        let sn = 0.3;
        let k = SquaredExponential::new(1.0, sf);
        let var = sf * sf + sn * sn;
        let expect =
            -0.5 * y[0] * y[0] / var - 0.5 * var.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln();
        let got = lml_value(&k, sn, &x, &y).unwrap();
        assert!((got - expect).abs() < 1e-10, "{got} vs {expect}");
    }

    #[test]
    fn lml_gradient_matches_finite_difference() {
        let (x, y) = toy_data();
        let kernel = SquaredExponential::new(0.9, 1.2);
        let sn: f64 = 0.25;
        let (_, grad) = lml_and_grad(&kernel, sn, &x, &y, true).unwrap();
        assert_eq!(grad.len(), 3);
        let h = 1e-6;
        // Kernel params.
        let p0 = kernel.params();
        for j in 0..2 {
            let mut kp = kernel.clone();
            let mut p = p0.clone();
            p[j] += h;
            kp.set_params(&p);
            let up = lml_value(&kp, sn, &x, &y).unwrap();
            p[j] -= 2.0 * h;
            kp.set_params(&p);
            let dn = lml_value(&kp, sn, &x, &y).unwrap();
            let fd = (up - dn) / (2.0 * h);
            assert!(
                (fd - grad[j]).abs() <= 1e-4 * (1.0 + fd.abs()),
                "kernel param {j}: fd={fd} analytic={}",
                grad[j]
            );
        }
        // Noise param (theta = log sigma_n).
        let up = lml_value(&kernel, (sn.ln() + h).exp(), &x, &y).unwrap();
        let dn = lml_value(&kernel, (sn.ln() - h).exp(), &x, &y).unwrap();
        let fd = (up - dn) / (2.0 * h);
        assert!(
            (fd - grad[2]).abs() <= 1e-4 * (1.0 + fd.abs()),
            "noise: fd={fd} analytic={}",
            grad[2]
        );
    }

    #[test]
    fn grad_excludes_noise_when_not_optimized() {
        let (x, y) = toy_data();
        let kernel = SquaredExponential::unit();
        let (_, grad) = lml_and_grad(&kernel, 0.1, &x, &y, false).unwrap();
        assert_eq!(grad.len(), 2);
    }

    #[test]
    fn higher_noise_explains_scatter_better_than_tiny_noise() {
        // Pure-noise data around zero: LML should prefer sigma_n ~ data std
        // over a tiny sigma_n with the same kernel.
        let x = Matrix::from_rows(&[&[0.0], &[0.1], &[0.2], &[0.3], &[0.4], &[0.5]]).unwrap();
        let y = vec![0.9, -1.1, 1.0, -0.8, 1.2, -1.0];
        let k = SquaredExponential::new(5.0, 1.0); // long scale: can't wiggle
        let low = lml_value(&k, 1e-4, &x, &y).unwrap();
        let high = lml_value(&k, 1.0, &x, &y).unwrap();
        assert!(high > low, "high-noise {high} should beat low-noise {low}");
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]).unwrap();
        let y = vec![1.0];
        assert!(lml_value(&SquaredExponential::unit(), 0.1, &x, &y).is_err());
    }

    #[test]
    fn covariance_vector_matches_pointwise() {
        let (x, _) = toy_data();
        let k = SquaredExponential::new(0.7, 1.1);
        let xs = [0.9];
        let kv = covariance_vector(&k, &x, &xs);
        assert_eq!(kv.len(), x.nrows());
        for (i, kvi) in kv.iter().enumerate() {
            assert_eq!(*kvi, k.eval(&xs, x.row(i)));
        }
    }
}
