//! Leave-one-out cross-validation pseudo-likelihood.
//!
//! Rasmussen & Williams §5.4.2 (the paper's reference [8], Ch. 5) give a
//! closed form for LOO-CV residuals directly from the full-data solve —
//! no refitting required:
//!
//! ```text
//! mu_i    = y_i - alpha_i / [K_y^{-1}]_ii        (LOO predictive mean at x_i)
//! s_i^2   = 1 / [K_y^{-1}]_ii                    (LOO predictive variance)
//! LOO-LPL = sum_i [ -1/2 log s_i^2 - (y_i - mu_i)^2 / (2 s_i^2) - 1/2 log 2 pi ]
//! ```
//!
//! The paper chooses Bayesian LML for model selection and "leaves the
//! empirical comparison of the two methods for future work" — this module
//! provides that second method so the `repro_ablation_noise` experiment can
//! compare them.

use crate::kernel::Kernel;
use crate::lml::assemble_covariance;
use alperf_linalg::{cholesky::Cholesky, matrix::Matrix, LinalgError};

/// LOO-CV summary for a kernel + noise setting on `(x, y)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LooCv {
    /// Per-point LOO predictive means.
    pub means: Vec<f64>,
    /// Per-point LOO predictive standard deviations.
    pub stds: Vec<f64>,
    /// Log pseudo-likelihood (higher is better).
    pub log_pseudo_likelihood: f64,
    /// Squared-error-loss variant: mean of `(y_i - mu_i)^2`.
    pub mean_squared_error: f64,
}

/// Compute LOO-CV residuals and the log pseudo-likelihood.
///
/// # Errors
/// Propagates Cholesky failures; rejects shape mismatches.
pub fn loo_cv(
    kernel: &dyn Kernel,
    noise_std: f64,
    x: &Matrix,
    y: &[f64],
) -> Result<LooCv, LinalgError> {
    let n = x.nrows();
    if y.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "loo_cv",
            details: format!("X has {n} rows, y has {}", y.len()),
        });
    }
    let mut ky = assemble_covariance(kernel, x);
    ky.add_diagonal(noise_std * noise_std);
    let chol = Cholesky::decompose_jittered(&ky, 1e-10, 8)?;
    let alpha = chol.solve(y)?;
    // Only diag(K_y^{-1}) is needed: with K_y^{-1} = L^{-T} L^{-1},
    // [K_y^{-1}]_ii is the squared norm of column i of L^{-1} — one forward
    // multi-RHS solve instead of the full (deprecated) inverse.
    let linv = chol.solve_forward_matrix(&Matrix::identity(n))?;
    let kinv_diag = linv.col_sq_norms();
    let mut means = Vec::with_capacity(n);
    let mut stds = Vec::with_capacity(n);
    let mut lpl = 0.0;
    let mut mse = 0.0;
    for i in 0..n {
        let kii = kinv_diag[i];
        if kii <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: i,
                value: kii,
            });
        }
        let s2 = 1.0 / kii;
        let mu = y[i] - alpha[i] * s2;
        let r = y[i] - mu;
        lpl += -0.5 * s2.ln() - r * r / (2.0 * s2) - 0.5 * (2.0 * std::f64::consts::PI).ln();
        mse += r * r;
        means.push(mu);
        stds.push(s2.sqrt());
    }
    Ok(LooCv {
        means,
        stds,
        log_pseudo_likelihood: lpl,
        mean_squared_error: mse / n as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;
    use crate::model::Gpr;

    fn data() -> (Matrix, Vec<f64>) {
        let xs: Vec<f64> = (0..12).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = xs.iter().map(|v| (0.9 * v).cos()).collect();
        (Matrix::from_vec(12, 1, xs).unwrap(), y)
    }

    #[test]
    fn loo_matches_explicit_refits() {
        // The closed form must agree with actually dropping each point and
        // refitting at the same hyperparameters.
        let (x, y) = data();
        let kernel = SquaredExponential::new(1.2, 1.0);
        let sn = 0.2;
        let loo = loo_cv(&kernel, sn, &x, &y).unwrap();
        for drop in [0usize, 5, 11] {
            let keep: Vec<usize> = (0..x.nrows()).filter(|&i| i != drop).collect();
            let xs = x.select_rows(&keep);
            let ys: Vec<f64> = keep.iter().map(|&i| y[i]).collect();
            let g = Gpr::fit(xs, &ys, Box::new(kernel.clone()), sn, false).unwrap();
            let p = g.predict_one(x.row(drop)).unwrap();
            assert!(
                (p.mean - loo.means[drop]).abs() < 1e-8,
                "mean at {drop}: {} vs {}",
                p.mean,
                loo.means[drop]
            );
            // LOO variance includes the noise term: s_i^2 = sigma_*^2 + sigma_n^2.
            let with_noise = (p.std * p.std + sn * sn).sqrt();
            assert!(
                (with_noise - loo.stds[drop]).abs() < 1e-8,
                "std at {drop}: {with_noise} vs {}",
                loo.stds[drop]
            );
        }
    }

    #[test]
    fn good_hyperparameters_score_higher() {
        let (x, y) = data();
        let good = loo_cv(&SquaredExponential::new(1.2, 1.0), 0.05, &x, &y).unwrap();
        let bad = loo_cv(&SquaredExponential::new(0.01, 1.0), 0.05, &x, &y).unwrap();
        assert!(good.log_pseudo_likelihood > bad.log_pseudo_likelihood);
        assert!(good.mean_squared_error < bad.mean_squared_error);
    }

    #[test]
    fn shapes_validated() {
        let (x, _) = data();
        assert!(loo_cv(&SquaredExponential::unit(), 0.1, &x, &[1.0]).is_err());
    }

    #[test]
    fn outputs_have_point_count_length() {
        let (x, y) = data();
        let loo = loo_cv(&SquaredExponential::unit(), 0.1, &x, &y).unwrap();
        assert_eq!(loo.means.len(), 12);
        assert_eq!(loo.stds.len(), 12);
        assert!(loo.stds.iter().all(|s| *s > 0.0));
    }
}
