//! Hyperparameter fitting by bounded, multi-restart maximization of the log
//! marginal likelihood (Eqs. 12–13).
//!
//! The paper relies on scikit-learn's behaviour: gradient ascent on the LML
//! "from a domain with specified boundaries", repeated "multiple times, each
//! time starting from a random point" for reliability. This module
//! reproduces that contract:
//!
//! * parameters live in log-space `theta = [kernel log-params..., log sigma_n]`;
//! * each component is confined to a `[lo, hi]` box (projected ascent);
//! * the `sigma_n` lower bound comes from a [`NoiseFloor`] policy — the
//!   single most consequential setting in the paper's evaluation (Fig. 7);
//! * `restarts` independent starts (the configured initial point plus
//!   seeded-random points inside the box) race; the best LML wins.
//!
//! The ascent itself is projected gradient with an adaptive step and
//! backtracking — robust on the shallow, low-dimensional LML landscapes this
//! problem produces (paper Figs. 4, 5b), with no line-search library needed.

use crate::kernel::Kernel;
use crate::lml::{self, FitCache};
use crate::model::{GpError, Gpr};
use crate::noise::NoiseFloor;
use crate::sparse::{
    select_inducing_kcenter, select_inducing_pivoted, stride_subsample, InducingSelector,
    SparseGpr, SparseMethod,
};
use crate::surrogate::Surrogate;
use alperf_linalg::{matrix::Matrix, stats::Standardizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Which posterior tier [`fit_surrogate`] builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitTier {
    /// Always the exact `O(n³)` path ([`fit_gpr`]). The default — existing
    /// callers see bit-identical behavior.
    Exact,
    /// Always the sparse inducing-point path, with an exact-agreement
    /// validation gate at calibration sizes (`n <= gate_max_n`).
    Approximate,
    /// Exact below [`ApproxConfig::exact_threshold`] training points,
    /// sparse above — the size-based selector.
    Auto,
}

/// Knobs of the approximate (sparse) tier.
#[derive(Debug, Clone, Copy)]
pub struct ApproxConfig {
    /// Which sparse posterior to build. FITC is the default: its corrected
    /// diagonal keeps far-field variances honest, which variance-driven AL
    /// strategies depend on.
    pub method: SparseMethod,
    /// How inducing points are chosen from the training rows.
    pub selector: InducingSelector,
    /// Maximum number of inducing points `m` (clamped to `n`).
    pub max_rank: usize,
    /// Early-stop tolerance for the pivoted-Cholesky selector: stop once
    /// the residual kernel trace falls below `trace_tol * trace(K)`.
    pub trace_tol: f64,
    /// Hyperparameters are optimized exactly on a deterministic stride
    /// subsample of this many training rows (clamped to `n`) — `O(k³)`
    /// instead of `O(n³)` per LML evaluation.
    pub hyper_subsample: usize,
    /// [`FitTier::Auto`] uses the exact tier at `n <= exact_threshold`.
    pub exact_threshold: usize,
    /// Validation-gate tolerance: with [`FitTier::Approximate`] and
    /// `n <= gate_max_n`, the sparse posterior mean is compared against the
    /// exact one on the training inputs; if the standardized RMSE exceeds
    /// this, the fit falls back to exact (counter `gp.tier.fallback`).
    pub gate_tol: f64,
    /// Largest `n` at which the validation gate runs (an exact fit must be
    /// affordable to compare against).
    pub gate_max_n: usize,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            method: SparseMethod::Fitc,
            selector: InducingSelector::PivotedCholesky,
            max_rank: 256,
            trace_tol: 1e-6,
            hyper_subsample: 200,
            exact_threshold: 800,
            gate_tol: 0.05,
            gate_max_n: 400,
        }
    }
}

/// Configuration for [`fit_gpr`].
#[derive(Clone)]
pub struct GprConfig {
    /// Kernel template; its current hyperparameters seed the first start.
    pub kernel: Box<dyn Kernel>,
    /// Box constraints for each kernel parameter, in log-space, in
    /// [`Kernel::params`] order. Empty = default `[ln 1e-5, ln 1e5]` boxes.
    pub kernel_bounds: Vec<(f64, f64)>,
    /// Lower-bound policy for `sigma_n` (see paper Fig. 7).
    pub noise_floor: NoiseFloor,
    /// Upper bound for `sigma_n`.
    pub noise_upper: f64,
    /// Initial `sigma_n` for the first start.
    pub noise_init: f64,
    /// Whether `sigma_n` is optimized (true) or held at `noise_init` (false).
    pub optimize_noise: bool,
    /// Total number of starts (first = configured init, rest random).
    pub restarts: usize,
    /// Maximum ascent iterations per start.
    pub max_iters: usize,
    /// Convergence threshold on the projected-gradient infinity norm.
    pub grad_tol: f64,
    /// Standardize the response before fitting.
    pub standardize: bool,
    /// RNG seed for the random restarts (deterministic runs).
    pub seed: u64,
    /// Run the independent restarts on the rayon pool. All start points are
    /// pre-drawn from the seeded RNG and the winner is reduced by
    /// `(lml, restart index)`, so the outcome is bit-identical to the
    /// serial loop (see `parallel_restarts_match_serial`).
    pub parallel: bool,
    /// Which posterior tier [`fit_surrogate`] builds; [`fit_gpr`] ignores
    /// this and is always exact.
    pub tier: FitTier,
    /// Approximate-tier knobs (inducing selection, rank, validation gate).
    pub approx: ApproxConfig,
}

impl GprConfig {
    /// Sensible defaults mirroring the paper's prototype: unit SE kernel,
    /// recommended noise floor `0.1`, 5 restarts.
    pub fn new(kernel: Box<dyn Kernel>) -> Self {
        GprConfig {
            kernel,
            kernel_bounds: Vec::new(),
            noise_floor: NoiseFloor::recommended(),
            noise_upper: 1e1,
            noise_init: 0.3,
            optimize_noise: true,
            restarts: 5,
            max_iters: 200,
            grad_tol: 1e-5,
            standardize: true,
            seed: 0,
            parallel: true,
            tier: FitTier::Exact,
            approx: ApproxConfig::default(),
        }
    }

    /// Builder: select the posterior tier for [`fit_surrogate`].
    pub fn with_tier(mut self, tier: FitTier) -> Self {
        self.tier = tier;
        self
    }

    /// Builder: set the approximate-tier knobs.
    pub fn with_approx(mut self, approx: ApproxConfig) -> Self {
        self.approx = approx;
        self
    }

    /// Builder: run restarts serially (`false`) or on the rayon pool
    /// (`true`, the default). Results are identical either way.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Builder: set the noise floor policy.
    pub fn with_noise_floor(mut self, floor: NoiseFloor) -> Self {
        self.noise_floor = floor;
        self
    }

    /// Builder: set the number of restarts.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Builder: set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: set kernel parameter bounds (log-space).
    pub fn with_kernel_bounds(mut self, bounds: Vec<(f64, f64)>) -> Self {
        self.kernel_bounds = bounds;
        self
    }

    /// Builder: hold the noise level fixed at `sigma_n`.
    pub fn with_fixed_noise(mut self, sigma_n: f64) -> Self {
        self.noise_init = sigma_n;
        self.optimize_noise = false;
        self
    }

    /// Builder: enable/disable response standardization. The paper's
    /// prototype (scikit-learn 0.18.dev0, `normalize_y=False`) fits on the
    /// raw log-transformed responses; standardizing a 1–2 point training
    /// set would re-center it to ~0 and let the amplitude collapse, so AL
    /// experiments that start from a single seed measurement should turn
    /// this off.
    pub fn with_standardize(mut self, standardize: bool) -> Self {
        self.standardize = standardize;
        self
    }
}

/// Diagnostics from the optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimOutcome {
    /// Best log marginal likelihood found (standardized scale).
    pub lml: f64,
    /// Optimized `theta` = kernel log-params (+ `log sigma_n` if optimized).
    pub theta: Vec<f64>,
    /// Which restart won (0 = configured initial point).
    pub best_restart: usize,
    /// Ascent iterations spent by the winning restart.
    pub iterations: usize,
    /// Total LML evaluations across all restarts.
    pub evaluations: usize,
}

/// Default log-space box for kernel parameters when the caller gives none.
const DEFAULT_BOUND: (f64, f64) = (-11.512925464970229, 11.512925464970229); // ln 1e-5 .. ln 1e5

fn clamp_vec(theta: &mut [f64], bounds: &[(f64, f64)]) {
    for (t, (lo, hi)) in theta.iter_mut().zip(bounds) {
        *t = t.clamp(*lo, *hi);
    }
}

/// One projected-gradient ascent run from `theta0`. Returns
/// `(best_theta, best_lml, iterations, evaluations)`.
#[allow(clippy::too_many_arguments)] // internal: mirrors the optimizer state
fn ascend(
    kernel_template: &dyn Kernel,
    x: &Matrix,
    y: &[f64],
    theta0: Vec<f64>,
    bounds: &[(f64, f64)],
    optimize_noise: bool,
    fixed_noise: f64,
    max_iters: usize,
    grad_tol: f64,
    cache: &FitCache,
) -> (Vec<f64>, f64, usize, usize) {
    let nk = kernel_template.n_params();
    let noise_of = |theta: &[f64]| -> f64 {
        if optimize_noise {
            theta[nk].exp()
        } else {
            fixed_noise
        }
    };
    // Value evaluation (one Cholesky) for the line search, retaining the
    // factored state; the O(n^3) gradient (lower triangle of K_y^{-1}) is
    // computed only at accepted points, *from* the accepted candidate's
    // state — no re-assembly or re-factorization at the same theta. Both go
    // through the per-fit distance cache: for SE-family kernels a
    // covariance rebuild is an O(n^2) scale-and-exp.
    let eval_state = |theta: &[f64]| -> Option<lml::LmlState> {
        let mut kern = kernel_template.clone_box();
        kern.set_params(&theta[..nk]);
        lml::lml_state_cached(kern.as_ref(), noise_of(theta), x, y, cache).ok()
    };
    let grad_at = |theta: &[f64], state: &lml::LmlState| -> Option<Vec<f64>> {
        let mut kern = kernel_template.clone_box();
        kern.set_params(&theta[..nk]);
        lml::grad_from_state(
            kern.as_ref(),
            noise_of(theta),
            x,
            optimize_noise,
            state,
            cache,
        )
        .ok()
    };

    let mut theta = theta0;
    clamp_vec(&mut theta, bounds);
    let mut evals = 0usize;
    let (mut f, mut g) = match eval_state(&theta).and_then(|s| {
        let g = grad_at(&theta, &s)?;
        Some((s.parts.lml, g))
    }) {
        Some(v) => {
            evals += 1;
            v
        }
        None => return (theta, f64::NEG_INFINITY, 0, 1),
    };
    let mut step = 0.1;
    let mut iters = 0usize;
    while iters < max_iters {
        iters += 1;
        // Projected gradient: zero out components pushing into an active bound.
        let mut pg = g.clone();
        for (j, pgj) in pg.iter_mut().enumerate() {
            let (lo, hi) = bounds[j];
            if (theta[j] <= lo && *pgj < 0.0) || (theta[j] >= hi && *pgj > 0.0) {
                *pgj = 0.0;
            }
        }
        let gnorm = pg.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if gnorm < grad_tol {
            break;
        }
        // Backtracking line search along the projected gradient; the
        // accepted candidate's factored state feeds the gradient directly.
        let mut accepted: Option<lml::LmlState> = None;
        let mut local_step = step;
        for _ in 0..30 {
            let mut cand: Vec<f64> = theta
                .iter()
                .zip(&pg)
                .map(|(t, d)| t + local_step * d)
                .collect();
            clamp_vec(&mut cand, bounds);
            if cand == theta {
                break; // fully blocked by bounds
            }
            evals += 1;
            if let Some(state) = eval_state(&cand) {
                let fc = state.parts.lml;
                if fc > f + 1e-12 {
                    theta = cand;
                    f = fc;
                    accepted = Some(state);
                    break;
                }
            }
            local_step *= 0.5;
        }
        if let Some(state) = accepted {
            // Gradient at the accepted point only, reusing its Cholesky.
            match grad_at(&theta, &state) {
                Some(gc) => {
                    evals += 1;
                    g = gc;
                }
                None => break,
            }
            step = (local_step * 2.0).min(1.0);
        } else {
            break; // no improving step found: converged (or stuck on bound)
        }
    }
    (theta, f, iters, evals)
}

/// Fit a GPR with marginal-likelihood hyperparameter optimization (Eq. 13).
///
/// ```
/// use alperf_gp::kernel::SquaredExponential;
/// use alperf_gp::noise::NoiseFloor;
/// use alperf_gp::optimize::{fit_gpr, GprConfig};
/// use alperf_linalg::matrix::Matrix;
///
/// let x = Matrix::from_vec(6, 1, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
/// let y = [0.0, 0.9, 1.8, 3.1, 4.0, 5.1];
/// let cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
///     .with_noise_floor(NoiseFloor::recommended());
/// let (model, outcome) = fit_gpr(&x, &y, &cfg).unwrap();
/// assert!(outcome.lml.is_finite());
/// let p = model.predict_one(&[2.5]).unwrap();
/// assert!((p.mean - 2.5).abs() < 0.5);
/// ```
///
/// Returns the fitted model together with optimization diagnostics. The
/// returned model's hyperparameters respect `config.kernel_bounds` and the
/// noise floor policy exactly (projection, not penalty).
///
/// # Errors
/// Propagates fit errors ([`GpError`]); if *every* restart fails to produce
/// a finite LML the error from the final refit is returned.
pub fn fit_gpr(x: &Matrix, y: &[f64], config: &GprConfig) -> Result<(Gpr, OptimOutcome), GpError> {
    let _span = alperf_obs::span("gp.fit");
    if x.nrows() == 0 {
        return Err(GpError::Empty);
    }
    if y.len() != x.nrows() {
        return Err(GpError::Dimension(format!(
            "X has {} rows but y has {} values",
            x.nrows(),
            y.len()
        )));
    }
    // Standardize once here so every restart sees the same targets and the
    // noise floor applies on the standardized scale.
    let standardizer = if config.standardize {
        Standardizer::fit(y)
    } else {
        Standardizer::identity()
    };
    let y_std = standardizer.apply_vec(y);

    let nk = config.kernel.n_params();
    let mut bounds: Vec<(f64, f64)> = if config.kernel_bounds.is_empty() {
        vec![DEFAULT_BOUND; nk]
    } else {
        assert_eq!(
            config.kernel_bounds.len(),
            nk,
            "kernel_bounds length must match kernel.n_params()"
        );
        config.kernel_bounds.clone()
    };
    let noise_lo = config.noise_floor.lower_bound(x.nrows());
    if config.optimize_noise {
        bounds.push((noise_lo.ln(), config.noise_upper.ln()));
    }

    // The distance matrices depend only on X, which is fixed for the whole
    // multi-restart optimization: build them once and share across every
    // LML evaluation of every restart.
    let cache = FitCache::build(config.kernel.as_ref(), x);

    // Pre-draw every start point serially from the seeded RNG (identical
    // draw order to the historical serial loop), then run the independent
    // ascents — in parallel when configured — and reduce in restart order,
    // so the winner is bit-identical to the serial loop.
    let restarts = config.restarts.max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let starts: Vec<Vec<f64>> = (0..restarts)
        .map(|r| {
            if r == 0 {
                let mut t = config.kernel.params();
                if config.optimize_noise {
                    t.push(config.noise_floor.clamp(config.noise_init, x.nrows()).ln());
                }
                t
            } else {
                bounds
                    .iter()
                    .map(|(lo, hi)| rng.gen_range(*lo..=*hi))
                    .collect()
            }
        })
        .collect();
    let fixed_noise = config.noise_floor.clamp(config.noise_init, x.nrows());
    // Restarts may run on rayon worker threads, where the thread-local
    // span stack is empty; carry the gp.fit span's identity into the
    // closure so restart spans still attach under it in the trace tree.
    let fit_span = alperf_obs::current_span();
    let run = |theta0: Vec<f64>| {
        let _restart_span = alperf_obs::span_with_parent("gp.fit.restart", fit_span);
        ascend(
            config.kernel.as_ref(),
            x,
            &y_std,
            theta0,
            &bounds,
            config.optimize_noise,
            fixed_noise,
            config.max_iters,
            config.grad_tol,
            &cache,
        )
    };
    let results: Vec<(Vec<f64>, f64, usize, usize)> = if config.parallel && restarts > 1 {
        starts.into_par_iter().map(run).collect()
    } else {
        starts.into_iter().map(run).collect()
    };
    let mut best: Option<(Vec<f64>, f64, usize, usize)> = None;
    let mut total_evals = 0usize;
    for (r, (theta, f, iters, evals)) in results.into_iter().enumerate() {
        total_evals += evals;
        let better = match &best {
            Some((_, bf, _, _)) => f > *bf,
            None => f.is_finite(),
        };
        if better {
            best = Some((theta, f, r, iters));
        }
    }

    alperf_obs::add("gp.fit.lml_evaluations", total_evals as u64);
    let (theta, lml, best_restart, iterations) = best.ok_or_else(|| {
        GpError::Dimension("all optimizer restarts failed to produce a finite LML".into())
    })?;

    let mut kernel = config.kernel.clone_box();
    kernel.set_params(&theta[..nk]);
    let noise = if config.optimize_noise {
        theta[nk].exp()
    } else {
        config.noise_floor.clamp(config.noise_init, x.nrows())
    };
    // Refit on the *raw* y so Gpr's own standardizer matches ours.
    let model = Gpr::fit(x.clone(), y, kernel, noise, config.standardize)?;
    // Fit-completion record: streamed into the live aggregator / black-box
    // ring (observational only — emitted after every numeric decision).
    alperf_obs::record(
        "gp.fit.done",
        &[
            ("n", alperf_obs::Value::U64(x.nrows() as u64)),
            ("lml", alperf_obs::Value::F64(lml)),
            ("restarts", alperf_obs::Value::U64(restarts as u64)),
            ("best_restart", alperf_obs::Value::U64(best_restart as u64)),
            ("evaluations", alperf_obs::Value::U64(total_evals as u64)),
        ],
    );
    Ok((
        model,
        OptimOutcome {
            lml,
            theta,
            best_restart,
            iterations,
            evaluations: total_evals,
        },
    ))
}

/// Bump the `{tier}`-labeled fit counter once per completed surrogate fit,
/// keyed by the tier actually returned (gate fallback counts as `exact`).
fn note_fit_tier(tier: &'static str) {
    if alperf_obs::enabled() {
        alperf_obs::counter_vec(
            alperf_obs::names::GP_FITS_BY_TIER,
            &[alperf_obs::names::LABEL_TIER],
        )
        .with(&[tier])
        .inc();
    }
}

/// Tier-selecting fit: exact ([`fit_gpr`]) or the sparse inducing-point
/// approximation, per `config.tier`.
///
/// The approximate path breaks the exact tier's `O(n³)` ceiling in three
/// `O(n m²)`-or-cheaper stages:
///
/// 1. **Hyperparameters** are optimized exactly — same multi-restart
///    machinery, same seed stream — on a deterministic *stride subsample*
///    of `approx.hyper_subsample` rows, so each LML evaluation is `O(k³)`
///    with `k ≪ n`.
/// 2. **Inducing points** are selected from the full training set under
///    the fitted kernel: pivoted-Cholesky pivots (information-greedy,
///    trace-based early stop) or greedy k-center. Both are strictly serial
///    and bit-identical across worker counts.
/// 3. The **sparse posterior** ([`SparseGpr`]) is conditioned on all `n`
///    rows through the `m`-dimensional capacitance factor.
///
/// With [`FitTier::Approximate`] at calibration sizes
/// (`n <= approx.gate_max_n`) a **validation gate** also fits the exact
/// posterior and compares means on the training inputs; if the
/// standardized RMSE exceeds `approx.gate_tol` the exact model is returned
/// instead (counter `gp.tier.fallback`, record `gp.tier.gate`). The gate
/// is how the repo pins approximate-vs-exact agreement in CI without ever
/// paying `O(n³)` at large `n`.
///
/// # Errors
/// Propagates [`fit_gpr`] / [`SparseGpr::fit`] failures.
pub fn fit_surrogate(
    x: &Matrix,
    y: &[f64],
    config: &GprConfig,
) -> Result<(Surrogate, OptimOutcome), GpError> {
    let n = x.nrows();
    let sparse_now = match config.tier {
        FitTier::Exact => false,
        FitTier::Approximate => true,
        FitTier::Auto => n > config.approx.exact_threshold,
    };
    if !sparse_now {
        let (model, outcome) = fit_gpr(x, y, config)?;
        note_fit_tier("exact");
        return Ok((Surrogate::Exact(model), outcome));
    }
    if n == 0 {
        return Err(GpError::Empty);
    }
    if y.len() != n {
        return Err(GpError::Dimension(format!(
            "X has {n} rows but y has {} values",
            y.len()
        )));
    }
    let a = &config.approx;

    // 1. Exact hyperparameter fit on the stride subsample.
    let k = a.hyper_subsample.max(1).min(n);
    let idx = stride_subsample(n, k);
    let xs = x.select_rows(&idx);
    let ys: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
    let (hyper_model, outcome) = fit_gpr(&xs, &ys, config)?;
    let kernel = hyper_model.kernel().clone_box();
    let noise = hyper_model.noise_std();

    // 2. Inducing selection under the fitted kernel.
    let m = a.max_rank.max(1).min(n);
    let pivots = match a.selector {
        InducingSelector::PivotedCholesky => {
            select_inducing_pivoted(kernel.as_ref(), x, m, a.trace_tol)?
        }
        InducingSelector::KCenter => select_inducing_kcenter(x, m),
    };
    let z = x.select_rows(&pivots);

    // 3. Sparse posterior over all n rows.
    let sparse = SparseGpr::fit(x.clone(), y, kernel, noise, config.standardize, a.method, z)?;

    // 4. Validation gate at calibration sizes: approximate means must track
    // the exact posterior or the fit falls back.
    if matches!(config.tier, FitTier::Approximate) && n <= a.gate_max_n {
        let exact = Gpr::fit(
            x.clone(),
            y,
            sparse.kernel().clone_box(),
            sparse.noise_std(),
            config.standardize,
        )?;
        let pe = exact.predict_batch(x)?;
        let pa = sparse.predict_batch(x)?;
        let mse: f64 = pe
            .iter()
            .zip(&pa)
            .map(|(e, s)| {
                let d = e.mean - s.mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        // Normalize by the response scale so the tolerance is unitless.
        let scale = exact.standardizer().std.abs().max(1e-12);
        let gate_rmse = mse.sqrt() / scale;
        let pass = gate_rmse <= a.gate_tol;
        alperf_obs::record(
            "gp.tier.gate",
            &[
                ("n", alperf_obs::Value::U64(n as u64)),
                ("rank", alperf_obs::Value::U64(sparse.rank() as u64)),
                ("rmse", alperf_obs::Value::F64(gate_rmse)),
                ("tol", alperf_obs::Value::F64(a.gate_tol)),
                ("pass", alperf_obs::Value::Bool(pass)),
            ],
        );
        if !pass {
            alperf_obs::inc("gp.tier.fallback");
            note_fit_tier("exact");
            return Ok((Surrogate::Exact(exact), outcome));
        }
    }
    note_fit_tier(sparse.method().name());
    Ok((Surrogate::Sparse(sparse), outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;

    fn smooth_data(n: usize) -> (Matrix, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.4).collect();
        let y: Vec<f64> = xs.iter().map(|v| (0.7 * v).sin() * 3.0 + 10.0).collect();
        (Matrix::from_vec(n, 1, xs).unwrap(), y)
    }

    fn noisy_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.4).collect();
        let y: Vec<f64> = xs
            .iter()
            .map(|v| (0.7 * v).sin() * 3.0 + rng.gen_range(-1.0..1.0))
            .collect();
        (Matrix::from_vec(n, 1, xs).unwrap(), y)
    }

    #[test]
    fn optimized_beats_initial_lml() {
        let (x, y) = smooth_data(25);
        // Start from a deliberately bad kernel.
        let cfg = GprConfig::new(Box::new(SquaredExponential::new(100.0, 0.01)))
            .with_noise_floor(NoiseFloor::Fixed(1e-3))
            .with_restarts(3);
        let (model, out) = fit_gpr(&x, &y, &cfg).unwrap();
        // LML of the initial hyperparameters on standardized data:
        let std = Standardizer::fit(&y);
        let init = lml::lml_value(
            &SquaredExponential::new(100.0, 0.01),
            0.3,
            &x,
            &std.apply_vec(&y),
        )
        .unwrap();
        assert!(out.lml > init, "optimized {} <= initial {init}", out.lml);
        assert!((model.lml() - out.lml).abs() < 1e-6);
    }

    #[test]
    fn fit_recovers_smooth_function() {
        let (x, y) = smooth_data(30);
        let cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
            .with_noise_floor(NoiseFloor::Fixed(1e-3));
        let (model, _) = fit_gpr(&x, &y, &cfg).unwrap();
        // Interpolation error must be small away from edges.
        for q in [1.0, 3.3, 6.2, 9.0] {
            let p = model.predict_one(&[q]).unwrap();
            let truth = (0.7 * q).sin() * 3.0 + 10.0;
            assert!((p.mean - truth).abs() < 0.2, "q={q}: {} vs {truth}", p.mean);
        }
    }

    #[test]
    fn noise_floor_is_respected() {
        let (x, y) = smooth_data(12);
        // Smooth noiseless data would drive sigma_n to ~0 without a floor.
        let cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
            .with_noise_floor(NoiseFloor::Fixed(0.1));
        let (model, _) = fit_gpr(&x, &y, &cfg).unwrap();
        assert!(
            model.noise_std() >= 0.1 - 1e-12,
            "sigma_n = {}",
            model.noise_std()
        );
    }

    #[test]
    fn loose_floor_collapses_noise_on_clean_data() {
        // The paper's overfitting observation: with sigma_n >= 1e-8 and
        // noise-free well-aligned measurements, the fitted noise approaches
        // the bound.
        let (x, y) = smooth_data(8);
        let cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
            .with_noise_floor(NoiseFloor::loose())
            .with_restarts(4);
        let (model, _) = fit_gpr(&x, &y, &cfg).unwrap();
        assert!(
            model.noise_std() < 1e-2,
            "expected tiny noise on clean data, got {}",
            model.noise_std()
        );
    }

    #[test]
    fn noisy_data_yields_substantial_noise_estimate() {
        let (x, y) = noisy_data(60, 7);
        let cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
            .with_noise_floor(NoiseFloor::Fixed(1e-6))
            .with_restarts(4);
        let (model, _) = fit_gpr(&x, &y, &cfg).unwrap();
        // Noise ~ U(-1,1) => std ~ 0.577 raw; on standardized scale divide
        // by data std (~2.2) => ~0.26. Accept a broad band.
        assert!(
            model.noise_std() > 0.05 && model.noise_std() < 0.8,
            "sigma_n = {}",
            model.noise_std()
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let (x, y) = noisy_data(20, 3);
        let cfg = GprConfig::new(Box::new(SquaredExponential::unit())).with_seed(42);
        let (m1, o1) = fit_gpr(&x, &y, &cfg).unwrap();
        let (m2, o2) = fit_gpr(&x, &y, &cfg).unwrap();
        assert_eq!(o1.theta, o2.theta);
        assert_eq!(m1.noise_std(), m2.noise_std());
    }

    #[test]
    fn fixed_noise_is_not_optimized() {
        let (x, y) = noisy_data(15, 9);
        let cfg = GprConfig::new(Box::new(SquaredExponential::unit())).with_fixed_noise(0.37);
        let (model, out) = fit_gpr(&x, &y, &cfg).unwrap();
        assert_eq!(model.noise_std(), 0.37);
        assert_eq!(out.theta.len(), 2); // kernel params only
    }

    #[test]
    fn kernel_bounds_are_enforced() {
        let (x, y) = smooth_data(15);
        // Confine length scale to [2, 5] in raw units.
        let cfg = GprConfig::new(Box::new(SquaredExponential::unit())).with_kernel_bounds(vec![
            (2f64.ln(), 5f64.ln()),
            (DEFAULT_BOUND.0, DEFAULT_BOUND.1),
        ]);
        let (model, out) = fit_gpr(&x, &y, &cfg).unwrap();
        let l = out.theta[0].exp();
        assert!((2.0 - 1e-9..=5.0 + 1e-9).contains(&l), "l = {l}");
        let _ = model;
    }

    #[test]
    fn single_point_fit_works() {
        // The paper seeds AL with a single experiment; the optimizer must
        // not fall over on n = 1.
        let x = Matrix::from_rows(&[&[0.5]]).unwrap();
        let y = vec![3.0];
        let cfg = GprConfig::new(Box::new(SquaredExponential::unit()));
        let (model, _) = fit_gpr(&x, &y, &cfg).unwrap();
        let p = model.predict_one(&[0.5]).unwrap();
        assert!(p.mean.is_finite() && p.std.is_finite());
    }

    #[test]
    fn restarts_never_hurt() {
        let (x, y) = noisy_data(25, 11);
        let one = GprConfig::new(Box::new(SquaredExponential::new(30.0, 0.1)))
            .with_restarts(1)
            .with_seed(5);
        let many = GprConfig::new(Box::new(SquaredExponential::new(30.0, 0.1)))
            .with_restarts(8)
            .with_seed(5);
        let (_, o1) = fit_gpr(&x, &y, &one).unwrap();
        let (_, o8) = fit_gpr(&x, &y, &many).unwrap();
        assert!(o8.lml >= o1.lml - 1e-9);
        assert!(o8.evaluations > o1.evaluations);
    }

    #[test]
    fn empty_input_rejected() {
        let cfg = GprConfig::new(Box::new(SquaredExponential::unit()));
        assert!(matches!(
            fit_gpr(&Matrix::zeros(0, 0), &[], &cfg),
            Err(GpError::Empty)
        ));
    }

    #[test]
    fn parallel_restarts_match_serial() {
        let (x, y) = noisy_data(30, 21);
        for seed in [0u64, 7, 42] {
            let base = GprConfig::new(Box::new(SquaredExponential::new(3.0, 0.5)))
                .with_restarts(6)
                .with_seed(seed);
            let (mp, op) = fit_gpr(&x, &y, &base.clone().with_parallel(true)).unwrap();
            let (ms, os) = fit_gpr(&x, &y, &base.with_parallel(false)).unwrap();
            // Bit-identical outcome, not approximately equal.
            assert_eq!(op.theta, os.theta, "seed {seed}");
            assert!(op.lml == os.lml, "seed {seed}: {} vs {}", op.lml, os.lml);
            assert_eq!(op.best_restart, os.best_restart, "seed {seed}");
            assert_eq!(op.iterations, os.iterations, "seed {seed}");
            assert_eq!(op.evaluations, os.evaluations, "seed {seed}");
            assert_eq!(mp.noise_std(), ms.noise_std(), "seed {seed}");
        }
    }

    /// Kernel that fails (NaN covariance -> `NonFinite` -> restart yields
    /// `-inf`) whenever its length scale is below a threshold: random
    /// restarts landing there fail to converge, exactly the case the
    /// parallel reduction must handle identically to the serial loop.
    #[derive(Clone)]
    struct Fragile(SquaredExponential);

    impl Kernel for Fragile {
        fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
            if self.0.length_scale < 0.5 {
                f64::NAN
            } else {
                self.0.eval(a, b)
            }
        }
        fn n_params(&self) -> usize {
            self.0.n_params()
        }
        fn params(&self) -> Vec<f64> {
            self.0.params()
        }
        fn set_params(&mut self, p: &[f64]) {
            self.0.set_params(p);
        }
        fn param_names(&self) -> Vec<String> {
            self.0.param_names()
        }
        fn grad(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
            self.0.grad(a, b)
        }
        fn clone_box(&self) -> Box<dyn Kernel> {
            Box::new(self.clone())
        }
        // No distance_form: exercises the generic (uncached) path.
    }

    #[test]
    fn parallel_restarts_match_serial_with_failing_restarts() {
        let (x, y) = noisy_data(18, 4);
        // With l-bounds spanning [1e-5, 1e5], roughly half the random
        // starts draw l < 0.5 and fail outright; restart 0 (l = 2) succeeds.
        let base = GprConfig::new(Box::new(Fragile(SquaredExponential::new(2.0, 1.0))))
            .with_restarts(8)
            .with_seed(13);
        let (_, op) = fit_gpr(&x, &y, &base.clone().with_parallel(true)).unwrap();
        let (_, os) = fit_gpr(&x, &y, &base.with_parallel(false)).unwrap();
        assert_eq!(op.theta, os.theta);
        assert!(op.lml == os.lml);
        assert_eq!(op.best_restart, os.best_restart);
        assert_eq!(op.iterations, os.iterations);
        assert_eq!(op.evaluations, os.evaluations);
        // Sanity: failed restarts evaluate once; a run where *every*
        // random start succeeded would need far more evaluations than the
        // 8-restart budget actually spent here.
        assert!(op.lml.is_finite());
    }

    #[test]
    fn fit_surrogate_exact_tier_matches_fit_gpr() {
        let (x, y) = noisy_data(25, 2);
        let cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
            .with_restarts(2)
            .with_seed(9);
        let (s, so) = fit_surrogate(&x, &y, &cfg).unwrap();
        let (g, go) = fit_gpr(&x, &y, &cfg).unwrap();
        assert_eq!(s.tier_name(), "exact");
        assert_eq!(so.theta, go.theta);
        assert_eq!(s.noise_std(), g.noise_std());
        assert_eq!(
            s.predict_one(&[3.3]).unwrap(),
            g.predict_one(&[3.3]).unwrap()
        );
    }

    #[test]
    fn fit_surrogate_approximate_tier_passes_gate_on_smooth_data() {
        let (x, y) = smooth_data(120);
        let cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
            .with_restarts(2)
            .with_tier(FitTier::Approximate)
            .with_approx(ApproxConfig {
                max_rank: 24,
                hyper_subsample: 60,
                ..ApproxConfig::default()
            });
        let (s, _) = fit_surrogate(&x, &y, &cfg).unwrap();
        assert_eq!(s.tier_name(), "fitc", "gate should pass on smooth data");
        assert!(s.rank() <= 24);
        // Posterior means track the exact fit closely on the training grid.
        let exact = Gpr::fit(x.clone(), &y, s.kernel().clone_box(), s.noise_std(), true).unwrap();
        for i in (0..120).step_by(17) {
            let a = s.predict_one(x.row(i)).unwrap().mean;
            let e = exact.predict_one(x.row(i)).unwrap().mean;
            assert!((a - e).abs() < 0.1, "row {i}: {a} vs {e}");
        }
    }

    #[test]
    fn fit_surrogate_gate_falls_back_when_rank_is_starved() {
        // Rank 2 cannot represent ~9 wiggles: the gate must detect the
        // mismatch and return the exact tier.
        let (x, y) = smooth_data(100);
        let cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
            .with_restarts(2)
            .with_tier(FitTier::Approximate)
            .with_approx(ApproxConfig {
                max_rank: 2,
                hyper_subsample: 50,
                ..ApproxConfig::default()
            });
        let (s, _) = fit_surrogate(&x, &y, &cfg).unwrap();
        // (The gp.tier.fallback counter only moves when telemetry is
        // globally enabled, which unit tests leave off.)
        assert_eq!(s.tier_name(), "exact");
    }

    #[test]
    fn fit_surrogate_auto_switches_on_size() {
        let cfg_template = || {
            GprConfig::new(Box::new(SquaredExponential::unit()))
                .with_restarts(1)
                .with_tier(FitTier::Auto)
                .with_approx(ApproxConfig {
                    exact_threshold: 40,
                    max_rank: 16,
                    hyper_subsample: 30,
                    ..ApproxConfig::default()
                })
        };
        let (x_small, y_small) = smooth_data(30);
        let (s, _) = fit_surrogate(&x_small, &y_small, &cfg_template()).unwrap();
        assert_eq!(s.tier_name(), "exact");
        let (x_big, y_big) = smooth_data(80);
        let (s, _) = fit_surrogate(&x_big, &y_big, &cfg_template()).unwrap();
        assert_eq!(s.tier_name(), "fitc");
        assert_eq!(s.rank(), 16);
    }

    #[test]
    fn fit_surrogate_is_deterministic() {
        let (x, y) = noisy_data(90, 13);
        let cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
            .with_restarts(2)
            .with_seed(4)
            .with_tier(FitTier::Approximate)
            .with_approx(ApproxConfig {
                max_rank: 20,
                hyper_subsample: 45,
                ..ApproxConfig::default()
            });
        let (a, oa) = fit_surrogate(&x, &y, &cfg).unwrap();
        let (b, ob) = fit_surrogate(&x, &y, &cfg).unwrap();
        assert_eq!(oa.theta, ob.theta);
        assert_eq!(a.tier_name(), b.tier_name());
        assert_eq!(
            a.predict_one(&[5.5]).unwrap(),
            b.predict_one(&[5.5]).unwrap()
        );
    }

    #[test]
    fn dynamic_floor_uses_training_size() {
        let (x, y) = smooth_data(16);
        let cfg = GprConfig::new(Box::new(SquaredExponential::unit()))
            .with_noise_floor(NoiseFloor::DynamicInvSqrtN);
        let (model, _) = fit_gpr(&x, &y, &cfg).unwrap();
        // Floor for n=16 is 0.25.
        assert!(model.noise_std() >= 0.25 - 1e-12);
    }
}
