//! Covariance functions with analytic gradients in log-parameter space.
//!
//! The paper (Eq. 11) uses the squared exponential
//! `k(x_p, x_q) = sigma_f^2 exp(-|x_p - x_q|^2 / (2 l^2))` with
//! hyperparameters `l` (length scale) and `sigma_f` (amplitude). All
//! hyperparameters here are strictly positive, so optimization works on
//! `theta = log(param)`: positivity is automatic and the LML landscape
//! (paper Figs. 4, 5b) is plotted in the same coordinates.
//!
//! Every kernel reports `d k / d theta_j` analytically; `lml::lml_and_grad`
//! assembles those into the marginal-likelihood gradient. Gradient formulas
//! are verified against central finite differences in the tests below.

use alperf_linalg::matrix::Matrix;

/// A positive-definite covariance function over `R^d`.
///
/// Implementations must be cheap to clone (they hold only hyperparameters)
/// and `Send + Sync` so covariance assembly can parallelize across rows.
pub trait Kernel: Send + Sync {
    /// Covariance `k(a, b)`.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64;

    /// Cross-covariance matrix `K[i, j] = k(a_i, b_j)` over the rows of `a`
    /// and `b`. The default evaluates pointwise (parallel over rows for
    /// large outputs); squared-exponential kernels override it with a
    /// blocked-matmul formulation that is an order of magnitude faster for
    /// batched prediction.
    fn cross_matrix(&self, a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.nrows(), b.nrows(), |i, j| self.eval(a.row(i), b.row(j)))
    }

    /// Prior variance at a point, `k(a, a)`. Kernels for which this is a
    /// constant can skip the distance computation.
    fn diag_value(&self, a: &[f64]) -> f64 {
        self.eval(a, a)
    }

    /// Number of tunable hyperparameters.
    fn n_params(&self) -> usize;

    /// Current hyperparameters as `log(param)` values.
    fn params(&self) -> Vec<f64>;

    /// Overwrite hyperparameters from `log(param)` values.
    ///
    /// # Panics
    /// Panics if `p.len() != self.n_params()`.
    fn set_params(&mut self, p: &[f64]);

    /// Human-readable names matching [`Kernel::params`] order.
    fn param_names(&self) -> Vec<String>;

    /// Gradient `[d k(a,b) / d theta_j]` where `theta_j = log(param_j)`.
    fn grad(&self, a: &[f64], b: &[f64]) -> Vec<f64>;

    /// Gradient of the covariance with respect to the *first input*:
    /// `[d k(a, b) / d a_d]`. Returns `None` for kernels without an
    /// implemented input gradient — callers fall back to derivative-free
    /// optimization. (The paper's §VI: "Gradient-based methods, which are
    /// available with GPR, would provide an important benefit for problems
    /// with high-dimensional parameter spaces.")
    fn grad_x(&self, _a: &[f64], _b: &[f64]) -> Option<Vec<f64>> {
        None
    }

    /// Clone into a boxed trait object.
    fn clone_box(&self) -> Box<dyn Kernel>;

    /// Squared-distance parameterization of this kernel, if it has one.
    ///
    /// SE-family kernels are functions of the (per-dimension) pairwise
    /// squared distances *only*, so during hyperparameter optimization —
    /// where the training inputs are fixed while `theta` changes at every
    /// line-search step — the distance matrices can be computed once per
    /// fit and every covariance rebuild collapses to an O(n^2)
    /// scale-and-exp (`lml::FitCache`). Kernels without this structure
    /// (Matern, rational quadratic, compositions) return `None` and take
    /// the generic pointwise path.
    fn distance_form(&self) -> Option<DistanceForm> {
        None
    }
}

/// How a kernel depends on pairwise squared distances (see
/// [`Kernel::distance_form`]). Values reflect the kernel's *current*
/// hyperparameters; the structure (which variant) is invariant under
/// `set_params`, which is what makes per-fit distance caching sound.
#[derive(Debug, Clone, PartialEq)]
pub enum DistanceForm {
    /// `k = sf2 * exp(-0.5 * d2 / l^2)` over the total squared distance,
    /// with params `[log l, log sf]`.
    IsoSe {
        /// Length scale `l`.
        length_scale: f64,
        /// Amplitude *variance* `sigma_f^2`.
        sf2: f64,
    },
    /// `k = sf2 * exp(-0.5 * sum_d d2_d / l_d^2)` over per-dimension
    /// squared distances, with params `[log l_1, ..., log l_d, log sf]`.
    ArdSe {
        /// Per-dimension length scales.
        length_scales: Vec<f64>,
        /// Amplitude *variance* `sigma_f^2`.
        sf2: f64,
    },
}

impl Clone for Box<dyn Kernel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Squared-exponential cross-covariance via the squared-distance identity
/// `|u - v|^2 = |u|^2 + |v|^2 - 2 u.v` applied to inputs pre-scaled by the
/// inverse length scales. The Gram term `u.v` goes through the cache-blocked
/// (and, for large outputs, parallel) [`Matrix::matmul`], turning the
/// `O(m n d)` pointwise evaluation into one matmul plus `O(m n)` exps.
///
/// Numerics: the identity cancels catastrophically only when `|u - v|` is
/// tiny, exactly where `exp(-q/2) ~ 1` is insensitive to the error; the
/// `max(0, .)` clamp removes the negative-`q` case. Agreement with the
/// pointwise path is ~1e-13 relative, well inside the 1e-10 contract of
/// `Gpr::predict_batch`.
fn se_cross(a: &Matrix, b: &Matrix, inv_scales: &[f64], sf2: f64) -> Matrix {
    let scale =
        |m: &Matrix| Matrix::from_fn(m.nrows(), m.ncols(), |i, j| m[(i, j)] * inv_scales[j]);
    let sa = scale(a);
    let sb = scale(b);
    let na = sa.row_sq_norms();
    let nb = sb.row_sq_norms();
    let mut out = sa
        .matmul(&sb.transpose())
        .expect("scaled inputs share the input dimension");
    for (i, &ni) in na.iter().enumerate() {
        for (v, &nj) in out.row_mut(i).iter_mut().zip(&nb) {
            *v = -0.5 * (ni + nj - 2.0 * *v).max(0.0);
        }
    }
    // Vectorized exp over the whole block; exp(0) is exact, so entries at
    // zero distance are exactly sf2, matching the pointwise path.
    alperf_linalg::fastmath::exp_inplace_scaled(out.as_mut_slice(), sf2);
    out
}

/// Isotropic squared exponential (RBF), Eq. 11 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct SquaredExponential {
    /// Length scale `l > 0`.
    pub length_scale: f64,
    /// Amplitude `sigma_f > 0` (the *standard deviation*, not variance).
    pub amplitude: f64,
}

impl SquaredExponential {
    /// New kernel; panics on non-positive hyperparameters.
    pub fn new(length_scale: f64, amplitude: f64) -> Self {
        assert!(
            length_scale > 0.0 && amplitude > 0.0,
            "hyperparameters must be positive"
        );
        SquaredExponential {
            length_scale,
            amplitude,
        }
    }

    /// Unit kernel (`l = 1`, `sigma_f = 1`) — the customary optimizer seed.
    pub fn unit() -> Self {
        Self::new(1.0, 1.0)
    }
}

impl Kernel for SquaredExponential {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let r2 = alperf_linalg::vector::sq_dist(a, b);
        let sf2 = self.amplitude * self.amplitude;
        sf2 * (-r2 / (2.0 * self.length_scale * self.length_scale)).exp()
    }

    fn cross_matrix(&self, a: &Matrix, b: &Matrix) -> Matrix {
        let inv = vec![1.0 / self.length_scale; a.ncols()];
        se_cross(a, b, &inv, self.amplitude * self.amplitude)
    }

    fn diag_value(&self, _a: &[f64]) -> f64 {
        self.amplitude * self.amplitude
    }

    fn n_params(&self) -> usize {
        2
    }

    fn params(&self) -> Vec<f64> {
        vec![self.length_scale.ln(), self.amplitude.ln()]
    }

    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), 2, "SquaredExponential has 2 params");
        self.length_scale = p[0].exp();
        self.amplitude = p[1].exp();
    }

    fn param_names(&self) -> Vec<String> {
        vec!["log_length_scale".into(), "log_amplitude".into()]
    }

    fn grad(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let r2 = alperf_linalg::vector::sq_dist(a, b);
        let l2 = self.length_scale * self.length_scale;
        let k = self.amplitude * self.amplitude * (-r2 / (2.0 * l2)).exp();
        // d k / d log l = k * r^2 / l^2 ; d k / d log sigma_f = 2 k.
        vec![k * r2 / l2, 2.0 * k]
    }

    fn grad_x(&self, a: &[f64], b: &[f64]) -> Option<Vec<f64>> {
        let k = self.eval(a, b);
        let inv_l2 = 1.0 / (self.length_scale * self.length_scale);
        Some(
            a.iter()
                .zip(b)
                .map(|(ai, bi)| -k * (ai - bi) * inv_l2)
                .collect(),
        )
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }

    fn distance_form(&self) -> Option<DistanceForm> {
        Some(DistanceForm::IsoSe {
            length_scale: self.length_scale,
            sf2: self.amplitude * self.amplitude,
        })
    }
}

/// Squared exponential with Automatic Relevance Determination: one length
/// scale per input dimension. The paper's future-work section motivates this
/// for higher-dimensional parameter spaces.
#[derive(Debug, Clone, PartialEq)]
pub struct ArdSquaredExponential {
    /// Per-dimension length scales, all `> 0`.
    pub length_scales: Vec<f64>,
    /// Amplitude `sigma_f > 0`.
    pub amplitude: f64,
}

impl ArdSquaredExponential {
    /// New ARD kernel; panics on non-positive hyperparameters or empty scales.
    pub fn new(length_scales: Vec<f64>, amplitude: f64) -> Self {
        assert!(!length_scales.is_empty(), "need at least one dimension");
        assert!(
            length_scales.iter().all(|&l| l > 0.0) && amplitude > 0.0,
            "hyperparameters must be positive"
        );
        ArdSquaredExponential {
            length_scales,
            amplitude,
        }
    }

    /// Unit ARD kernel for `dim` input dimensions.
    pub fn unit(dim: usize) -> Self {
        Self::new(vec![1.0; dim], 1.0)
    }
}

impl Kernel for ArdSquaredExponential {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), self.length_scales.len(), "dimension mismatch");
        let mut q = 0.0;
        for ((ai, bi), l) in a.iter().zip(b).zip(&self.length_scales) {
            let d = (ai - bi) / l;
            q += d * d;
        }
        self.amplitude * self.amplitude * (-0.5 * q).exp()
    }

    fn cross_matrix(&self, a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.ncols(), self.length_scales.len(), "dimension mismatch");
        let inv: Vec<f64> = self.length_scales.iter().map(|l| 1.0 / l).collect();
        se_cross(a, b, &inv, self.amplitude * self.amplitude)
    }

    fn diag_value(&self, _a: &[f64]) -> f64 {
        self.amplitude * self.amplitude
    }

    fn n_params(&self) -> usize {
        self.length_scales.len() + 1
    }

    fn params(&self) -> Vec<f64> {
        let mut p: Vec<f64> = self.length_scales.iter().map(|l| l.ln()).collect();
        p.push(self.amplitude.ln());
        p
    }

    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.n_params(), "ARD-SE param count mismatch");
        for (l, &pi) in self.length_scales.iter_mut().zip(p) {
            *l = pi.exp();
        }
        self.amplitude = p[p.len() - 1].exp();
    }

    fn param_names(&self) -> Vec<String> {
        let mut names: Vec<String> = (0..self.length_scales.len())
            .map(|d| format!("log_length_scale_{d}"))
            .collect();
        names.push("log_amplitude".into());
        names
    }

    fn grad(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let k = self.eval(a, b);
        let mut g = Vec::with_capacity(self.n_params());
        for ((ai, bi), l) in a.iter().zip(b).zip(&self.length_scales) {
            let d = (ai - bi) / l;
            // d k / d log l_d = k * ((a_d - b_d)/l_d)^2
            g.push(k * d * d);
        }
        g.push(2.0 * k);
        g
    }

    fn grad_x(&self, a: &[f64], b: &[f64]) -> Option<Vec<f64>> {
        let k = self.eval(a, b);
        Some(
            a.iter()
                .zip(b)
                .zip(&self.length_scales)
                .map(|((ai, bi), l)| -k * (ai - bi) / (l * l))
                .collect(),
        )
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }

    fn distance_form(&self) -> Option<DistanceForm> {
        Some(DistanceForm::ArdSe {
            length_scales: self.length_scales.clone(),
            sf2: self.amplitude * self.amplitude,
        })
    }
}

/// Matérn covariance with `nu = 3/2`:
/// `k = sigma_f^2 (1 + s) exp(-s)`, `s = sqrt(3) r / l`.
///
/// Once-differentiable sample paths — a better prior than the squared
/// exponential for performance surfaces with kinks (cache-capacity cliffs,
/// NUMA transitions).
#[derive(Debug, Clone, PartialEq)]
pub struct Matern32 {
    /// Length scale `l > 0`.
    pub length_scale: f64,
    /// Amplitude `sigma_f > 0`.
    pub amplitude: f64,
}

impl Matern32 {
    /// New kernel; panics on non-positive hyperparameters.
    pub fn new(length_scale: f64, amplitude: f64) -> Self {
        assert!(
            length_scale > 0.0 && amplitude > 0.0,
            "hyperparameters must be positive"
        );
        Matern32 {
            length_scale,
            amplitude,
        }
    }
}

impl Kernel for Matern32 {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let r = alperf_linalg::vector::sq_dist(a, b).sqrt();
        let s = 3f64.sqrt() * r / self.length_scale;
        self.amplitude * self.amplitude * (1.0 + s) * (-s).exp()
    }

    fn diag_value(&self, _a: &[f64]) -> f64 {
        self.amplitude * self.amplitude
    }

    fn n_params(&self) -> usize {
        2
    }

    fn params(&self) -> Vec<f64> {
        vec![self.length_scale.ln(), self.amplitude.ln()]
    }

    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), 2, "Matern32 has 2 params");
        self.length_scale = p[0].exp();
        self.amplitude = p[1].exp();
    }

    fn param_names(&self) -> Vec<String> {
        vec!["log_length_scale".into(), "log_amplitude".into()]
    }

    fn grad(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let r = alperf_linalg::vector::sq_dist(a, b).sqrt();
        let s = 3f64.sqrt() * r / self.length_scale;
        let sf2 = self.amplitude * self.amplitude;
        // d k / d log l = sigma_f^2 s^2 exp(-s)
        let dl = sf2 * s * s * (-s).exp();
        let k = sf2 * (1.0 + s) * (-s).exp();
        vec![dl, 2.0 * k]
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

/// Matérn covariance with `nu = 5/2`:
/// `k = sigma_f^2 (1 + s + s^2/3) exp(-s)`, `s = sqrt(5) r / l`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matern52 {
    /// Length scale `l > 0`.
    pub length_scale: f64,
    /// Amplitude `sigma_f > 0`.
    pub amplitude: f64,
}

impl Matern52 {
    /// New kernel; panics on non-positive hyperparameters.
    pub fn new(length_scale: f64, amplitude: f64) -> Self {
        assert!(
            length_scale > 0.0 && amplitude > 0.0,
            "hyperparameters must be positive"
        );
        Matern52 {
            length_scale,
            amplitude,
        }
    }
}

impl Kernel for Matern52 {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let r = alperf_linalg::vector::sq_dist(a, b).sqrt();
        let s = 5f64.sqrt() * r / self.length_scale;
        self.amplitude * self.amplitude * (1.0 + s + s * s / 3.0) * (-s).exp()
    }

    fn diag_value(&self, _a: &[f64]) -> f64 {
        self.amplitude * self.amplitude
    }

    fn n_params(&self) -> usize {
        2
    }

    fn params(&self) -> Vec<f64> {
        vec![self.length_scale.ln(), self.amplitude.ln()]
    }

    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), 2, "Matern52 has 2 params");
        self.length_scale = p[0].exp();
        self.amplitude = p[1].exp();
    }

    fn param_names(&self) -> Vec<String> {
        vec!["log_length_scale".into(), "log_amplitude".into()]
    }

    fn grad(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let r = alperf_linalg::vector::sq_dist(a, b).sqrt();
        let s = 5f64.sqrt() * r / self.length_scale;
        let sf2 = self.amplitude * self.amplitude;
        let e = (-s).exp();
        // d k / d s = -sigma_f^2 e^{-s} s (1 + s) / 3 ;
        // d s / d log l = -s  =>  d k / d log l = sigma_f^2 e^{-s} s^2 (1+s)/3
        let dl = sf2 * e * s * s * (1.0 + s) / 3.0;
        let k = sf2 * (1.0 + s + s * s / 3.0) * e;
        vec![dl, 2.0 * k]
    }

    fn grad_x(&self, a: &[f64], b: &[f64]) -> Option<Vec<f64>> {
        // dk/ds = -sigma_f^2 e^{-s} s (1+s)/3 with s = sqrt(5) r / l and
        // ds/da_d = sqrt(5)(a_d - b_d)/(l r); s/r = sqrt(5)/l collapses the
        // product to -(5/(3 l^2)) sigma_f^2 e^{-s} (1+s) (a_d - b_d),
        // which is also the correct (zero) limit at r = 0.
        let r = alperf_linalg::vector::sq_dist(a, b).sqrt();
        let s = 5f64.sqrt() * r / self.length_scale;
        let sf2 = self.amplitude * self.amplitude;
        let factor =
            -sf2 * (-s).exp() * (1.0 + s) * 5.0 / (3.0 * self.length_scale * self.length_scale);
        Some(a.iter().zip(b).map(|(ai, bi)| factor * (ai - bi)).collect())
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

/// Rational quadratic:
/// `k = sigma_f^2 (1 + r^2 / (2 alpha l^2))^{-alpha}` — an infinite scale
/// mixture of squared exponentials; `alpha -> inf` recovers the SE kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct RationalQuadratic {
    /// Length scale `l > 0`.
    pub length_scale: f64,
    /// Amplitude `sigma_f > 0`.
    pub amplitude: f64,
    /// Scale-mixture parameter `alpha > 0`.
    pub alpha: f64,
}

impl RationalQuadratic {
    /// New kernel; panics on non-positive hyperparameters.
    pub fn new(length_scale: f64, amplitude: f64, alpha: f64) -> Self {
        assert!(
            length_scale > 0.0 && amplitude > 0.0 && alpha > 0.0,
            "hyperparameters must be positive"
        );
        RationalQuadratic {
            length_scale,
            amplitude,
            alpha,
        }
    }
}

impl Kernel for RationalQuadratic {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let r2 = alperf_linalg::vector::sq_dist(a, b);
        let u = r2 / (2.0 * self.alpha * self.length_scale * self.length_scale);
        self.amplitude * self.amplitude * (1.0 + u).powf(-self.alpha)
    }

    fn diag_value(&self, _a: &[f64]) -> f64 {
        self.amplitude * self.amplitude
    }

    fn n_params(&self) -> usize {
        3
    }

    fn params(&self) -> Vec<f64> {
        vec![self.length_scale.ln(), self.amplitude.ln(), self.alpha.ln()]
    }

    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), 3, "RationalQuadratic has 3 params");
        self.length_scale = p[0].exp();
        self.amplitude = p[1].exp();
        self.alpha = p[2].exp();
    }

    fn param_names(&self) -> Vec<String> {
        vec![
            "log_length_scale".into(),
            "log_amplitude".into(),
            "log_alpha".into(),
        ]
    }

    fn grad(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let r2 = alperf_linalg::vector::sq_dist(a, b);
        let u = r2 / (2.0 * self.alpha * self.length_scale * self.length_scale);
        let base = 1.0 + u;
        let k = self.amplitude * self.amplitude * base.powf(-self.alpha);
        // d k / d log l = 2 alpha sigma_f^2 u (1+u)^{-alpha-1}
        let dl =
            2.0 * self.alpha * self.amplitude * self.amplitude * u * base.powf(-self.alpha - 1.0);
        // d k / d log alpha = k * alpha * (u/(1+u) - ln(1+u))
        let da = k * self.alpha * (u / base - base.ln());
        vec![dl, 2.0 * k, da]
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

/// White-noise kernel: `k(a, b) = sigma^2 [a == b]` (exact equality).
///
/// Summed with a smooth kernel it models per-point jitter *inside* the
/// covariance (scikit-learn's `WhiteKernel`); this workspace usually keeps
/// the noise outside the kernel as `K + sigma_n^2 I`, but the composed form
/// is needed to reproduce kernels written the scikit way.
#[derive(Debug, Clone, PartialEq)]
pub struct WhiteNoise {
    /// Noise standard deviation `sigma > 0`.
    pub sigma: f64,
}

impl WhiteNoise {
    /// New white-noise kernel; panics on non-positive sigma.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma > 0.0, "hyperparameters must be positive");
        WhiteNoise { sigma }
    }
}

impl Kernel for WhiteNoise {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        if a == b {
            self.sigma * self.sigma
        } else {
            0.0
        }
    }

    fn diag_value(&self, _a: &[f64]) -> f64 {
        self.sigma * self.sigma
    }

    fn n_params(&self) -> usize {
        1
    }

    fn params(&self) -> Vec<f64> {
        vec![self.sigma.ln()]
    }

    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), 1, "WhiteNoise has 1 param");
        self.sigma = p[0].exp();
    }

    fn param_names(&self) -> Vec<String> {
        vec!["log_sigma".into()]
    }

    fn grad(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        vec![2.0 * self.eval(a, b)]
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

/// A kernel multiplied by a tunable positive constant: `k = c^2 * inner`.
/// scikit-learn's `ConstantKernel * RBF(...)` pattern.
#[derive(Clone)]
pub struct ScaledKernel {
    /// Scale factor `c > 0` (applied squared, like an amplitude).
    pub scale: f64,
    /// The kernel being scaled.
    pub inner: Box<dyn Kernel>,
}

impl ScaledKernel {
    /// New scaled kernel; panics on non-positive scale.
    pub fn new(scale: f64, inner: Box<dyn Kernel>) -> Self {
        assert!(scale > 0.0, "hyperparameters must be positive");
        ScaledKernel { scale, inner }
    }
}

impl Kernel for ScaledKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.scale * self.scale * self.inner.eval(a, b)
    }

    fn cross_matrix(&self, a: &Matrix, b: &Matrix) -> Matrix {
        let c2 = self.scale * self.scale;
        let mut m = self.inner.cross_matrix(a, b);
        for v in m.as_mut_slice() {
            *v *= c2;
        }
        m
    }

    fn diag_value(&self, a: &[f64]) -> f64 {
        self.scale * self.scale * self.inner.diag_value(a)
    }

    fn n_params(&self) -> usize {
        1 + self.inner.n_params()
    }

    fn params(&self) -> Vec<f64> {
        let mut p = vec![self.scale.ln()];
        p.extend(self.inner.params());
        p
    }

    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(
            p.len(),
            self.n_params(),
            "ScaledKernel param count mismatch"
        );
        self.scale = p[0].exp();
        self.inner.set_params(&p[1..]);
    }

    fn param_names(&self) -> Vec<String> {
        let mut names = vec!["log_scale".into()];
        names.extend(
            self.inner
                .param_names()
                .into_iter()
                .map(|n| format!("inner.{n}")),
        );
        names
    }

    fn grad(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let c2 = self.scale * self.scale;
        let mut g = vec![2.0 * c2 * self.inner.eval(a, b)];
        g.extend(self.inner.grad(a, b).into_iter().map(|d| c2 * d));
        g
    }

    fn grad_x(&self, a: &[f64], b: &[f64]) -> Option<Vec<f64>> {
        let c2 = self.scale * self.scale;
        self.inner
            .grad_x(a, b)
            .map(|g| g.into_iter().map(|d| c2 * d).collect())
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

/// Sum of two kernels: `k = k1 + k2`; parameter vector is the concatenation.
#[derive(Clone)]
pub struct SumKernel {
    /// Left summand.
    pub left: Box<dyn Kernel>,
    /// Right summand.
    pub right: Box<dyn Kernel>,
}

impl SumKernel {
    /// Combine two kernels additively.
    pub fn new(left: Box<dyn Kernel>, right: Box<dyn Kernel>) -> Self {
        SumKernel { left, right }
    }
}

impl Kernel for SumKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.left.eval(a, b) + self.right.eval(a, b)
    }

    fn diag_value(&self, a: &[f64]) -> f64 {
        self.left.diag_value(a) + self.right.diag_value(a)
    }

    fn n_params(&self) -> usize {
        self.left.n_params() + self.right.n_params()
    }

    fn params(&self) -> Vec<f64> {
        let mut p = self.left.params();
        p.extend(self.right.params());
        p
    }

    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), self.n_params(), "SumKernel param count mismatch");
        let nl = self.left.n_params();
        self.left.set_params(&p[..nl]);
        self.right.set_params(&p[nl..]);
    }

    fn param_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .left
            .param_names()
            .into_iter()
            .map(|n| format!("left.{n}"))
            .collect();
        names.extend(
            self.right
                .param_names()
                .into_iter()
                .map(|n| format!("right.{n}")),
        );
        names
    }

    fn grad(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut g = self.left.grad(a, b);
        g.extend(self.right.grad(a, b));
        g
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

/// Product of two kernels: `k = k1 * k2`; gradient via the product rule.
#[derive(Clone)]
pub struct ProductKernel {
    /// Left factor.
    pub left: Box<dyn Kernel>,
    /// Right factor.
    pub right: Box<dyn Kernel>,
}

impl ProductKernel {
    /// Combine two kernels multiplicatively.
    pub fn new(left: Box<dyn Kernel>, right: Box<dyn Kernel>) -> Self {
        ProductKernel { left, right }
    }
}

impl Kernel for ProductKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.left.eval(a, b) * self.right.eval(a, b)
    }

    fn n_params(&self) -> usize {
        self.left.n_params() + self.right.n_params()
    }

    fn params(&self) -> Vec<f64> {
        let mut p = self.left.params();
        p.extend(self.right.params());
        p
    }

    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(
            p.len(),
            self.n_params(),
            "ProductKernel param count mismatch"
        );
        let nl = self.left.n_params();
        self.left.set_params(&p[..nl]);
        self.right.set_params(&p[nl..]);
    }

    fn param_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .left
            .param_names()
            .into_iter()
            .map(|n| format!("left.{n}"))
            .collect();
        names.extend(
            self.right
                .param_names()
                .into_iter()
                .map(|n| format!("right.{n}")),
        );
        names
    }

    fn grad(&self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let kl = self.left.eval(a, b);
        let kr = self.right.eval(a, b);
        let mut g: Vec<f64> = self.left.grad(a, b).into_iter().map(|d| d * kr).collect();
        g.extend(self.right.grad(a, b).into_iter().map(|d| d * kl));
        g
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference check of `grad` against `eval` for every
    /// log-parameter of `k` at the pair `(a, b)`.
    fn check_grad(k: &dyn Kernel, a: &[f64], b: &[f64]) {
        let p0 = k.params();
        let g = k.grad(a, b);
        assert_eq!(g.len(), k.n_params());
        let h = 1e-6;
        for j in 0..k.n_params() {
            let mut kp = k.clone_box();
            let mut p = p0.clone();
            p[j] += h;
            kp.set_params(&p);
            let up = kp.eval(a, b);
            p[j] -= 2.0 * h;
            kp.set_params(&p);
            let dn = kp.eval(a, b);
            let fd = (up - dn) / (2.0 * h);
            assert!(
                (fd - g[j]).abs() <= 1e-5 * (1.0 + fd.abs()),
                "param {j}: fd={fd}, analytic={}",
                g[j]
            );
        }
    }

    #[test]
    fn se_known_values() {
        let k = SquaredExponential::new(1.0, 2.0);
        // k(x, x) = sigma_f^2 = 4.
        assert_eq!(k.eval(&[0.0], &[0.0]), 4.0);
        assert_eq!(k.diag_value(&[3.0]), 4.0);
        // r = l => k = sigma_f^2 e^{-1/2}.
        let v = k.eval(&[0.0], &[1.0]);
        assert!((v - 4.0 * (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn se_longer_scale_means_higher_correlation() {
        let near = SquaredExponential::new(0.5, 1.0).eval(&[0.0], &[1.0]);
        let far = SquaredExponential::new(5.0, 1.0).eval(&[0.0], &[1.0]);
        assert!(far > near);
    }

    #[test]
    fn se_gradient_matches_fd() {
        let k = SquaredExponential::new(0.7, 1.3);
        check_grad(&k, &[0.2, -0.4], &[1.0, 0.3]);
        check_grad(&k, &[0.0], &[0.0]); // coincident points
    }

    #[test]
    fn se_param_round_trip() {
        let mut k = SquaredExponential::unit();
        k.set_params(&[0.5f64.ln(), 3.0f64.ln()]);
        assert!((k.length_scale - 0.5).abs() < 1e-15);
        assert!((k.amplitude - 3.0).abs() < 1e-15);
        let p = k.params();
        assert!((p[0] - 0.5f64.ln()).abs() < 1e-15);
        assert_eq!(k.param_names().len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn se_rejects_negative_scale() {
        SquaredExponential::new(-1.0, 1.0);
    }

    #[test]
    fn ard_reduces_to_isotropic_when_scales_equal() {
        let iso = SquaredExponential::new(0.8, 1.5);
        let ard = ArdSquaredExponential::new(vec![0.8, 0.8, 0.8], 1.5);
        let a = [0.1, 0.5, -0.2];
        let b = [0.4, -0.1, 0.2];
        assert!((iso.eval(&a, &b) - ard.eval(&a, &b)).abs() < 1e-14);
    }

    #[test]
    fn ard_gradient_matches_fd() {
        let k = ArdSquaredExponential::new(vec![0.5, 2.0], 1.2);
        check_grad(&k, &[0.2, -0.4], &[1.0, 0.3]);
    }

    #[test]
    fn ard_irrelevant_dimension() {
        // Huge length scale on dim 1 => dim 1 barely matters.
        let k = ArdSquaredExponential::new(vec![1.0, 1e6], 1.0);
        let v1 = k.eval(&[0.0, 0.0], &[0.0, 100.0]);
        assert!((v1 - 1.0).abs() < 1e-6);
        let v2 = k.eval(&[0.0, 0.0], &[1.0, 0.0]);
        assert!(v2 < 0.7);
    }

    #[test]
    fn ard_param_round_trip() {
        let mut k = ArdSquaredExponential::unit(3);
        assert_eq!(k.n_params(), 4);
        let p = vec![0.1, 0.2, 0.3, 0.4];
        k.set_params(&p);
        let q = k.params();
        for (a, b) in p.iter().zip(&q) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn matern32_known_values_and_grad() {
        let k = Matern32::new(1.0, 1.0);
        assert!((k.eval(&[0.0], &[0.0]) - 1.0).abs() < 1e-15);
        check_grad(&k, &[0.3], &[1.7]);
        check_grad(&k, &[0.0, 1.0], &[0.5, 0.2]);
    }

    #[test]
    fn matern52_known_values_and_grad() {
        let k = Matern52::new(0.9, 1.4);
        assert!((k.eval(&[2.0], &[2.0]) - 1.4 * 1.4).abs() < 1e-12);
        check_grad(&k, &[0.3], &[1.7]);
        check_grad(&k, &[0.0, 1.0], &[0.5, 0.2]);
    }

    #[test]
    fn matern_smoothness_ordering() {
        // At moderate distance: SE decays fastest of the three at large r
        // but near r=0 they all approach sigma_f^2; check they're all valid
        // correlations in [0, sigma_f^2].
        for r in [0.1, 0.5, 1.0, 3.0] {
            let a = [0.0];
            let b = [r];
            for k in [
                Box::new(SquaredExponential::new(1.0, 1.0)) as Box<dyn Kernel>,
                Box::new(Matern32::new(1.0, 1.0)),
                Box::new(Matern52::new(1.0, 1.0)),
            ] {
                let v = k.eval(&a, &b);
                assert!(v > 0.0 && v <= 1.0, "r={r}: {v}");
            }
        }
    }

    #[test]
    fn rq_known_values_and_grad() {
        let k = RationalQuadratic::new(1.1, 0.9, 2.0);
        assert!((k.eval(&[5.0], &[5.0]) - 0.81).abs() < 1e-12);
        check_grad(&k, &[0.3], &[1.7]);
        check_grad(&k, &[0.0, 0.5], &[0.2, -0.3]);
    }

    #[test]
    fn rq_approaches_se_for_large_alpha() {
        let se = SquaredExponential::new(1.0, 1.0);
        let rq = RationalQuadratic::new(1.0, 1.0, 1e7);
        let a = [0.0];
        let b = [1.3];
        assert!((se.eval(&a, &b) - rq.eval(&a, &b)).abs() < 1e-5);
    }

    #[test]
    fn sum_kernel_eval_and_grad() {
        let k = SumKernel::new(
            Box::new(SquaredExponential::new(1.0, 1.0)),
            Box::new(Matern32::new(2.0, 0.5)),
        );
        let a = [0.3, 0.1];
        let b = [-0.2, 0.9];
        let expect =
            SquaredExponential::new(1.0, 1.0).eval(&a, &b) + Matern32::new(2.0, 0.5).eval(&a, &b);
        assert!((k.eval(&a, &b) - expect).abs() < 1e-14);
        assert_eq!(k.n_params(), 4);
        check_grad(&k, &a, &b);
        assert!(k.param_names()[0].starts_with("left."));
        assert!(k.param_names()[2].starts_with("right."));
    }

    #[test]
    fn product_kernel_eval_and_grad() {
        let k = ProductKernel::new(
            Box::new(SquaredExponential::new(0.8, 1.1)),
            Box::new(RationalQuadratic::new(1.5, 0.9, 1.2)),
        );
        let a = [0.3];
        let b = [-0.4];
        let expect = SquaredExponential::new(0.8, 1.1).eval(&a, &b)
            * RationalQuadratic::new(1.5, 0.9, 1.2).eval(&a, &b);
        assert!((k.eval(&a, &b) - expect).abs() < 1e-14);
        check_grad(&k, &a, &b);
    }

    #[test]
    fn white_noise_is_diagonal() {
        let k = WhiteNoise::new(0.5);
        assert_eq!(k.eval(&[1.0, 2.0], &[1.0, 2.0]), 0.25);
        assert_eq!(k.eval(&[1.0, 2.0], &[1.0, 2.1]), 0.0);
        assert_eq!(k.diag_value(&[9.0]), 0.25);
        // Gradient: d k / d log sigma = 2k on the diagonal, 0 off it.
        assert_eq!(k.grad(&[0.0], &[0.0]), vec![0.5]);
        assert_eq!(k.grad(&[0.0], &[1.0]), vec![0.0]);
        let mut k2 = k.clone();
        k2.set_params(&[1.0f64.ln()]);
        assert_eq!(k2.sigma, 1.0);
    }

    #[test]
    fn scikit_style_composition_matches_direct_noise() {
        // ConstantKernel * RBF + WhiteKernel == scaled SE with diagonal
        // noise: verify against the direct K + sigma^2 I formulation.
        let composed = SumKernel::new(
            Box::new(ScaledKernel::new(
                1.5,
                Box::new(SquaredExponential::new(0.7, 1.0)),
            )),
            Box::new(WhiteNoise::new(0.3)),
        );
        let a = [0.2, 0.4];
        let b = [0.9, -0.1];
        let se = SquaredExponential::new(0.7, 1.5);
        assert!((composed.eval(&a, &b) - se.eval(&a, &b)).abs() < 1e-12);
        assert!((composed.eval(&a, &a) - (se.eval(&a, &a) + 0.09)).abs() < 1e-12);
    }

    #[test]
    fn scaled_kernel_grads_match_fd() {
        let k = ScaledKernel::new(1.3, Box::new(Matern52::new(0.8, 1.0)));
        check_grad(&k, &[0.3, -0.2], &[0.7, 0.5]);
        assert_eq!(k.n_params(), 3);
        assert!(k.param_names()[1].starts_with("inner."));
        // Input gradient passes through with the c^2 factor.
        let gx = k.grad_x(&[0.3], &[0.9]).unwrap();
        let inner_gx = Matern52::new(0.8, 1.0).grad_x(&[0.3], &[0.9]).unwrap();
        assert!((gx[0] - 1.69 * inner_gx[0]).abs() < 1e-12);
    }

    #[test]
    fn composite_set_params_distributes() {
        let mut k = SumKernel::new(
            Box::new(SquaredExponential::unit()),
            Box::new(SquaredExponential::unit()),
        );
        k.set_params(&[0.1, 0.2, 0.3, 0.4]);
        let p = k.params();
        assert!((p[0] - 0.1).abs() < 1e-12);
        assert!((p[3] - 0.4).abs() < 1e-12);
    }

    /// Central finite-difference check of `grad_x` against `eval`.
    fn check_grad_x(k: &dyn Kernel, a: &[f64], b: &[f64]) {
        let g = k.grad_x(a, b).expect("kernel implements grad_x");
        assert_eq!(g.len(), a.len());
        let h = 1e-6;
        for d in 0..a.len() {
            let mut ap = a.to_vec();
            ap[d] += h;
            let up = k.eval(&ap, b);
            ap[d] -= 2.0 * h;
            let dn = k.eval(&ap, b);
            let fd = (up - dn) / (2.0 * h);
            assert!(
                (fd - g[d]).abs() <= 1e-5 * (1.0 + fd.abs()),
                "dim {d}: fd={fd} analytic={}",
                g[d]
            );
        }
    }

    #[test]
    fn input_gradients_match_fd() {
        check_grad_x(
            &SquaredExponential::new(0.8, 1.3),
            &[0.2, -0.4],
            &[1.0, 0.3],
        );
        check_grad_x(
            &ArdSquaredExponential::new(vec![0.5, 2.0], 1.1),
            &[0.2, -0.4],
            &[1.0, 0.3],
        );
        check_grad_x(&Matern52::new(0.9, 1.2), &[0.3, 0.7], &[1.4, -0.2]);
    }

    #[test]
    fn input_gradient_zero_at_coincident_points() {
        for k in [
            Box::new(SquaredExponential::unit()) as Box<dyn Kernel>,
            Box::new(Matern52::new(1.0, 1.0)),
        ] {
            let g = k.grad_x(&[0.5, 0.5], &[0.5, 0.5]).unwrap();
            assert!(g.iter().all(|v| v.abs() < 1e-12), "{g:?}");
        }
    }

    #[test]
    fn input_gradient_defaults_to_none() {
        // Kernels without an implemented input gradient advertise it.
        assert!(Matern32::new(1.0, 1.0).grad_x(&[0.0], &[1.0]).is_none());
        assert!(RationalQuadratic::new(1.0, 1.0, 1.0)
            .grad_x(&[0.0], &[1.0])
            .is_none());
    }

    #[test]
    fn cross_matrix_matches_pointwise_eval() {
        // Deterministic but irregular point sets in 3-D.
        let a = Matrix::from_fn(7, 3, |i, j| ((i * 3 + j) as f64 * 0.7).sin() * 2.0);
        let b = Matrix::from_fn(5, 3, |i, j| ((i * 5 + j) as f64 * 1.3).cos() - 0.4);
        let kernels: Vec<Box<dyn Kernel>> = vec![
            Box::new(SquaredExponential::new(0.8, 1.4)),
            Box::new(ArdSquaredExponential::new(vec![0.5, 2.0, 1.1], 0.9)),
            Box::new(Matern52::new(0.9, 1.2)), // default pointwise path
            Box::new(ScaledKernel::new(
                1.3,
                Box::new(SquaredExponential::new(0.6, 1.0)),
            )),
        ];
        for k in &kernels {
            let m = k.cross_matrix(&a, &b);
            assert_eq!((m.nrows(), m.ncols()), (7, 5));
            for i in 0..7 {
                for j in 0..5 {
                    let direct = k.eval(a.row(i), b.row(j));
                    assert!(
                        (m[(i, j)] - direct).abs() <= 1e-12 * (1.0 + direct.abs()),
                        "({i},{j}): blocked {} vs direct {direct}",
                        m[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn cross_matrix_handles_empty_inputs() {
        let k = SquaredExponential::unit();
        let a = Matrix::zeros(0, 2);
        let b = Matrix::from_fn(4, 2, |i, j| (i + j) as f64);
        assert_eq!(k.cross_matrix(&a, &b).nrows(), 0);
        let m = k.cross_matrix(&b, &a);
        assert_eq!((m.nrows(), m.ncols()), (4, 0));
    }

    #[test]
    fn boxed_kernel_clones() {
        let k: Box<dyn Kernel> = Box::new(SquaredExponential::new(2.0, 3.0));
        let k2 = k.clone();
        assert_eq!(k.eval(&[0.0], &[1.0]), k2.eval(&[0.0], &[1.0]));
    }
}
