//! Joint posterior covariance and posterior function sampling.
//!
//! The pointwise predictions of [`crate::model::Gpr`] give marginal
//! means/variances; several AL extensions need the *joint* posterior over a
//! set of query points:
//!
//! * the closed-form ALC / integrated-variance acquisition scores a
//!   candidate by how much observing it shrinks variance everywhere else —
//!   `cov(z, x)^2 / (sigma^2(x) + sigma_n^2)` summed over `z`;
//! * Thompson-sampling acquisition draws a whole function from the
//!   posterior and queries its argmax/argmin;
//! * visual reproduction of GPR figures benefits from sample paths.
//!
//! `cov(a, b | data) = k(a, b) - k_a^T K_y^{-1} k_b`, assembled as
//! `K(X_*, X_*) - Z^T Z` with `Z = L^{-1} K(X, X_*)` from one multi-RHS
//! forward solve through the training Cholesky factor.

use crate::model::{GpError, Gpr};
use alperf_linalg::cholesky::Cholesky;
use alperf_linalg::matrix::Matrix;
use rand::Rng;

impl Gpr {
    /// Joint posterior covariance matrix of the latent function over the
    /// rows of `xs`, on the original response scale.
    ///
    /// # Errors
    /// Dimension mismatches or numerical failure in the forward solves.
    pub fn posterior_covariance(&self, xs: &Matrix) -> Result<Matrix, GpError> {
        let m = xs.nrows();
        if m > 0 && xs.ncols() != self.dim() {
            return Err(GpError::Dimension(format!(
                "query has {} dims, training data has {}",
                xs.ncols(),
                self.dim()
            )));
        }
        // Z = L^{-1} K(X, X_*) via one multi-RHS solve;
        // cov = (K(X_*, X_*) - Z^T Z) * scale, both terms blocked matmuls.
        let kernel = self.kernel();
        let scale = self.standardizer().std * self.standardizer().std;
        if m == 0 {
            return Ok(Matrix::zeros(0, 0));
        }
        let kxt = kernel.cross_matrix(xs, self.x_train());
        let zt = self.chol_forward_rhs_rows(&kxt)?;
        let ztz = zt.matmul(&zt.transpose())?;
        let mut cov = kernel.cross_matrix(xs, xs);
        for (c, &s) in cov.as_mut_slice().iter_mut().zip(ztz.as_slice()) {
            *c = (*c - s) * scale;
        }
        cov.symmetrize();
        Ok(cov)
    }

    /// Draw `n_samples` functions from the posterior at the rows of `xs`.
    /// Returns one vector of values per sample. Uses a jittered Cholesky of
    /// the posterior covariance (which is PSD but often rank-deficient once
    /// queries cluster near training data).
    ///
    /// # Errors
    /// Propagates covariance-assembly failures; if even heavy jitter cannot
    /// factor the covariance a [`GpError::Linalg`] is returned.
    pub fn sample_posterior(
        &self,
        xs: &Matrix,
        n_samples: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<Vec<f64>>, GpError> {
        let m = xs.nrows();
        let means: Vec<f64> = self
            .predict_batch(xs)?
            .into_iter()
            .map(|p| p.mean)
            .collect();
        let cov = self.posterior_covariance(xs)?;
        let chol = Cholesky::decompose_jittered(&cov, 1e-10, 12).map_err(GpError::Linalg)?;
        let l = chol.factor();
        let mut out = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let z: Vec<f64> = (0..m).map(|_| alperf_linalg_normal(rng)).collect();
            // sample = mean + L z.
            let mut s = means.clone();
            for i in 0..m {
                let mut acc = 0.0;
                for j in 0..=i {
                    acc += l[(i, j)] * z[j];
                }
                s[i] += acc;
            }
            out.push(s);
        }
        Ok(out)
    }
}

/// Standard normal via Box–Muller (kept local to avoid a dependency cycle
/// with the hpgmg crate's identical helper).
fn alperf_linalg_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> Gpr {
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.6).collect();
        let y: Vec<f64> = xs.iter().map(|v| (0.8 * v).sin()).collect();
        Gpr::fit(
            Matrix::from_vec(10, 1, xs).unwrap(),
            &y,
            Box::new(SquaredExponential::new(1.0, 1.0)),
            0.05,
            true,
        )
        .unwrap()
    }

    #[test]
    fn diagonal_matches_pointwise_variance() {
        let gpr = model();
        let q = Matrix::from_vec(4, 1, vec![0.3, 1.7, 3.1, 9.0]).unwrap();
        let cov = gpr.posterior_covariance(&q).unwrap();
        for i in 0..4 {
            let p = gpr.predict_one(q.row(i)).unwrap();
            assert!(
                (cov[(i, i)] - p.std * p.std).abs() < 1e-10,
                "diag {i}: {} vs {}",
                cov[(i, i)],
                p.std * p.std
            );
        }
    }

    #[test]
    fn covariance_is_symmetric_psd() {
        let gpr = model();
        let q = Matrix::from_vec(5, 1, vec![0.0, 1.0, 2.0, 4.0, 8.0]).unwrap();
        let cov = gpr.posterior_covariance(&q).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(cov[(i, j)], cov[(j, i)]);
            }
        }
        assert!(Cholesky::decompose_jittered(&cov, 1e-10, 12).is_ok());
    }

    #[test]
    fn nearby_points_are_strongly_correlated() {
        let gpr = model();
        let q = Matrix::from_vec(3, 1, vec![7.5, 7.6, 12.0]).unwrap();
        let cov = gpr.posterior_covariance(&q).unwrap();
        let corr_near = cov[(0, 1)] / (cov[(0, 0)] * cov[(1, 1)]).sqrt();
        let corr_far = cov[(0, 2)] / (cov[(0, 0)] * cov[(2, 2)]).sqrt();
        assert!(corr_near > 0.9, "near corr {corr_near}");
        assert!(corr_far < corr_near);
    }

    #[test]
    fn samples_match_posterior_moments() {
        let gpr = model();
        let q = Matrix::from_vec(2, 1, vec![1.1, 5.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let samples = gpr.sample_posterior(&q, 4000, &mut rng).unwrap();
        assert_eq!(samples.len(), 4000);
        for j in 0..2 {
            let vals: Vec<f64> = samples.iter().map(|s| s[j]).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            let p = gpr.predict_one(q.row(j)).unwrap();
            assert!(
                (mean - p.mean).abs() < 0.05,
                "mean at {j}: {mean} vs {}",
                p.mean
            );
            assert!(
                (var - p.std * p.std).abs() < 0.05 * (p.std * p.std).max(0.01),
                "var at {j}: {var} vs {}",
                p.std * p.std
            );
        }
    }

    #[test]
    fn samples_interpolate_training_data_tightly() {
        let gpr = model();
        // At a training point with small noise, sample spread is small.
        let q = Matrix::from_vec(1, 1, vec![0.6]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let samples = gpr.sample_posterior(&q, 200, &mut rng).unwrap();
        let vals: Vec<f64> = samples.iter().map(|s| s[0]).collect();
        let spread = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - vals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 0.5, "spread {spread}");
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let gpr = model();
        let q = Matrix::from_vec(2, 2, vec![0.0; 4]).unwrap();
        assert!(gpr.posterior_covariance(&q).is_err());
    }

    #[test]
    fn empty_query_gives_empty_results() {
        let gpr = model();
        let q = Matrix::zeros(0, 0);
        let cov = gpr.posterior_covariance(&q).unwrap();
        assert_eq!(cov.nrows(), 0);
        let mut rng = StdRng::seed_from_u64(0);
        let s = gpr.sample_posterior(&q, 3, &mut rng).unwrap();
        assert_eq!(s.len(), 3);
        assert!(s[0].is_empty());
    }
}
