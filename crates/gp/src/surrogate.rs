//! A tier-agnostic surrogate model: either the exact GPR posterior or the
//! sparse inducing-point approximation, behind one API.
//!
//! The AL loop, the acquisition strategies, and the pool-prediction caches
//! only need posterior queries — they do not care whether those come from
//! an `O(n³)` exact factorization or an `O(n m²)` sparse one. [`Surrogate`]
//! is the seam: [`crate::optimize::fit_surrogate`] picks the tier, and
//! everything downstream is written against this enum.
//!
//! The one structural difference the consumers *can* observe is the
//! **basis** the cross-covariance cache keys on: the exact tier predicts
//! through `K(X_*, X_train)` (grows every iteration), the sparse tier
//! through `K(X_*, Z)` (frozen between hyperparameter refits) — see
//! [`Surrogate::basis`].

use crate::kernel::Kernel;
use crate::model::{GpError, Gpr, Prediction, PredictionWithGradient};
use crate::sparse::{SparseGpr, SparseMethod};
use alperf_linalg::matrix::Matrix;
use alperf_linalg::stats::Standardizer;
use rand::Rng;

/// Either posterior tier (see module docs).
pub enum Surrogate {
    /// The exact GPR posterior.
    Exact(Gpr),
    /// The sparse inducing-point posterior.
    Sparse(SparseGpr),
}

impl Surrogate {
    /// Posterior predictive distribution at one point.
    ///
    /// # Errors
    /// Propagates the underlying model's errors.
    pub fn predict_one(&self, xstar: &[f64]) -> Result<Prediction, GpError> {
        match self {
            Surrogate::Exact(m) => m.predict_one(xstar),
            Surrogate::Sparse(m) => m.predict_one(xstar),
        }
    }

    /// Batched posterior prediction at every row of `xs`.
    ///
    /// # Errors
    /// Propagates the underlying model's errors.
    pub fn predict_batch(&self, xs: &Matrix) -> Result<Vec<Prediction>, GpError> {
        match self {
            Surrogate::Exact(m) => m.predict_batch(xs),
            Surrogate::Sparse(m) => m.predict_batch(xs),
        }
    }

    /// Batched prediction with a caller-supplied cross-covariance against
    /// [`Surrogate::basis`]: `K(X_*, X_train)` for the exact tier,
    /// `K(X_*, Z)` for the sparse tier.
    ///
    /// # Errors
    /// Dimension mismatch between `kxb` and the basis.
    pub fn predict_batch_with_cross(
        &self,
        xs: &Matrix,
        kxb: &Matrix,
    ) -> Result<Vec<Prediction>, GpError> {
        match self {
            Surrogate::Exact(m) => m.predict_batch_with_cross(xs, kxb),
            Surrogate::Sparse(m) => m.predict_batch_with_cross(xs, kxb),
        }
    }

    /// Prediction with input-space gradients where available. The sparse
    /// tier returns `Ok(None)` — continuous acquisition falls back to its
    /// derivative-free pattern search, exactly as it does for gradientless
    /// kernels on the exact tier.
    ///
    /// # Errors
    /// Propagates the exact model's errors.
    pub fn predict_with_gradient(
        &self,
        xstar: &[f64],
    ) -> Result<Option<PredictionWithGradient>, GpError> {
        match self {
            Surrogate::Exact(m) => m.predict_with_gradient(xstar),
            Surrogate::Sparse(_) => Ok(None),
        }
    }

    /// Joint posterior covariance over the rows of `xs`.
    ///
    /// # Errors
    /// Propagates the underlying model's errors.
    pub fn posterior_covariance(&self, xs: &Matrix) -> Result<Matrix, GpError> {
        match self {
            Surrogate::Exact(m) => m.posterior_covariance(xs),
            Surrogate::Sparse(m) => m.posterior_covariance(xs),
        }
    }

    /// Draw `n_samples` posterior functions at the rows of `xs`.
    ///
    /// # Errors
    /// Propagates the underlying model's errors.
    pub fn sample_posterior(
        &self,
        xs: &Matrix,
        n_samples: usize,
        rng: &mut impl Rng,
    ) -> Result<Vec<Vec<f64>>, GpError> {
        match self {
            Surrogate::Exact(m) => m.sample_posterior(xs, n_samples, rng),
            Surrogate::Sparse(m) => m.sample_posterior(xs, n_samples, rng),
        }
    }

    /// Condition on one extra observation with hyperparameters frozen
    /// (`O(n²)` exact, `O(m²)` sparse).
    ///
    /// # Errors
    /// Propagates the underlying model's errors.
    pub fn with_observation(&self, x_new: &[f64], y_new: f64) -> Result<Surrogate, GpError> {
        Ok(match self {
            Surrogate::Exact(m) => Surrogate::Exact(m.with_observation(x_new, y_new)?),
            Surrogate::Sparse(m) => Surrogate::Sparse(m.with_observation(x_new, y_new)?),
        })
    }

    /// Refit the same tier on a new training set with hyperparameters (and,
    /// for the sparse tier, the inducing set) frozen from this model — the
    /// AL runner's between-refit reconditioning path and the batch
    /// selector's fantasy updates.
    ///
    /// # Errors
    /// Propagates the underlying fit errors.
    pub fn refit(&self, x: Matrix, y: &[f64], standardize: bool) -> Result<Surrogate, GpError> {
        Ok(match self {
            Surrogate::Exact(m) => Surrogate::Exact(Gpr::fit(
                x,
                y,
                m.kernel().clone_box(),
                m.noise_std(),
                standardize,
            )?),
            Surrogate::Sparse(m) => Surrogate::Sparse(SparseGpr::fit(
                x,
                y,
                m.kernel().clone_box(),
                m.noise_std(),
                standardize,
                m.method(),
                m.inducing().clone(),
            )?),
        })
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &dyn Kernel {
        match self {
            Surrogate::Exact(m) => m.kernel(),
            Surrogate::Sparse(m) => m.kernel(),
        }
    }

    /// Noise standard deviation on the (possibly standardized) fit scale.
    pub fn noise_std(&self) -> f64 {
        match self {
            Surrogate::Exact(m) => m.noise_std(),
            Surrogate::Sparse(m) => m.noise_std(),
        }
    }

    /// Noise standard deviation on the original response scale.
    pub fn noise_std_raw(&self) -> f64 {
        match self {
            Surrogate::Exact(m) => m.noise_std_raw(),
            Surrogate::Sparse(m) => m.noise_std_raw(),
        }
    }

    /// Number of training observations conditioned on.
    pub fn n_train(&self) -> usize {
        match self {
            Surrogate::Exact(m) => m.n_train(),
            Surrogate::Sparse(m) => m.n_train(),
        }
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        match self {
            Surrogate::Exact(m) => m.dim(),
            Surrogate::Sparse(m) => m.dim(),
        }
    }

    /// The prediction basis: training inputs (exact) or inducing inputs
    /// (sparse). Cross-covariances passed to
    /// [`Surrogate::predict_batch_with_cross`] must be `K(X_*, basis)`.
    pub fn basis(&self) -> &Matrix {
        match self {
            Surrogate::Exact(m) => m.x_train(),
            Surrogate::Sparse(m) => m.inducing(),
        }
    }

    /// Whether the basis grows when the training set does (true only for
    /// the exact tier) — the cache's append-a-column rule.
    pub fn basis_tracks_train(&self) -> bool {
        matches!(self, Surrogate::Exact(_))
    }

    /// The response standardizer.
    pub fn standardizer(&self) -> &Standardizer {
        match self {
            Surrogate::Exact(m) => m.standardizer(),
            Surrogate::Sparse(m) => m.standardizer(),
        }
    }

    /// (Approximate) log marginal likelihood on the fit scale.
    pub fn lml(&self) -> f64 {
        match self {
            Surrogate::Exact(m) => m.lml(),
            Surrogate::Sparse(m) => m.lml(),
        }
    }

    /// Cheap condition estimate of the underlying factorization(s).
    pub fn condition_estimate(&self) -> f64 {
        match self {
            Surrogate::Exact(m) => m.condition_estimate(),
            Surrogate::Sparse(m) => m.condition_estimate(),
        }
    }

    /// Stable tier name for telemetry: `"exact"`, `"sor"`, or `"fitc"`.
    pub fn tier_name(&self) -> &'static str {
        match self {
            Surrogate::Exact(_) => "exact",
            Surrogate::Sparse(m) => match m.method() {
                SparseMethod::Sor => "sor",
                SparseMethod::Fitc => "fitc",
            },
        }
    }

    /// Effective rank of the posterior representation: `n` for the exact
    /// tier, the inducing-point count `m` for the sparse tier.
    pub fn rank(&self) -> usize {
        match self {
            Surrogate::Exact(m) => m.n_train(),
            Surrogate::Sparse(m) => m.rank(),
        }
    }

    /// True for the sparse tier.
    pub fn is_sparse(&self) -> bool {
        matches!(self, Surrogate::Sparse(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;
    use crate::sparse::select_inducing_kcenter;

    fn pair() -> (Surrogate, Surrogate) {
        let n = 30;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.3).collect();
        let y: Vec<f64> = xs.iter().map(|v| (0.8 * v).cos() * 2.0).collect();
        let x = Matrix::from_vec(n, 1, xs).unwrap();
        let kernel = SquaredExponential::new(1.0, 1.0);
        let exact = Surrogate::Exact(
            Gpr::fit(x.clone(), &y, Box::new(kernel.clone()), 0.05, true).unwrap(),
        );
        let z = x.select_rows(&select_inducing_kcenter(&x, 10));
        let sparse = Surrogate::Sparse(
            SparseGpr::fit(x, &y, Box::new(kernel), 0.05, true, SparseMethod::Fitc, z).unwrap(),
        );
        (exact, sparse)
    }

    #[test]
    fn delegation_is_consistent_per_tier() {
        let (exact, sparse) = pair();
        assert_eq!(exact.tier_name(), "exact");
        assert_eq!(sparse.tier_name(), "fitc");
        assert_eq!(exact.rank(), 30);
        assert_eq!(sparse.rank(), 10);
        assert!(exact.basis_tracks_train());
        assert!(!sparse.basis_tracks_train());
        assert_eq!(exact.basis().nrows(), 30);
        assert_eq!(sparse.basis().nrows(), 10);
        assert!(sparse.is_sparse() && !exact.is_sparse());
        for s in [&exact, &sparse] {
            let p = s.predict_one(&[2.5]).unwrap();
            assert!(p.mean.is_finite() && p.std >= 0.0);
            let b = s
                .predict_batch(&Matrix::from_vec(1, 1, vec![2.5]).unwrap())
                .unwrap();
            // predict_one and the batched path use different (but equally
            // valid) solve orders — agree to rounding, not bit-for-bit.
            assert!((b[0].mean - p.mean).abs() < 1e-10);
            assert!((b[0].std - p.std).abs() < 1e-10);
            assert_eq!(s.n_train(), 30);
            assert_eq!(s.dim(), 1);
            assert!(s.lml().is_finite());
            assert!(s.noise_std_raw() > 0.0);
            assert!(s.condition_estimate() >= 1.0);
        }
    }

    #[test]
    fn sparse_gradient_is_none_exact_is_some() {
        let (exact, sparse) = pair();
        assert!(exact.predict_with_gradient(&[2.5]).unwrap().is_some());
        assert!(sparse.predict_with_gradient(&[2.5]).unwrap().is_none());
    }

    #[test]
    fn with_observation_and_refit_preserve_tier() {
        let (exact, sparse) = pair();
        for s in [&exact, &sparse] {
            let grown = s.with_observation(&[9.3], 1.0).unwrap();
            assert_eq!(grown.tier_name(), s.tier_name());
            assert_eq!(grown.n_train(), 31);
            let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.45).collect();
            let y: Vec<f64> = xs.iter().map(|v| (0.8 * v).cos() * 2.0).collect();
            let x = Matrix::from_vec(20, 1, xs).unwrap();
            let refitted = s.refit(x, &y, true).unwrap();
            assert_eq!(refitted.tier_name(), s.tier_name());
            assert_eq!(refitted.n_train(), 20);
            // Hyperparameters frozen across the refit.
            assert_eq!(refitted.kernel().params(), s.kernel().params());
            assert_eq!(refitted.noise_std(), s.noise_std());
        }
    }

    #[test]
    fn cross_basis_prediction_matches_direct() {
        let (exact, sparse) = pair();
        let q = Matrix::from_vec(3, 1, vec![0.7, 3.2, 8.0]).unwrap();
        for s in [&exact, &sparse] {
            let kxb = s.kernel().cross_matrix(&q, s.basis());
            let direct = s.predict_batch(&q).unwrap();
            let cross = s.predict_batch_with_cross(&q, &kxb).unwrap();
            assert_eq!(direct, cross, "{}", s.tier_name());
        }
    }
}
