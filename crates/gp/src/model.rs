//! The fitted Gaussian Process Regression model.
//!
//! [`Gpr::fit`] conditions a GP prior (kernel + homoscedastic Gaussian noise,
//! Eq. 3) on training data and exposes the posterior predictive distribution
//! of Eqs. 4–10: `mu_* = k_*^T K_y^{-1} y`, `sigma_*^2 = k_** - k_*^T K_y^{-1} k_*`.
//! The response is standardized internally (zero mean, unit variance) so the
//! unit-amplitude kernel prior and the paper's noise floors are always on a
//! sensible scale; predictions are mapped back automatically.

use crate::kernel::Kernel;
use crate::lml::{self, LmlParts};
use alperf_linalg::{
    cholesky::Cholesky, matrix::Matrix, stats::Standardizer, vector::dot, LinalgError,
};

/// Errors from fitting or using a GPR model.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// Underlying linear-algebra failure (singular/indefinite covariance…).
    Linalg(LinalgError),
    /// Shape problem in the training data.
    Dimension(String),
    /// No training data was provided.
    Empty,
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            GpError::Dimension(d) => write!(f, "dimension error: {d}"),
            GpError::Empty => write!(f, "empty training set"),
        }
    }
}

impl std::error::Error for GpError {}

impl From<LinalgError> for GpError {
    fn from(e: LinalgError) -> Self {
        GpError::Linalg(e)
    }
}

/// Prediction plus the input-space gradients of the posterior mean and
/// standard deviation: `(prediction, d mu/dx, d sigma/dx)`.
pub type PredictionWithGradient = (Prediction, Vec<f64>, Vec<f64>);

/// Posterior predictive distribution at one input point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predictive mean `mu_*` (Eq. 5), on the original response scale.
    pub mean: f64,
    /// Predictive standard deviation of the latent function `sqrt(sigma_*^2)`
    /// (Eq. 6), on the original response scale.
    pub std: f64,
}

impl Prediction {
    /// 95% confidence interval `mean ± 2 std` — the bands drawn in the
    /// paper's Figs. 3 and 5.
    pub fn ci95(&self) -> (f64, f64) {
        (self.mean - 2.0 * self.std, self.mean + 2.0 * self.std)
    }
}

/// A Gaussian Process Regression model conditioned on training data.
pub struct Gpr {
    kernel: Box<dyn Kernel>,
    noise_std: f64,
    x: Matrix,
    standardizer: Standardizer,
    chol: Cholesky,
    alpha: Vec<f64>,
    y_std: Vec<f64>,
    lml: f64,
}

impl Gpr {
    /// Condition the GP on training inputs `x` (rows = points) and responses
    /// `y` with the given kernel and noise standard deviation `sigma_n`
    /// (both interpreted on the standardized response scale when
    /// `standardize` is true).
    ///
    /// # Errors
    /// [`GpError::Empty`] for zero rows, [`GpError::Dimension`] on a shape
    /// mismatch, [`GpError::Linalg`] if the covariance cannot be factored.
    pub fn fit(
        x: Matrix,
        y: &[f64],
        kernel: Box<dyn Kernel>,
        noise_std: f64,
        standardize: bool,
    ) -> Result<Self, GpError> {
        if x.nrows() == 0 {
            return Err(GpError::Empty);
        }
        if y.len() != x.nrows() {
            return Err(GpError::Dimension(format!(
                "X has {} rows but y has {} values",
                x.nrows(),
                y.len()
            )));
        }
        if !noise_std.is_finite() || noise_std < 0.0 {
            return Err(GpError::Dimension(format!(
                "noise_std must be finite and >= 0, got {noise_std}"
            )));
        }
        let standardizer = if standardize {
            Standardizer::fit(y)
        } else {
            Standardizer::identity()
        };
        let y_std = standardizer.apply_vec(y);
        let LmlParts { chol, alpha, lml } = lml::lml_parts(kernel.as_ref(), noise_std, &x, &y_std)?;
        Ok(Gpr {
            kernel,
            noise_std,
            x,
            standardizer,
            chol,
            alpha,
            y_std,
            lml,
        })
    }

    /// Posterior predictive distribution of the latent function at `xstar`
    /// (Eqs. 4–6), on the original response scale.
    pub fn predict_one(&self, xstar: &[f64]) -> Result<Prediction, GpError> {
        if xstar.len() != self.x.ncols() {
            return Err(GpError::Dimension(format!(
                "query has {} dims, training data has {}",
                xstar.len(),
                self.x.ncols()
            )));
        }
        let kstar = lml::covariance_vector(self.kernel.as_ref(), &self.x, xstar);
        let mu = dot(&kstar, &self.alpha);
        // sigma_*^2 = k_** - ||L^{-1} k_*||^2, clamped at zero: rounding can
        // push the subtraction slightly negative at training points.
        let z = self.chol.solve_forward(&kstar)?;
        let var = (self.kernel.diag_value(xstar) - dot(&z, &z)).max(0.0);
        Ok(Prediction {
            mean: self.standardizer.inverse(mu),
            std: self.standardizer.inverse_scale(var.sqrt()),
        })
    }

    /// Like [`Gpr::predict_one`] but the predictive variance includes the
    /// observation noise `sigma_n^2` — the distribution of a *new
    /// measurement* rather than of the latent function.
    pub fn predict_one_with_noise(&self, xstar: &[f64]) -> Result<Prediction, GpError> {
        let p = self.predict_one(xstar)?;
        let noise_raw = self.standardizer.inverse_scale(self.noise_std);
        Ok(Prediction {
            mean: p.mean,
            std: (p.std * p.std + noise_raw * noise_raw).sqrt(),
        })
    }

    /// Predict at every row of `xs`. Alias for [`Gpr::predict_batch`].
    pub fn predict(&self, xs: &Matrix) -> Result<Vec<Prediction>, GpError> {
        self.predict_batch(xs)
    }

    /// Batched posterior prediction at every row of `xs`.
    ///
    /// Builds the cross-covariance `K(X_*, X)` in one blocked pass, then
    /// solves `L Z = K(X, X_*)` for all candidates with a single multi-RHS
    /// forward substitution, so the whole batch costs one `O(n^2 m)` sweep
    /// instead of `m` separate `O(n^2)` solves with per-point allocation.
    /// Agrees with [`Gpr::predict_one`] to better than 1e-10 relative (the
    /// SE cross-covariance uses the squared-distance identity; everything
    /// else is a reassociation-free reordering).
    pub fn predict_batch(&self, xs: &Matrix) -> Result<Vec<Prediction>, GpError> {
        if xs.nrows() == 0 {
            return Ok(Vec::new());
        }
        if xs.ncols() != self.x.ncols() {
            return Err(GpError::Dimension(format!(
                "query has {} dims, training data has {}",
                xs.ncols(),
                self.x.ncols()
            )));
        }
        // Process large pools in row chunks so the cross-covariance block
        // and the solve output stay cache-resident (and below the
        // allocator's mmap threshold). Each candidate's arithmetic is
        // independent and the chunk size is a multiple of the solver's RHS
        // block, so the results are bit-identical to one unchunked pass.
        const CHUNK: usize = 256;
        let m = xs.nrows();
        if m > CHUNK {
            let d = xs.ncols();
            let mut out = Vec::with_capacity(m);
            for start in (0..m).step_by(CHUNK) {
                let stop = (start + CHUNK).min(m);
                let rows = xs.as_slice()[start * d..stop * d].to_vec();
                let sub = Matrix::from_vec(stop - start, d, rows).map_err(GpError::Linalg)?;
                out.extend(self.predict_batch(&sub)?);
            }
            return Ok(out);
        }
        let kxt = self.kernel.cross_matrix(xs, &self.x);
        self.predict_batch_with_cross(xs, &kxt)
    }

    /// [`Gpr::predict_batch`] with a caller-supplied cross-covariance
    /// `kxt = K(X_*, X)` (rows = candidates, columns = training points).
    ///
    /// This is the entry point for the AL pool-prediction cache: when only
    /// the training set changed by one point and the hyperparameters are
    /// frozen, the caller can maintain `kxt` incrementally (append one
    /// column, drop one row) instead of rebuilding it.
    ///
    /// # Errors
    /// [`GpError::Dimension`] when `kxt` is not `xs.nrows() x n_train`.
    pub fn predict_batch_with_cross(
        &self,
        xs: &Matrix,
        kxt: &Matrix,
    ) -> Result<Vec<Prediction>, GpError> {
        let _span = alperf_obs::span("gp.predict_batch");
        let (m, n) = (xs.nrows(), self.x.nrows());
        alperf_obs::add("gp.predict.points", m as u64);
        if alperf_obs::enabled() {
            alperf_obs::counter_vec(
                alperf_obs::names::GP_PREDICT_POINTS_BY_TIER,
                &[alperf_obs::names::LABEL_TIER],
            )
            .with(&["exact"])
            .add(m as u64);
        }
        if kxt.nrows() != m || kxt.ncols() != n {
            return Err(GpError::Dimension(format!(
                "cross-covariance is {}x{}, expected {m}x{n}",
                kxt.nrows(),
                kxt.ncols()
            )));
        }
        let mu_std = kxt.matvec(&self.alpha)?;
        // One multi-RHS forward solve, packed straight from the row layout
        // of `kxt`: row i of Z^T is L^{-1} k_*(x_i).
        let z = self.chol.solve_forward_rhs_rows(kxt)?;
        let znorm2 = z.row_sq_norms();
        Ok((0..m)
            .map(|i| {
                let var = (self.kernel.diag_value(xs.row(i)) - znorm2[i]).max(0.0);
                Prediction {
                    mean: self.standardizer.inverse(mu_std[i]),
                    std: self.standardizer.inverse_scale(var.sqrt()),
                }
            })
            .collect())
    }

    /// Log marginal likelihood of the training data under the fitted
    /// hyperparameters (Eq. 12), on the standardized scale.
    pub fn lml(&self) -> f64 {
        self.lml
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &dyn Kernel {
        self.kernel.as_ref()
    }

    /// Noise standard deviation `sigma_n` (standardized response scale).
    pub fn noise_std(&self) -> f64 {
        self.noise_std
    }

    /// Noise standard deviation mapped back to the original response scale.
    pub fn noise_std_raw(&self) -> f64 {
        self.standardizer.inverse_scale(self.noise_std)
    }

    /// Number of training points.
    pub fn n_train(&self) -> usize {
        self.x.nrows()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.x.ncols()
    }

    /// Training inputs.
    pub fn x_train(&self) -> &Matrix {
        &self.x
    }

    /// The standardizer applied to the response.
    pub fn standardizer(&self) -> &Standardizer {
        &self.standardizer
    }

    /// Condition-number estimate of `K_y` — large values flag numerically
    /// fragile fits (length scale far larger than data spread).
    pub fn condition_estimate(&self) -> f64 {
        self.chol.condition_estimate()
    }

    /// Multi-RHS forward solve with row-major right-hand sides: row `r` of
    /// the result is `L^{-1} bt[r]`. Building block for joint posterior
    /// covariances (see `sample`).
    pub(crate) fn chol_forward_rhs_rows(&self, bt: &Matrix) -> Result<Matrix, GpError> {
        Ok(self.chol.solve_forward_rhs_rows(bt)?)
    }

    /// Posterior prediction together with the input-space gradients of the
    /// mean and standard deviation: `(prediction, d mu/dx, d sigma/dx)`.
    ///
    /// ```text
    /// d mu / dx    = sum_i alpha_i  d k(x, x_i)/dx
    /// d sigma^2/dx = -2 sum_i (K_y^{-1} k_*)_i  d k(x, x_i)/dx
    /// d sigma /dx  = (d sigma^2/dx) / (2 sigma)
    /// ```
    ///
    /// Returns `None` if the kernel does not implement
    /// [`Kernel::grad_x`], or if `sigma = 0` exactly (gradient of the SD is
    /// undefined at interpolated points).
    ///
    /// # Errors
    /// Propagates dimension/numerical failures like [`Gpr::predict_one`].
    pub fn predict_with_gradient(
        &self,
        xstar: &[f64],
    ) -> Result<Option<PredictionWithGradient>, GpError> {
        let p = self.predict_one(xstar)?;
        let d = self.dim();
        let n = self.n_train();
        let kstar = lml::covariance_vector(self.kernel.as_ref(), &self.x, xstar);
        // w = K_y^{-1} k_*.
        let w = self.chol.solve(&kstar)?;
        let mut grad_mu = vec![0.0; d];
        let mut grad_var = vec![0.0; d];
        for (i, (&ai, &wi)) in self.alpha.iter().zip(&w).enumerate().take(n) {
            let Some(gk) = self.kernel.grad_x(xstar, self.x.row(i)) else {
                return Ok(None);
            };
            for j in 0..d {
                grad_mu[j] += ai * gk[j];
                grad_var[j] -= 2.0 * wi * gk[j];
            }
        }
        // Map back to the raw response scale.
        let scale = self.standardizer.std;
        for g in grad_mu.iter_mut() {
            *g *= scale;
        }
        // sigma (raw) = sigma_std * scale; grad sigma = grad_var_std * scale^2 / (2 sigma_raw).
        if p.std == 0.0 {
            return Ok(None);
        }
        let grad_sigma: Vec<f64> = grad_var
            .iter()
            .map(|gv| gv * scale * scale / (2.0 * p.std))
            .collect();
        Ok(Some((p, grad_mu, grad_sigma)))
    }

    /// Condition on one additional observation `(x_new, y_new)` in
    /// `O(n^2)` via a rank-one Cholesky extension — the incremental update
    /// the AL loop performs at every iteration. Hyperparameters, noise
    /// level, and the response standardizer are kept *frozen* from this
    /// model (the standardizer would otherwise shift under the new point
    /// and invalidate the factorization), so periodic full refits remain
    /// the caller's responsibility.
    ///
    /// # Errors
    /// [`GpError::Dimension`] on shape mismatch; [`GpError::Linalg`] if the
    /// extended covariance is numerically indefinite (duplicate point with
    /// near-zero noise) — callers should fall back to a full refit then.
    pub fn with_observation(&self, x_new: &[f64], y_new: f64) -> Result<Gpr, GpError> {
        if x_new.len() != self.dim() {
            return Err(GpError::Dimension(format!(
                "new point has {} dims, training data has {}",
                x_new.len(),
                self.dim()
            )));
        }
        let kvec = lml::covariance_vector(self.kernel.as_ref(), &self.x, x_new);
        let diag = self.kernel.diag_value(x_new) + self.noise_std * self.noise_std;
        let chol = self.chol.extend(&kvec, diag)?;
        let x = self.x.with_row(x_new).expect("dims checked above");
        let mut y_std = self.y_std.clone();
        y_std.push(self.standardizer.apply(y_new));
        let alpha = chol.solve(&y_std)?;
        let n = x.nrows();
        let lml = -0.5 * dot(&y_std, &alpha)
            - 0.5 * chol.log_det()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
        Ok(Gpr {
            kernel: self.kernel.clone_box(),
            noise_std: self.noise_std,
            x,
            standardizer: self.standardizer,
            chol,
            alpha,
            y_std,
            lml,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SquaredExponential;

    fn fit_sine(noise: f64) -> Gpr {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.3).collect();
        let x = Matrix::from_vec(20, 1, xs.clone()).unwrap();
        let y: Vec<f64> = xs.iter().map(|v| v.sin()).collect();
        Gpr::fit(
            x,
            &y,
            Box::new(SquaredExponential::new(1.0, 1.0)),
            noise,
            true,
        )
        .unwrap()
    }

    #[test]
    fn interpolates_training_points_with_small_noise() {
        let gpr = fit_sine(1e-5);
        for v in [0.0, 0.9, 3.0, 5.7] {
            let p = gpr.predict_one(&[v]).unwrap();
            assert!(
                (p.mean - v.sin()).abs() < 1e-2,
                "at {v}: predicted {}, true {}",
                p.mean,
                v.sin()
            );
        }
    }

    #[test]
    fn variance_small_at_data_large_far_away() {
        let gpr = fit_sine(1e-4);
        let at_data = gpr.predict_one(&[0.9]).unwrap().std;
        let far = gpr.predict_one(&[30.0]).unwrap().std;
        assert!(at_data < 0.05, "std at data = {at_data}");
        assert!(far > 10.0 * at_data, "far std = {far}");
    }

    #[test]
    fn far_field_variance_approaches_prior() {
        let gpr = fit_sine(1e-4);
        let p = gpr.predict_one(&[1000.0]).unwrap();
        // Prior std on the original scale = amplitude * y_std.
        let expect = 1.0 * gpr.standardizer().std;
        assert!((p.std - expect).abs() / expect < 1e-6);
        // Far-field mean reverts to the data mean.
        assert!((p.mean - gpr.standardizer().mean).abs() < 1e-3);
    }

    #[test]
    fn ci95_is_mean_pm_two_std() {
        let p = Prediction {
            mean: 1.0,
            std: 0.25,
        };
        assert_eq!(p.ci95(), (0.5, 1.5));
    }

    #[test]
    fn with_noise_prediction_is_wider() {
        let gpr = fit_sine(0.3);
        let latent = gpr.predict_one(&[0.9]).unwrap();
        let noisy = gpr.predict_one_with_noise(&[0.9]).unwrap();
        assert!(noisy.std > latent.std);
        assert_eq!(noisy.mean, latent.mean);
    }

    #[test]
    fn predict_many_matches_one() {
        // The batched path assembles K(X_*, X) via the squared-distance
        // identity, so agreement with the scalar path is to tolerance
        // (1e-10, far above the ~1e-13 identity error), not bit-exact.
        let gpr = fit_sine(0.1);
        let grid = Matrix::from_vec(3, 1, vec![0.1, 2.0, 4.5]).unwrap();
        let many = gpr.predict(&grid).unwrap();
        for (i, p) in many.iter().enumerate() {
            let q = gpr.predict_one(grid.row(i)).unwrap();
            assert!((p.mean - q.mean).abs() <= 1e-10 * (1.0 + q.mean.abs()));
            assert!((p.std - q.std).abs() <= 1e-10 * (1.0 + q.std.abs()));
        }
    }

    #[test]
    fn predict_batch_empty_and_shape_checks() {
        let gpr = fit_sine(0.1);
        assert!(gpr.predict_batch(&Matrix::zeros(0, 1)).unwrap().is_empty());
        assert!(matches!(
            gpr.predict_batch(&Matrix::zeros(2, 3)),
            Err(GpError::Dimension(_))
        ));
        // A mis-shaped caller-supplied cross matrix is rejected.
        let xs = Matrix::from_vec(2, 1, vec![0.3, 1.1]).unwrap();
        let bad = Matrix::zeros(2, 3);
        assert!(matches!(
            gpr.predict_batch_with_cross(&xs, &bad),
            Err(GpError::Dimension(_))
        ));
    }

    #[test]
    fn predict_batch_with_cross_matches_predict_batch() {
        let gpr = fit_sine(0.1);
        let xs = Matrix::from_vec(4, 1, vec![0.2, 1.7, 3.3, 5.9]).unwrap();
        let kxt = gpr.kernel().cross_matrix(&xs, gpr.x_train());
        let a = gpr.predict_batch(&xs).unwrap();
        let b = gpr.predict_batch_with_cross(&xs, &kxt).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_training_rejected() {
        let x = Matrix::zeros(0, 0);
        let r = Gpr::fit(x, &[], Box::new(SquaredExponential::unit()), 0.1, true);
        assert!(matches!(r, Err(GpError::Empty)));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]).unwrap();
        assert!(matches!(
            Gpr::fit(x, &[1.0], Box::new(SquaredExponential::unit()), 0.1, true),
            Err(GpError::Dimension(_))
        ));
    }

    #[test]
    fn bad_noise_rejected() {
        let x = Matrix::from_rows(&[&[0.0]]).unwrap();
        assert!(Gpr::fit(
            x.clone(),
            &[1.0],
            Box::new(SquaredExponential::unit()),
            f64::NAN,
            true
        )
        .is_err());
        assert!(Gpr::fit(x, &[1.0], Box::new(SquaredExponential::unit()), -0.1, true).is_err());
    }

    #[test]
    fn query_dimension_checked() {
        let gpr = fit_sine(0.1);
        assert!(matches!(
            gpr.predict_one(&[0.0, 1.0]),
            Err(GpError::Dimension(_))
        ));
    }

    #[test]
    fn standardization_reproduces_unstandardized_shape() {
        // Same data fit with and without standardization must give very
        // similar predictions when the kernel amplitudes are scaled to match.
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.5).collect();
        let x = Matrix::from_vec(10, 1, xs.clone()).unwrap();
        let y: Vec<f64> = xs.iter().map(|v| 100.0 + 10.0 * v.sin()).collect();
        let std = alperf_linalg::stats::std_dev(&y);
        let m = alperf_linalg::stats::mean(&y);
        let g1 = Gpr::fit(
            x.clone(),
            &y,
            Box::new(SquaredExponential::new(1.0, 1.0)),
            0.05,
            true,
        )
        .unwrap();
        // Unstandardized equivalent: amplitude*std, noise*std, centered data.
        let yc: Vec<f64> = y.iter().map(|v| v - m).collect();
        let g2 = Gpr::fit(
            x,
            &yc,
            Box::new(SquaredExponential::new(1.0, std)),
            0.05 * std,
            false,
        )
        .unwrap();
        for q in [0.3, 2.2, 4.4] {
            let p1 = g1.predict_one(&[q]).unwrap();
            let p2 = g2.predict_one(&[q]).unwrap();
            assert!((p1.mean - (p2.mean + m)).abs() < 1e-8, "q={q}");
            assert!((p1.std - p2.std).abs() < 1e-8, "q={q}");
        }
    }

    #[test]
    fn accessors_report_shapes() {
        let gpr = fit_sine(0.1);
        assert_eq!(gpr.n_train(), 20);
        assert_eq!(gpr.dim(), 1);
        assert!(gpr.lml().is_finite());
        assert!(gpr.condition_estimate() >= 1.0);
        assert!(gpr.noise_std_raw() > 0.0);
        assert_eq!(gpr.noise_std(), 0.1);
    }

    #[test]
    fn prediction_gradients_match_finite_differences() {
        let gpr = fit_sine(0.1);
        let h = 1e-6;
        for q in [0.45, 2.2, 4.8, 7.5] {
            let (p, gmu, gsigma) = gpr
                .predict_with_gradient(&[q])
                .unwrap()
                .expect("SE kernel has input gradients");
            let up = gpr.predict_one(&[q + h]).unwrap();
            let dn = gpr.predict_one(&[q - h]).unwrap();
            let fd_mu = (up.mean - dn.mean) / (2.0 * h);
            let fd_sigma = (up.std - dn.std) / (2.0 * h);
            assert!(
                (fd_mu - gmu[0]).abs() <= 1e-4 * (1.0 + fd_mu.abs()),
                "at {q}: mean fd={fd_mu} analytic={}",
                gmu[0]
            );
            assert!(
                (fd_sigma - gsigma[0]).abs() <= 1e-4 * (1.0 + fd_sigma.abs()),
                "at {q}: sigma fd={fd_sigma} analytic={}",
                gsigma[0]
            );
            assert!((p.mean - up.mean).abs() < 1e-3); // same neighbourhood
        }
    }

    #[test]
    fn prediction_gradient_none_for_gradientless_kernel() {
        let xs: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let y: Vec<f64> = xs.iter().map(|v| v * 0.2).collect();
        let gpr = Gpr::fit(
            Matrix::from_vec(6, 1, xs).unwrap(),
            &y,
            Box::new(crate::kernel::Matern32::new(1.0, 1.0)),
            0.1,
            true,
        )
        .unwrap();
        assert!(gpr.predict_with_gradient(&[2.5]).unwrap().is_none());
    }

    #[test]
    fn incremental_update_matches_full_refit() {
        let xs: Vec<f64> = (0..8).map(|i| i as f64 * 0.7).collect();
        let y: Vec<f64> = xs.iter().map(|v| (0.5 * v).sin()).collect();
        let kernel = SquaredExponential::new(1.0, 1.2);
        let base = Gpr::fit(
            Matrix::from_vec(8, 1, xs.clone()).unwrap(),
            &y,
            Box::new(kernel.clone()),
            0.1,
            false,
        )
        .unwrap();
        let incremental = base.with_observation(&[6.3], 0.4).unwrap();
        let mut xs2 = xs;
        xs2.push(6.3);
        let mut y2 = y;
        y2.push(0.4);
        let full = Gpr::fit(
            Matrix::from_vec(9, 1, xs2).unwrap(),
            &y2,
            Box::new(kernel),
            0.1,
            false,
        )
        .unwrap();
        assert!((incremental.lml() - full.lml()).abs() < 1e-9);
        for q in [0.1, 3.0, 6.3, 9.0] {
            let a = incremental.predict_one(&[q]).unwrap();
            let b = full.predict_one(&[q]).unwrap();
            assert!((a.mean - b.mean).abs() < 1e-9, "mean at {q}");
            assert!((a.std - b.std).abs() < 1e-9, "std at {q}");
        }
        assert_eq!(incremental.n_train(), 9);
    }

    #[test]
    fn incremental_update_with_standardization_freezes_scaler() {
        // With standardize=true the incremental model keeps the *old*
        // standardizer (documented behaviour); predictions remain finite
        // and the training count grows.
        let gpr = fit_sine(0.1);
        let up = gpr.with_observation(&[7.0], 0.3).unwrap();
        assert_eq!(up.n_train(), 21);
        assert_eq!(up.standardizer(), gpr.standardizer());
        assert!(up.predict_one(&[7.0]).unwrap().mean.is_finite());
    }

    #[test]
    fn incremental_update_rejects_bad_dims() {
        let gpr = fit_sine(0.1);
        assert!(matches!(
            gpr.with_observation(&[1.0, 2.0], 0.0),
            Err(GpError::Dimension(_))
        ));
    }

    #[test]
    fn more_data_never_increases_variance_at_fixed_hyperparams() {
        // Posterior variance is non-increasing in the training set when
        // hyperparameters are held fixed.
        let kernel = SquaredExponential::new(1.0, 1.0);
        let xs5: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let xs10: Vec<f64> = (0..10).map(|i| i as f64 * 0.5).collect();
        let y5: Vec<f64> = xs5.iter().map(|v| v.cos()).collect();
        let y10: Vec<f64> = xs10.iter().map(|v| v.cos()).collect();
        let g5 = Gpr::fit(
            Matrix::from_vec(5, 1, xs5).unwrap(),
            &y5,
            Box::new(kernel.clone()),
            0.1,
            false,
        )
        .unwrap();
        let g10 = Gpr::fit(
            Matrix::from_vec(10, 1, xs10).unwrap(),
            &y10,
            Box::new(kernel),
            0.1,
            false,
        )
        .unwrap();
        for q in [0.25, 1.75, 3.6] {
            let s5 = g5.predict_one(&[q]).unwrap().std;
            let s10 = g10.predict_one(&[q]).unwrap().std;
            assert!(s10 <= s5 + 1e-9, "q={q}: {s10} vs {s5}");
        }
    }
}
