//! Noise-level lower bounds — the paper's anti-overfitting mechanism.
//!
//! Section V-B4 and Fig. 7 of the paper show that with a permissive bound
//! (`sigma_n >= 1e-8`) the marginal-likelihood fit "optimistically considers
//! its predictions to be exact" on small training sets, collapsing the
//! predictive variance and derailing Active Learning. Raising the bound to
//! `sigma_n >= 1e-1` eliminates the pathology. The paper also proposes (as
//! future work) a *dynamic* bound `sigma_n >= 1/sqrt(N)` that relaxes as
//! evidence accumulates — implemented here as
//! [`NoiseFloor::DynamicInvSqrtN`] and evaluated in the
//! `repro_ablation_noise` experiment.

/// Policy for the lower bound on the noise standard deviation `sigma_n`
/// during hyperparameter optimization.
///
/// Bounds apply on the *standardized* response scale (the model standardizes
/// `y` before fitting), matching how the paper's scikit-learn prototype
/// normalizes data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseFloor {
    /// Fixed bound: `sigma_n >= value`. The paper contrasts `1e-8`
    /// (overfits) with `1e-1` (well-behaved).
    Fixed(f64),
    /// Dynamic bound: `sigma_n >= 1/sqrt(N)` where `N` is the number of
    /// training points (paper §V-B4, proposed future work).
    DynamicInvSqrtN,
    /// Dynamic bound with a scale: `sigma_n >= c/sqrt(N)`.
    ScaledInvSqrtN(f64),
    /// No bound beyond a tiny positive epsilon for numerical sanity.
    Unbounded,
}

impl NoiseFloor {
    /// Smallest `sigma_n` permitted for a training set of `n` points.
    pub fn lower_bound(&self, n: usize) -> f64 {
        let eps = 1e-10;
        match *self {
            NoiseFloor::Fixed(v) => v.max(eps),
            NoiseFloor::DynamicInvSqrtN => (1.0 / (n.max(1) as f64).sqrt()).max(eps),
            NoiseFloor::ScaledInvSqrtN(c) => (c / (n.max(1) as f64).sqrt()).max(eps),
            NoiseFloor::Unbounded => eps,
        }
    }

    /// Clamp a proposed noise level to the bound.
    pub fn clamp(&self, sigma_n: f64, n: usize) -> f64 {
        sigma_n.max(self.lower_bound(n))
    }

    /// The paper's loose setting (`sigma_n >= 1e-8`, Fig. 7a).
    pub fn loose() -> Self {
        NoiseFloor::Fixed(1e-8)
    }

    /// The paper's recommended setting (`sigma_n >= 1e-1`, Fig. 7b).
    pub fn recommended() -> Self {
        NoiseFloor::Fixed(1e-1)
    }
}

impl Default for NoiseFloor {
    /// Defaults to the paper's recommended fixed floor of `0.1`.
    fn default() -> Self {
        NoiseFloor::recommended()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_floor_is_constant_in_n() {
        let f = NoiseFloor::Fixed(0.1);
        assert_eq!(f.lower_bound(1), 0.1);
        assert_eq!(f.lower_bound(1000), 0.1);
    }

    #[test]
    fn dynamic_floor_decays_as_inv_sqrt() {
        let f = NoiseFloor::DynamicInvSqrtN;
        assert!((f.lower_bound(4) - 0.5).abs() < 1e-15);
        assert!((f.lower_bound(100) - 0.1).abs() < 1e-15);
        // n = 0 treated as 1 (a bound must exist before any data arrives).
        assert!((f.lower_bound(0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn scaled_dynamic_floor() {
        let f = NoiseFloor::ScaledInvSqrtN(2.0);
        assert!((f.lower_bound(4) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn unbounded_still_positive() {
        assert!(NoiseFloor::Unbounded.lower_bound(10) > 0.0);
    }

    #[test]
    fn clamp_only_raises() {
        let f = NoiseFloor::Fixed(0.1);
        assert_eq!(f.clamp(0.5, 10), 0.5);
        assert_eq!(f.clamp(0.01, 10), 0.1);
    }

    #[test]
    fn paper_presets() {
        assert_eq!(NoiseFloor::loose(), NoiseFloor::Fixed(1e-8));
        assert_eq!(NoiseFloor::recommended(), NoiseFloor::Fixed(1e-1));
        assert_eq!(NoiseFloor::default(), NoiseFloor::recommended());
    }
}
