//! Property-based tests for the GPR engine: kernel validity, posterior
//! consistency, and the paper's structural assumptions about predictive
//! uncertainty.

use alperf_gp::kernel::{
    ArdSquaredExponential, Kernel, Matern32, Matern52, RationalQuadratic, SquaredExponential,
};
use alperf_gp::lml::assemble_covariance;
use alperf_gp::model::Gpr;
use alperf_gp::sparse::{
    select_inducing_kcenter, select_inducing_pivoted, SparseGpr, SparseMethod,
};
use alperf_linalg::{cholesky::Cholesky, matrix::Matrix};
use proptest::prelude::*;

fn points_strategy(n: usize, d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0..5.0f64, n * d)
}

fn kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(SquaredExponential::new(0.7, 1.3)),
        Box::new(Matern32::new(1.1, 0.9)),
        Box::new(Matern52::new(0.8, 1.0)),
        Box::new(RationalQuadratic::new(1.0, 1.1, 1.5)),
        Box::new(ArdSquaredExponential::new(vec![0.5, 2.0], 1.0)),
    ]
}

proptest! {
    /// Kernel matrices plus any positive noise are positive definite — the
    /// mathematical foundation of the whole GPR machinery.
    #[test]
    fn kernel_matrices_are_psd(data in points_strategy(8, 2), noise in 0.01..1.0f64) {
        let x = Matrix::from_vec(8, 2, data).unwrap();
        for k in kernels() {
            let mut ky = assemble_covariance(k.as_ref(), &x);
            ky.add_diagonal(noise * noise);
            prop_assert!(
                Cholesky::decompose_jittered(&ky, 1e-12, 6).is_ok(),
                "kernel produced an indefinite matrix"
            );
        }
    }

    /// k(a, b) = k(b, a) and |k(a, b)| <= sqrt(k(a,a) k(b,b)) for every kernel.
    #[test]
    fn kernel_symmetry_and_cauchy_schwarz(
        a in prop::collection::vec(-5.0..5.0f64, 2),
        b in prop::collection::vec(-5.0..5.0f64, 2),
    ) {
        for k in kernels() {
            let kab = k.eval(&a, &b);
            let kba = k.eval(&b, &a);
            prop_assert!((kab - kba).abs() < 1e-12);
            let bound = (k.eval(&a, &a) * k.eval(&b, &b)).sqrt();
            prop_assert!(kab.abs() <= bound + 1e-9);
        }
    }

    /// Analytic kernel gradients match central finite differences at random
    /// points and hyperparameters.
    #[test]
    fn kernel_gradients_match_fd(
        a in prop::collection::vec(-3.0..3.0f64, 2),
        b in prop::collection::vec(-3.0..3.0f64, 2),
        scale in 0.3..3.0f64,
        amp in 0.3..3.0f64,
    ) {
        let ks: Vec<Box<dyn Kernel>> = vec![
            Box::new(SquaredExponential::new(scale, amp)),
            Box::new(Matern32::new(scale, amp)),
            Box::new(Matern52::new(scale, amp)),
            Box::new(RationalQuadratic::new(scale, amp, 1.7)),
        ];
        let h = 1e-6;
        for k in ks {
            let g = k.grad(&a, &b);
            let p0 = k.params();
            for j in 0..k.n_params() {
                let mut kp = k.clone_box();
                let mut p = p0.clone();
                p[j] += h;
                kp.set_params(&p);
                let up = kp.eval(&a, &b);
                p[j] -= 2.0 * h;
                kp.set_params(&p);
                let dn = kp.eval(&a, &b);
                let fd = (up - dn) / (2.0 * h);
                prop_assert!(
                    (fd - g[j]).abs() <= 2e-4 * (1.0 + fd.abs()),
                    "param {j}: fd={fd} analytic={}", g[j]
                );
            }
        }
    }

    /// The posterior mean at a training point moves toward the observation,
    /// and predictive std there is below the prior std.
    #[test]
    fn posterior_contracts_at_training_points(
        xs in prop::collection::vec(-4.0..4.0f64, 3..10),
        seed_y in prop::collection::vec(-2.0..2.0f64, 10),
    ) {
        let n = xs.len();
        // Deduplicate inputs: repeated x with different y is legal but makes
        // the "mean near observation" assertion meaningless.
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assume!(sorted.windows(2).all(|w| (w[1] - w[0]).abs() > 0.4));
        let y: Vec<f64> = (0..n).map(|i| seed_y[i % seed_y.len()]).collect();
        let x = Matrix::from_vec(n, 1, xs.clone()).unwrap();
        let gpr = Gpr::fit(x, &y, Box::new(SquaredExponential::new(0.5, 1.0)), 0.05, true).unwrap();
        let prior_std = gpr.standardizer().std; // amplitude 1 on std scale
        for (i, &xi) in xs.iter().enumerate() {
            let p = gpr.predict_one(&[xi]).unwrap();
            prop_assert!(p.std < prior_std + 1e-9);
            // With small noise the mean should be close to the observation.
            prop_assert!((p.mean - y[i]).abs() < 0.5, "at {xi}: {} vs {}", p.mean, y[i]);
        }
    }

    /// Predictive std is non-negative everywhere and finite.
    #[test]
    fn predictions_are_finite(
        xs in prop::collection::vec(-4.0..4.0f64, 2..8),
        q in -10.0..10.0f64,
    ) {
        let n = xs.len();
        let y: Vec<f64> = xs.iter().map(|v| v * 0.3).collect();
        let x = Matrix::from_vec(n, 1, xs).unwrap();
        let gpr = Gpr::fit(x, &y, Box::new(Matern52::new(1.0, 1.0)), 0.1, true).unwrap();
        let p = gpr.predict_one(&[q]).unwrap();
        prop_assert!(p.mean.is_finite());
        prop_assert!(p.std.is_finite() && p.std >= 0.0);
    }

    /// The batched prediction engine agrees with the scalar per-point path
    /// to 1e-10 relative, for every kernel (specialized SE/ARD cross paths
    /// and the generic pointwise fallback), random dimensions, and pool
    /// sizes including the empty pool and a single candidate.
    #[test]
    fn predict_batch_matches_predict_one(
        train in points_strategy(9, 2),
        pool in prop::collection::vec(-6.0..6.0f64, 0..40),
        noise in 0.02..0.5f64,
    ) {
        let n = 9;
        let x = Matrix::from_vec(n, 2, train).unwrap();
        let y: Vec<f64> = (0..n).map(|i| (x[(i, 0)] * 0.6).sin() + 0.3 * x[(i, 1)]).collect();
        let m = pool.len() / 2;
        let xs = Matrix::from_vec(m, 2, pool[..m * 2].to_vec()).unwrap();
        for k in kernels() {
            let gpr = Gpr::fit(x.clone(), &y, k, noise, true).unwrap();
            let batch = gpr.predict_batch(&xs).unwrap();
            prop_assert_eq!(batch.len(), m);
            for (i, p) in batch.iter().enumerate() {
                let q = gpr.predict_one(xs.row(i)).unwrap();
                prop_assert!(
                    (p.mean - q.mean).abs() <= 1e-10 * (1.0 + q.mean.abs()),
                    "mean {i}: batch {} vs one {}", p.mean, q.mean
                );
                prop_assert!(
                    (p.std - q.std).abs() <= 1e-10 * (1.0 + q.std.abs()),
                    "std {i}: batch {} vs one {}", p.std, q.std
                );
            }
        }
    }

    /// Single-candidate pools exercise the degenerate 1-RHS solve path.
    #[test]
    fn predict_batch_single_candidate(q0 in -6.0..6.0f64, q1 in -6.0..6.0f64) {
        let xs: Vec<f64> = (0..6).flat_map(|i| [i as f64 * 0.8, (i as f64).cos()]).collect();
        let y: Vec<f64> = (0..6).map(|i| (i as f64 * 0.4).sin()).collect();
        let x = Matrix::from_vec(6, 2, xs).unwrap();
        let gpr = Gpr::fit(x, &y, Box::new(SquaredExponential::new(0.9, 1.1)), 0.05, true).unwrap();
        let single = Matrix::from_vec(1, 2, vec![q0, q1]).unwrap();
        let batch = gpr.predict_batch(&single).unwrap();
        let one = gpr.predict_one(&[q0, q1]).unwrap();
        prop_assert!((batch[0].mean - one.mean).abs() <= 1e-10 * (1.0 + one.mean.abs()));
        prop_assert!((batch[0].std - one.std).abs() <= 1e-10 * (1.0 + one.std.abs()));
    }

    /// LML is invariant to the order of training points.
    #[test]
    fn lml_is_permutation_invariant(perm_seed in 0u64..1000) {
        let xs: Vec<f64> = (0..8).map(|i| i as f64 * 0.7).collect();
        let y: Vec<f64> = xs.iter().map(|v| (v * 0.5).sin()).collect();
        // Deterministic permutation derived from the seed.
        let mut idx: Vec<usize> = (0..8).collect();
        let mut s = perm_seed;
        for i in (1..8).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            idx.swap(i, j);
        }
        let x1 = Matrix::from_vec(8, 1, xs.clone()).unwrap();
        let x2 = x1.select_rows(&idx);
        let y2: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
        let k = SquaredExponential::new(1.0, 1.0);
        let g1 = Gpr::fit(x1, &y, Box::new(k.clone()), 0.1, false).unwrap();
        let g2 = Gpr::fit(x2, &y2, Box::new(k), 0.1, false).unwrap();
        prop_assert!((g1.lml() - g2.lml()).abs() < 1e-8);
    }
}

// ---------------------------------------------------------------------------
// Approximate (sparse) tier properties.
// ---------------------------------------------------------------------------

/// Smooth 1-D dataset with deterministic xorshift jitter so inputs aren't
/// perfectly gridded (gridded inputs make the SE gram near-singular).
fn smooth_dataset(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut s = seed | 1;
    let xs: Vec<f64> = (0..n)
        .map(|i| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let jitter = ((s >> 11) as f64 / (1u64 << 53) as f64 - 1.0) * 0.02;
            i as f64 * 8.0 / n as f64 + jitter
        })
        .collect();
    let y: Vec<f64> = xs.iter().map(|v| (0.9 * v).sin() * 2.0 + 5.0).collect();
    (Matrix::from_vec(n, 1, xs).unwrap(), y)
}

proptest! {
    // Each case fits several GPRs; keep the case count civil.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sweeping the rank upward, the sparse posterior approaches the exact
    /// one, and at rank ~ n the predictions agree tightly — for both SoR
    /// and FITC, at random sizes and seeds.
    #[test]
    fn sparse_posterior_agrees_with_exact(n in 40usize..120, seed in 0u64..1000) {
        let (x, y) = smooth_dataset(n, seed);
        let kernel = SquaredExponential::new(1.0, 1.0);
        let exact = Gpr::fit(x.clone(), &y, Box::new(kernel.clone()), 0.05, true).unwrap();
        let probes: Vec<f64> = (0..16).map(|i| 0.3 + i as f64 * 0.45).collect();
        for method in [SparseMethod::Sor, SparseMethod::Fitc] {
            let mut errs = Vec::new();
            for m in [n / 4, n / 2, n] {
                let idx = select_inducing_pivoted(&kernel, &x, m.max(2), 0.0).unwrap();
                let z = x.select_rows(&idx);
                let sparse = SparseGpr::fit(
                    x.clone(), &y, Box::new(kernel.clone()), 0.05, true, method, z,
                ).unwrap();
                let mut worst = 0.0f64;
                for &p in &probes {
                    let e = exact.predict_one(&[p]).unwrap();
                    let s = sparse.predict_one(&[p]).unwrap();
                    worst = worst.max((e.mean - s.mean).abs());
                }
                errs.push(worst);
            }
            // High-rank fit is accurate...
            prop_assert!(
                errs[2] < 1e-3,
                "{method:?}: rank ~ n error {} too large", errs[2]
            );
            // ...and no worse than the quarter-rank fit (tiny slack for
            // jitter-ladder noise on near-singular grams).
            prop_assert!(
                errs[2] <= errs[0] + 1e-6,
                "{method:?}: errors not improving with rank: {errs:?}"
            );
        }
    }

    /// Inducing-point selection is bit-identical regardless of how many
    /// rayon workers are available: selection must never depend on thread
    /// scheduling.
    #[test]
    fn inducing_selection_identical_across_worker_counts(n in 30usize..90, seed in 0u64..1000) {
        let (x, _) = smooth_dataset(n, seed);
        let kernel = SquaredExponential::new(1.0, 1.0);
        let m = (n / 3).max(2);
        let baseline_piv = select_inducing_pivoted(&kernel, &x, m, 1e-6).unwrap();
        let baseline_kc = select_inducing_kcenter(&x, m);
        for workers in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(workers)
                .build()
                .unwrap();
            let (piv, kc) = pool.install(|| {
                (
                    select_inducing_pivoted(&kernel, &x, m, 1e-6).unwrap(),
                    select_inducing_kcenter(&x, m),
                )
            });
            prop_assert_eq!(&piv, &baseline_piv, "pivoted selection diverged at {} workers", workers);
            prop_assert_eq!(&kc, &baseline_kc, "k-center selection diverged at {} workers", workers);
        }
    }
}

/// The full n <= 400 sweep from the acceptance criteria: at n = 400 the
/// FITC posterior at the default rank cap stays within the exact-vs-sparse
/// gate tolerance on standardized training-mean RMSE.
#[test]
fn sparse_agreement_at_n400_default_rank() {
    let n = 400;
    let (x, y) = smooth_dataset(n, 0x5eed);
    let kernel = SquaredExponential::new(1.0, 1.0);
    let exact = Gpr::fit(x.clone(), &y, Box::new(kernel.clone()), 0.05, true).unwrap();
    for m in [64usize, 128, 256] {
        let idx = select_inducing_pivoted(&kernel, &x, m, 1e-6).unwrap();
        let z = x.select_rows(&idx);
        let sparse = SparseGpr::fit(
            x.clone(),
            &y,
            Box::new(kernel.clone()),
            0.05,
            true,
            SparseMethod::Fitc,
            z,
        )
        .unwrap();
        let mut se = 0.0;
        for i in 0..n {
            let e = exact.predict_one(x.row(i)).unwrap();
            let s = sparse.predict_one(x.row(i)).unwrap();
            se += (e.mean - s.mean).powi(2);
        }
        let scale = exact.standardizer().std.abs().max(1e-12);
        let rmse = (se / n as f64).sqrt() / scale;
        assert!(
            rmse < 0.05,
            "rank {m}: standardized RMSE {rmse} exceeds the 0.05 gate tolerance"
        );
    }
}

// ---------------------------------------------------------------------------
// Deterministic gradient and cache checks for the fast training path.
// ---------------------------------------------------------------------------

/// Fixed 2-D training set used by the gradient checks below.
fn grad_check_data() -> (Matrix, Vec<f64>) {
    let n = 14;
    let x = Matrix::from_fn(n, 2, |i, j| {
        let t = i as f64 / n as f64;
        if j == 0 {
            3.0 + 6.0 * t
        } else {
            1.2 + 1.2 * ((i * 5 % n) as f64 / n as f64)
        }
    });
    let y: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.6).sin() + 0.05 * i as f64)
        .collect();
    (x, y)
}

/// Central finite difference of the LML in `log`-parameter `j`.
fn fd_kernel_param(kernel: &dyn Kernel, j: usize, sn: f64, x: &Matrix, y: &[f64]) -> f64 {
    let h = 1e-6;
    let p0 = kernel.params();
    let mut kp = kernel.clone_box();
    let mut p = p0.clone();
    p[j] += h;
    kp.set_params(&p);
    let up = alperf_gp::lml::lml_value(kp.as_ref(), sn, x, y).unwrap();
    p[j] -= 2.0 * h;
    kp.set_params(&p);
    let dn = alperf_gp::lml::lml_value(kp.as_ref(), sn, x, y).unwrap();
    (up - dn) / (2.0 * h)
}

/// `lml_and_grad` must match central finite differences to 1e-5 relative
/// tolerance for the cached SE path, the cached ARD path, and a
/// generic-path kernel — both with and without the noise gradient.
#[test]
fn lml_gradient_matches_central_differences_across_kernels() {
    let (x, y) = grad_check_data();
    let sn: f64 = 0.2;
    let h = 1e-6;
    let kernels: Vec<Box<dyn Kernel>> = vec![
        Box::new(SquaredExponential::new(1.4, 0.9)),
        Box::new(ArdSquaredExponential::new(vec![2.0, 0.8], 1.1)),
        Box::new(Matern52::new(1.2, 1.0)),
    ];
    for kernel in &kernels {
        for optimize_noise in [false, true] {
            let (_, grad) =
                alperf_gp::lml::lml_and_grad(kernel.as_ref(), sn, &x, &y, optimize_noise).unwrap();
            let np = kernel.n_params();
            assert_eq!(grad.len(), np + usize::from(optimize_noise));
            for (j, gj) in grad.iter().take(np).enumerate() {
                let fd = fd_kernel_param(kernel.as_ref(), j, sn, &x, &y);
                assert!(
                    (fd - gj).abs() <= 1e-5 * (1.0 + fd.abs()),
                    "{} param {j}: fd={fd} analytic={gj}",
                    kernel.param_names()[j],
                );
            }
            if optimize_noise {
                let up = alperf_gp::lml::lml_value(kernel.as_ref(), (sn.ln() + h).exp(), &x, &y)
                    .unwrap();
                let dn = alperf_gp::lml::lml_value(kernel.as_ref(), (sn.ln() - h).exp(), &x, &y)
                    .unwrap();
                let fd = (up - dn) / (2.0 * h);
                assert!(
                    (fd - grad[np]).abs() <= 1e-5 * (1.0 + fd.abs()),
                    "noise grad: fd={fd} analytic={}",
                    grad[np]
                );
            }
        }
    }
}

/// The distance-cached LML surface must agree with the pointwise one for
/// every SE-family kernel (the optimizer uses the cached surface; public
/// `lml_value`/`lml_and_grad` keep the pointwise assembly).
#[test]
fn cached_lml_and_grad_match_pointwise() {
    use alperf_gp::lml::{
        lml_and_grad, lml_and_grad_cached, lml_value, lml_value_cached, FitCache,
    };
    let (x, y) = grad_check_data();
    let sn = 0.17;
    let kernels: Vec<Box<dyn Kernel>> = vec![
        Box::new(SquaredExponential::new(0.9, 1.3)),
        Box::new(ArdSquaredExponential::new(vec![1.5, 0.6], 0.8)),
    ];
    for kernel in &kernels {
        let cache = FitCache::build(kernel.as_ref(), &x);
        assert!(cache.is_cached());
        let v = lml_value(kernel.as_ref(), sn, &x, &y).unwrap();
        let vc = lml_value_cached(kernel.as_ref(), sn, &x, &y, &cache).unwrap();
        assert!(
            (v - vc).abs() <= 1e-9 * (1.0 + v.abs()),
            "lml: pointwise {v} vs cached {vc}"
        );
        let (_, g) = lml_and_grad(kernel.as_ref(), sn, &x, &y, true).unwrap();
        let (_, gc) = lml_and_grad_cached(kernel.as_ref(), sn, &x, &y, true, &cache).unwrap();
        for (a, b) in g.iter().zip(&gc) {
            assert!(
                (a - b).abs() <= 1e-8 * (1.0 + a.abs()),
                "grad: pointwise {a} vs cached {b}"
            );
        }
    }
}
