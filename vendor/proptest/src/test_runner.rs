//! Test-runner support types: the deterministic [`TestRng`],
//! [`ProptestConfig`], and [`TestCaseError`].

/// Per-test deterministic RNG (xoshiro256++ seeded from the test name).
/// Failures therefore reproduce exactly on re-run with no state files.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed deterministically from a test's name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion to full state.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Next f64 uniform in `[0, 1)` (53-bit resolution).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Subset of upstream's config: only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the GPR-heavy suites fast while
        // still exercising a meaningful input spread.
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!` family macros inside a test case, or a
/// rejection raised by `prop_assume!` (skips the case without failing).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    rejected: bool,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejected: false,
        }
    }

    /// Build a rejection (`prop_assume!` miss): skip, don't fail.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejected: true,
        }
    }

    /// Whether this is a rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        self.rejected
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
