//! The [`Strategy`] trait and the built-in strategies: numeric ranges,
//! tuples, [`Just`], and [`Map`] (`prop_map`).

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: `generate`
/// produces a value directly from the deterministic test RNG.
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (upstream's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($($s:ident $v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A a);
tuple_strategy!(A a, B b);
tuple_strategy!(A a, B b, C c);
tuple_strategy!(A a, B b, C c, D d);
tuple_strategy!(A a, B b, C c, D d, E e);
tuple_strategy!(A a, B b, C c, D d, E e, F f);
tuple_strategy!(A a, B b, C c, D d, E e, F f, G g);
tuple_strategy!(A a, B b, C c, D d, E e, F f, G g, H h);
