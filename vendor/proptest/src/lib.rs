#![allow(clippy::all)]
//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the workspace vendors a
//! small property-testing engine with the same surface its tests use:
//! the [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!`, numeric-range strategies, `prop::collection::vec`,
//! `prop::sample::select`, tuples of strategies, and `prop_map`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name) so failures reproduce exactly,
//! and there is no shrinking — a failure reports the case number instead of
//! a minimized input.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: an exact `usize` or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `elem` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vector of values from `elem`, length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies that sample from explicit option sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among a fixed set of options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice from `options`; panics if empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

pub mod prop {
    //! Namespace mirror so `prop::collection::vec` etc. resolve as upstream.
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a [`proptest!`] body; on failure the current
/// case aborts with the formatted message (or the stringified condition).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two values compare equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Skip the current case when its inputs don't meet a precondition.
/// Unlike `prop_assert!`, a miss is a rejection, not a failure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Assert two values compare unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs from a deterministic per-test RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$attr:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$attr])*
            #[allow(unused_mut)]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __strat = ($($strat,)+);
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    let ($(mut $arg,)+) =
                        $crate::strategy::Strategy::generate(&__strat, &mut __rng);
                    let __result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__e) = __result {
                        if __e.is_rejection() {
                            continue;
                        }
                        ::std::panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("alpha");
        let mut b = crate::test_runner::TestRng::for_test("alpha");
        let mut c = crate::test_runner::TestRng::for_test("beta");
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -3.0..7.0f64, n in 1usize..9) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_strategy_len_in_range(v in prop::collection::vec(0.0..1.0f64, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for &x in &v {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn select_picks_an_option(k in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(k == 2 || k == 4 || k == 8);
        }

        #[test]
        fn prop_map_applies(d in (0usize..5, 10usize..15).prop_map(|(a, b)| a + b)) {
            prop_assert!((10..20).contains(&d));
        }

        #[test]
        fn mutable_args_allowed(mut_test in prop::collection::vec(0..100i32, 3)) {
            let mut v = mut_test;
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_cases_run(seed in 0u64..1000) {
            prop_assert!(seed < 1000);
        }
    }

    #[test]
    fn failing_case_panics_with_message() {
        let r = std::panic::catch_unwind(|| {
            let mut rng = crate::test_runner::TestRng::for_test("f");
            let strat = 0.0..1.0f64;
            let v = Strategy::generate(&strat, &mut rng);
            let body = || -> Result<(), TestCaseError> {
                prop_assert!(v > 2.0, "v was {}", v);
                Ok(())
            };
            body().unwrap();
        });
        assert!(r.is_err());
    }
}
