#![allow(clippy::all)]
//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces this workspace uses: [`scope`] (scoped threads
//! with panic capture, built on `std::thread::scope`) and
//! [`channel::unbounded`] (a cloneable MPMC queue built on `Mutex` +
//! `Condvar`). Semantics match upstream for these paths: `recv` blocks until
//! a value arrives or every sender is dropped, and `scope` returns `Err`
//! with the panic payload if any spawned thread panicked.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle passed to [`scope`] closures for spawning scoped threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope handle (like
    /// crossbeam's nested-spawn API) and may borrow from the environment.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

/// Create a scope for spawning threads that borrow from the caller's stack.
/// All spawned threads are joined before this returns. A panic in any
/// spawned thread (or in `f` itself) is captured and returned as `Err`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Error from [`Receiver::recv`]: channel empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error from [`Sender::send`]: all receivers dropped. Carries the value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a value; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            state.senders += 1;
            drop(state);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value is available or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Non-blocking pop, `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .items
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_consumes_every_item() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let seen = std::sync::Mutex::new(vec![false; 100]);
        super::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let seen = &seen;
                s.spawn(move |_| {
                    while let Ok(i) = rx.recv() {
                        seen.lock().unwrap()[i] = true;
                    }
                });
            }
        })
        .unwrap();
        assert!(seen.into_inner().unwrap().iter().all(|&b| b));
    }

    #[test]
    fn recv_errors_after_senders_gone() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn scope_reports_panics() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("worker down"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_via_handle() {
        let out = std::sync::Mutex::new(0usize);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    *out.lock().unwrap() += 1;
                });
            });
        })
        .unwrap();
        assert_eq!(out.into_inner().unwrap(), 1);
    }
}
