#![allow(clippy::all)]
//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly (a poisoned std lock is recovered
//! rather than propagated, matching parking_lot's "no poisoning" contract).

/// Mutual exclusion with parking_lot's panic-free `lock` signature.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value (const, like parking_lot's `const fn new`).
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Reader-writer lock with parking_lot's panic-free signatures.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value (const, like parking_lot's `const fn new`).
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2, 3]);
        m.lock().push(4);
        assert_eq!(m.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5usize);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
