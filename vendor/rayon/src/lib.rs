#![allow(clippy::all)]
//! Offline stand-in for `rayon`.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal data-parallelism layer with the same call surface the crates use:
//! `par_iter` / `par_chunks` / `par_chunks_mut` on slices, `into_par_iter` on
//! ranges and vectors, and `map` / `enumerate` / `zip` / `for_each` /
//! `collect` / `reduce` / `sum` combinators. Work is genuinely parallel: the
//! driver partitions items into contiguous blocks and fans them out over
//! `std::thread::scope`, preserving input order in every result.
//!
//! Differences from upstream rayon: no work stealing (static partitioning
//! only), `reduce` folds block results sequentially (deterministic given an
//! associative operator), and nested parallel calls inside a worker run
//! serially instead of sharing a pool.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

thread_local! {
    /// Per-thread override of the fan-out width. `None` means "defer to the
    /// global limit / all available cores". Workers run with a limit of 1 so
    /// nested parallel calls do not oversubscribe the machine.
    static PAR_LIMIT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Process-wide fan-out width installed by [`ThreadPoolBuilder::build_global`].
/// 0 means "unset" (fall through to `available_parallelism`). Consulted after
/// the thread-local limit so scoped `ThreadPool::install` still wins, and
/// visible from freshly spawned threads (unlike the thread-local).
static GLOBAL_LIMIT: AtomicUsize = AtomicUsize::new(0);

fn effective_threads() -> usize {
    if let Some(n) = PAR_LIMIT.with(|c| c.get()) {
        return n;
    }
    let global = GLOBAL_LIMIT.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The fan-out width parallel calls on this thread would currently use:
/// the scoped [`ThreadPool::install`] limit if one is active, else the
/// global pool width, else `available_parallelism`. Mirrors
/// `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    effective_threads()
}

fn with_limit<R>(n: usize, op: impl FnOnce() -> R) -> R {
    let prev = PAR_LIMIT.with(|c| c.replace(if n == 0 { None } else { Some(n) }));
    let out = op();
    PAR_LIMIT.with(|c| c.set(prev));
    out
}

/// Map `f` over `items` on up to [`effective_threads`] scoped threads,
/// returning results in input order.
fn run_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let t = effective_threads().min(n).max(1);
    if t <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = (n + t - 1) / t;
    let mut groups: Vec<Vec<T>> = Vec::with_capacity(t);
    let mut it = items.into_iter();
    loop {
        let g: Vec<T> = it.by_ref().take(chunk).collect();
        if g.is_empty() {
            break;
        }
        groups.push(g);
    }
    let f = &f;
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|g| {
                s.spawn(move || {
                    PAR_LIMIT.with(|c| c.set(Some(1)));
                    g.into_iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// A materialized "parallel iterator": the item list is collected up front
/// and the terminal operation fans it out over threads.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair each item with its index, preserving order.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Pair items with another parallel iterator (truncating to the shorter).
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Lazily attach a map stage; executed by the terminal operation.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_map(self.items, |t| f(t));
    }

    /// Collect the items (no-op parallelism; kept for API parity).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A [`ParIter`] with a pending map stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Execute the map in parallel and collect results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_map(self.items, self.f).into_iter().collect()
    }

    /// Execute the map in parallel, discarding results.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let f = self.f;
        run_map(self.items, |t| g(f(t)));
    }

    /// Parallel map followed by an ordered fold with `op`, seeded by
    /// `identity()`. Deterministic for associative `op`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        run_map(self.items, self.f)
            .into_iter()
            .fold(identity(), |a, b| op(a, b))
    }

    /// Parallel map followed by a sum of the results.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        run_map(self.items, self.f).into_iter().sum()
    }
}

/// `par_iter` / `par_chunks` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T` items.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over contiguous `&[T]` chunks of length `size`
    /// (last chunk may be shorter). Panics if `size == 0`.
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(size).collect(),
        }
    }
}

/// `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint `&mut [T]` chunks of length `size`
    /// (last chunk may be shorter). Panics if `size == 0`.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }
}

/// `into_par_iter` on owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

range_into_par_iter!(usize, u64, u32, i64, i32);

/// Error from [`ThreadPoolBuilder::build`]; the shim never actually fails.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Scoped-width pool: [`ThreadPool::install`] bounds the fan-out of parallel
/// calls made on the calling thread.
pub struct ThreadPool {
    n: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread limit applied.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        with_limit(self.n, op)
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default (all cores) width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Limit the pool to `n` threads; 0 means "all cores".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool (infallible in the shim).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            n: self.num_threads,
        })
    }

    /// Install this width as the process-wide default, mirroring
    /// `rayon::ThreadPoolBuilder::build_global`. Unlike upstream (which
    /// errors on a second call) the shim lets later calls overwrite the
    /// width — there is no pool of OS threads to rebuild, only a limit —
    /// which keeps in-process thread-count sweeps possible for benches.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_LIMIT.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_writes_disjoint() {
        let mut v = vec![0.0f64; 64 * 7];
        v.par_chunks_mut(64).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x = i as f64;
            }
        });
        for (i, c) in v.chunks(64).enumerate() {
            assert!(c.iter().all(|&x| x == i as f64));
        }
    }

    #[test]
    fn zip_and_reduce_match_serial() {
        let a = vec![1.0f64; 300];
        let b: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let got = a
            .par_chunks(32)
            .zip(b.par_chunks(32))
            .enumerate()
            .map(|(_, (x, y))| x.iter().zip(y).map(|(p, q)| p * q).sum::<f64>())
            .reduce(|| 0.0, |p, q| p + q);
        let want: f64 = (0..300).map(|i| i as f64).sum();
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn par_iter_on_vec() {
        let idx = vec![3usize, 1, 4, 1, 5];
        let out: Vec<usize> = idx.par_iter().map(|&i| i + 1).collect();
        assert_eq!(out, vec![4, 2, 5, 2, 6]);
    }

    #[test]
    fn install_limits_do_not_change_results() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let out = pool.install(|| {
            (0..100usize)
                .into_par_iter()
                .map(|i| i * i)
                .collect::<Vec<_>>()
        });
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_serial() {
        let s: f64 = (0..1000usize).into_par_iter().map(|i| i as f64).sum();
        assert_eq!(s, 499_500.0);
    }

    #[test]
    fn global_limit_and_current_num_threads() {
        // Scoped install wins over everything and is restored on exit.
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        // build_global sets the process default; a scoped install still
        // overrides it, and results stay order-preserved either way.
        ThreadPoolBuilder::new()
            .num_threads(2)
            .build_global()
            .unwrap();
        assert_eq!(current_num_threads(), 2);
        assert_eq!(pool.install(current_num_threads), 3);
        let out: Vec<usize> = (0..50usize).into_par_iter().map(|i| i + 7).collect();
        assert_eq!(out, (0..50).map(|i| i + 7).collect::<Vec<_>>());
        // Unset (0) falls back to available_parallelism.
        ThreadPoolBuilder::new().build_global().unwrap();
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            (0..64usize).into_par_iter().for_each(|i| {
                if i == 63 {
                    panic!("boom");
                }
            });
        });
        assert!(r.is_err());
    }
}
