#![allow(clippy::all)]
//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace ships a minimal implementation of the `rand` API surface it
//! actually uses: [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`Rng::gen_range`] over the common numeric ranges, [`SeedableRng`], and
//! [`seq::SliceRandom::shuffle`]. The generated stream differs from upstream
//! `rand`, but every consumer in this workspace only relies on determinism
//! for a fixed seed and on basic statistical quality, not on the exact
//! upstream stream.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next f64 uniformly distributed in `[0, 1)` (53-bit resolution).
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits: exactly representable, uniform in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value interface, blanket-implemented for every
/// [`RngCore`] just like upstream rand.
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniform sample; mirrors `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty f64 range");
        let u = rng.next_f64();
        // Scale-and-shift keeps the result in [start, end) for finite spans.
        let v = self.start + u * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty f64 range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 per draw for the spans this
                // workspace uses; acceptable for a test/simulation shim.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array for `StdRng`).
    type Seed;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 like upstream rand.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna).
    /// Small state, excellent statistical quality, and trivially portable.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is the one forbidden xoshiro state.
            if s.iter().all(|&w| w == 0) {
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x0123_4567, 0x89AB_CDEF];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling, the only `SliceRandom` capability this workspace uses.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&v));
            let i: usize = rng.gen_range(2..9);
            assert!((2..9).contains(&i));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
