#![allow(clippy::all)]
//! Offline stand-in for `criterion`.
//!
//! Implements the call surface the workspace benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `bench_with_input`
//! / `finish`, `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — over a simple wall-clock
//! loop: warm up briefly, then run timed passes and report the mean.
//!
//! Each benchmark prints one line:
//! `bench: <id> mean <human> (<ns> ns/iter, <iters> iters)` — stable enough
//! to grep into JSON baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to the closure; call [`Bencher::iter`].
pub struct Bencher {
    /// Proportional knob from `sample_size` (upstream default 100); scales
    /// the measurement budget.
    sample_size: usize,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measure `f` repeatedly and record the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: at least one run, up to ~20 ms.
        let warm_start = Instant::now();
        black_box(f());
        let mut warm_iters = 1u64;
        while warm_start.elapsed() < Duration::from_millis(20) && warm_iters < 1000 {
            black_box(f());
            warm_iters += 1;
        }
        // Measurement budget scales with sample_size (100 -> 200 ms).
        let budget = Duration::from_micros(2_000 * self.sample_size as u64);
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= budget && iters >= 5 {
                break;
            }
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(id: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut b);
    println!(
        "bench: {} mean {} ({:.0} ns/iter, {} iters)",
        id,
        human(b.mean_ns),
        b.mean_ns,
        b.iters
    );
}

/// Top-level harness; mirrors `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 100, |b| f(b));
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 100,
        }
    }
}

/// Group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the sampling effort (upstream default 100).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    /// Run a benchmark under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.sample_size, |b| f(b));
        self
    }

    /// Run a benchmark that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.id);
        run_one(&id, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (printing is per-bench; nothing left to flush).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_mean() {
        let mut b = Bencher {
            sample_size: 10,
            mean_ns: 0.0,
            iters: 0,
        };
        b.iter(|| black_box(3u64.wrapping_mul(7)));
        assert!(b.mean_ns > 0.0);
        assert!(b.iters >= 5);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10);
        for n in [4usize, 8] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<usize>());
            });
        }
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
        c.bench_function("top", |b| b.iter(|| 2 * 2));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("solve", 64).id, "solve/64");
        assert_eq!(BenchmarkId::from_parameter(256).id, "256");
    }
}
